//! Minimal vendored stand-in for the `serde_derive` crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually defines: non-generic structs (named,
//! tuple/newtype, unit) and enums whose variants are unit, tuple, or
//! struct-like. `#[serde(default)]` on a named field is honored (a missing
//! key deserializes to `Default::default()`); all other `#[serde(...)]`
//! attributes are accepted but not interpreted. Parsing is done directly over
//! `proc_macro::TokenStream` — no `syn`/`quote`, since the build
//! environment cannot fetch crates.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// -- item model ---------------------------------------------------------------

enum Body {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// The field carried `#[serde(default)]`: a missing key
    /// deserializes to `Default::default()` instead of erroring.
    default: bool,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    /// Plain type parameter names (`Envelope<T>` -> `["T"]`). Bounds,
    /// lifetimes, and const parameters are not supported.
    generics: Vec<String>,
    body: Body,
}

impl Item {
    /// `<T, U>` (or empty) for use after the type name.
    fn type_args(&self) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics.join(", "))
        }
    }

    /// Impl-generics list with the given bound applied to each parameter,
    /// plus optional extra leading params (for the `'de` lifetime).
    fn impl_generics(&self, extra: &str, bound: &str) -> String {
        let mut params: Vec<String> = Vec::new();
        if !extra.is_empty() {
            params.push(extra.to_string());
        }
        for g in &self.generics {
            params.push(format!("{g}: {bound}"));
        }
        if params.is_empty() {
            String::new()
        } else {
            format!("<{}>", params.join(", "))
        }
    }
}

// -- token cursor -------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skip any number of outer attributes (`#[...]`), including doc
    /// comments, which reach the macro as `#[doc = "..."]`.
    fn skip_attributes(&mut self) {
        self.take_serde_default();
    }

    /// Skip outer attributes, reporting whether any was
    /// `#[serde(default)]` (possibly among other comma-separated
    /// options inside the parentheses).
    fn take_serde_default(&mut self) -> bool {
        let mut has_default = false;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    has_default |= attr_is_serde_default(g.stream());
                    self.pos += 1;
                }
                _ => panic!("serde_derive: malformed attribute"),
            }
        }
        has_default
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`, etc.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }
}

/// Whether an attribute body (the tokens inside `#[...]`) is
/// `serde(...)` with a bare `default` among its options.
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let mut toks = stream.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Count top-level comma-separated segments in a field list, tracking
/// generic-angle depth so `BTreeMap<K, V>` does not split.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut prev_dash = false;
    let mut count = 0usize;
    let mut segment_nonempty = false;
    for tok in group {
        match &tok {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    depth += 1;
                } else if c == '>' {
                    if prev_dash {
                        // `->` in a function-pointer type: not a closer.
                    } else {
                        depth -= 1;
                    }
                } else if c == ',' && depth == 0 {
                    if segment_nonempty {
                        count += 1;
                    }
                    segment_nonempty = false;
                    prev_dash = false;
                    continue;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        segment_nonempty = true;
    }
    if segment_nonempty {
        count += 1;
    }
    count
}

/// Parse `name: Type, ...` field lists, returning the fields (name plus
/// `#[serde(default)]` flag) in declaration order.
fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        let default = cur.take_serde_default();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        let name = cur.expect_ident("field name");
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(Field { name, default });
        // Consume the type up to the next top-level comma.
        let mut depth = 0i32;
        let mut prev_dash = false;
        while let Some(tok) = cur.peek() {
            if let TokenTree::Punct(p) = tok {
                let c = p.as_char();
                if c == '<' {
                    depth += 1;
                } else if c == '>' && !prev_dash {
                    depth -= 1;
                } else if c == ',' && depth == 0 {
                    cur.pos += 1;
                    break;
                }
                prev_dash = c == '-';
            } else {
                prev_dash = false;
            }
            cur.pos += 1;
        }
    }
    fields
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(group);
    let mut variants = Vec::new();
    loop {
        cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("variant name");
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.pos += 1;
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.pos += 1;
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip a discriminant (`= expr`) and the separating comma.
        while let Some(tok) = cur.peek() {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    cur.pos += 1;
                    break;
                }
            }
            cur.pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let keyword = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("item name");
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            cur.pos += 1;
            loop {
                match cur.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => break,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    Some(TokenTree::Ident(id)) => generics.push(id.to_string()),
                    other => panic!(
                        "serde_derive: only plain type parameters are supported on \
                         `{name}`, found {other:?}"
                    ),
                }
            }
        }
    }
    let body = match keyword.as_str() {
        "struct" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde_derive: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    };
    Item {
        name,
        generics,
        body,
    }
}

// -- code generation ----------------------------------------------------------

const CONTENT: &str = "::serde::__private::Content";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => format!("{CONTENT}::Null"),
        Body::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("{CONTENT}::Seq(vec![{}])", elems.join(", "))
        }
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "({CONTENT}::Str(::std::string::String::from(\"{f}\")), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("{CONTENT}::Map(vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => {CONTENT}::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_content(__f0)".to_string()
                            } else {
                                let elems: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                                    .collect();
                                format!("{CONTENT}::Seq(vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binds}) => {CONTENT}::Map(vec![({CONTENT}::Str(\
                                 ::std::string::String::from(\"{vn}\")), {payload})]),",
                                binds = binders.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "({CONTENT}::Str(::std::string::String::from(\"{f}\")), \
                                         ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            let binders: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {CONTENT}::Map(vec![({CONTENT}::Str(\
                                 ::std::string::String::from(\"{vn}\")), {CONTENT}::Map(vec![{e}]))]),",
                                binds = binders.join(", "),
                                e = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{generics} ::serde::Serialize for {name}{args} {{\n\
         fn to_content(&self) -> {CONTENT} {{ {body} }}\n\
         }}",
        generics = item.impl_generics("", "::serde::Serialize"),
        args = item.type_args(),
    )
}

/// One named-field initializer for a generated `Deserialize` impl.
fn field_init(f: &Field, source: &str) -> String {
    let n = &f.name;
    if f.default {
        format!("{n}: ::serde::__private::field_or_default({source}, \"{n}\")?")
    } else {
        format!("{n}: ::serde::__private::field({source}, \"{n}\")?")
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__content)?))"
        ),
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = ::serde::__private::seq(__content, {n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(f, "__content")).collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                        }
                        Shape::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_content(\
                             ::serde::__private::payload(__payload, \"{vn}\")?)?)),"
                        ),
                        Shape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&__seq[{i}])?")
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                 let __seq = ::serde::__private::seq(\
                                 ::serde::__private::payload(__payload, \"{vn}\")?, {n})?;\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| field_init(f, "__payload_map"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                 let __payload_map = \
                                 ::serde::__private::payload(__payload, \"{vn}\")?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__variant, __payload) = ::serde::__private::variant(__content)?;\n\
                 match __variant {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::__private::Error::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl{generics} ::serde::Deserialize<'de> for {name}{args} {{\n\
         fn from_content(__content: &{CONTENT}) \
         -> ::std::result::Result<Self, ::serde::__private::Error> {{\n\
         {body}\n\
         }}\n\
         }}",
        generics = item.impl_generics("'de", "::serde::Deserialize<'de>"),
        args = item.type_args(),
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
