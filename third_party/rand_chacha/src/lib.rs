//! Minimal vendored stand-in for the `rand_chacha` crate.
//!
//! [`ChaCha8Rng`] is a real 8-round ChaCha keystream generator seeded by
//! expanding a `u64` through SplitMix64 (the same construction upstream's
//! `seed_from_u64` uses). Output is deterministic per seed within this
//! workspace, but not bit-identical to upstream `rand_chacha` — nothing in
//! the workspace pins the upstream stream.

use rand::{RngCore, SeedableRng};

/// An 8-round ChaCha pseudo-random generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buf: [u32; 16],
    next_word: usize,
}

const ROUNDS: usize = 8;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, w) in working.iter().enumerate() {
            self.buf[i] = w.wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.next_word = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        // Expand the seed into a 256-bit key with SplitMix64.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        let mut rng = ChaCha8Rng {
            state,
            buf: [0; 16],
            next_word: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.next_word + 2 > 16 {
            self.refill();
        }
        let lo = self.buf[self.next_word] as u64;
        let hi = self.buf[self.next_word + 1] as u64;
        self.next_word += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        let mut c = ChaCha8Rng::seed_from_u64(12);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn works_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = rng.gen_range(0.0..10_000.0);
            assert!((0.0..10_000.0).contains(&x));
            let n: i64 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&n));
        }
    }
}
