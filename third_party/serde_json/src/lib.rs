//! Minimal vendored stand-in for the `serde_json` crate.
//!
//! A complete JSON serializer/parser over the vendored serde's
//! [`serde::content::Content`] tree: objects, arrays, escaped strings
//! (including `\uXXXX` with surrogate pairs), and numbers. Map keys that are
//! integers are stringified on write — matching real serde_json — so
//! `HashMap<NewtypeU64, V>` round-trips.

use serde::content::Content;
use serde::{Deserialize, Serialize};

/// Serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Error {
        Error(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// -- serialization ------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) -> Result<()> {
    if !f.is_finite() {
        return Err(Error::new("JSON cannot represent NaN or infinity"));
    }
    // `{:?}` prints the shortest representation that round-trips, and always
    // includes a decimal point or exponent for non-integers.
    out.push_str(&format!("{f:?}"));
    Ok(())
}

fn key_string(key: &Content) -> Result<String> {
    match key {
        Content::Str(s) => Ok(s.clone()),
        Content::I64(n) => Ok(n.to_string()),
        Content::U64(n) => Ok(n.to_string()),
        Content::Bool(b) => Ok(b.to_string()),
        other => Err(Error::new(format!(
            "JSON object key must be a string, got {other:?}"
        ))),
    }
}

fn write_content(out: &mut String, c: &Content, indent: Option<usize>) -> Result<()> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(f) => write_f64(out, *f)?,
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_content(out, item, indent.map(|l| l + 1))?;
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_escaped(out, &key_string(k)?);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent.map(|l| l + 1))?;
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None)?;
    Ok(out)
}

/// Serialize a value to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(0))?;
    Ok(out)
}

/// Serialize a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

// -- parsing ------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl std::fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn parse_hex4(&mut self) -> Result<u16> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u16::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect a following \uXXXX.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + (((hi as u32) - 0xd800) << 10)
                                        + ((lo as u32) - 0xdc00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.err("invalid number"))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Content::I64(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Content::U64(n))
        } else {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.err("invalid number"))
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn parse_content(bytes: &[u8]) -> Result<Content> {
    let mut p = Parser { bytes, pos: 0 };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

/// Deserialize a value from a JSON string.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    Ok(T::from_content(&parse_content(s.as_bytes())?)?)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<'a, T: Deserialize<'a>>(bytes: &'a [u8]) -> Result<T> {
    Ok(T::from_content(&parse_content(bytes)?)?)
}

// -- dynamic value ------------------------------------------------------------

/// A dynamically-typed JSON value, for callers that want to inspect JSON
/// without a schema. Indexing with a `&str` or `usize` never panics; a
/// missing key yields `Value::Null`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::I64(n) => Content::I64(*n),
            Value::U64(n) => Content::U64(*n),
            Value::F64(f) => Content::F64(*f),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Serialize::to_content).collect()),
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (Content::Str(k.clone()), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_content(content: &Content) -> std::result::Result<Value, serde::de::Error> {
        Ok(match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(n) => Value::I64(*n),
            Content::U64(n) => Value::U64(*n),
            Content::F64(f) => Value::F64(*f),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(
                items
                    .iter()
                    .map(Value::from_content)
                    .collect::<std::result::Result<_, _>>()?,
            ),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| {
                        let key = match k {
                            Content::Str(s) => s.clone(),
                            Content::I64(n) => n.to_string(),
                            Content::U64(n) => n.to_string(),
                            other => {
                                return Err(serde::de::Error::custom(format!(
                                    "object key must be a string, got {other:?}"
                                )))
                            }
                        };
                        Ok((key, Value::from_content(v)?))
                    })
                    .collect::<std::result::Result<_, _>>()?,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_and_container_round_trips() {
        let v: Vec<Option<i64>> = vec![Some(-3), None, Some(12)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[-3,null,12]");
        assert_eq!(from_str::<Vec<Option<i64>>>(&s).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("newline\n\"quote\"".to_string(), 1.5f64);
        let s = to_string(&m).unwrap();
        assert_eq!(from_str::<BTreeMap<String, f64>>(&s).unwrap(), m);
    }

    #[test]
    fn integer_map_keys_are_stringified() {
        let mut m = BTreeMap::new();
        m.insert(7u64, "x".to_string());
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"7":"x"}"#);
        assert_eq!(from_str::<BTreeMap<u64, String>>(&s).unwrap(), m);
    }

    #[test]
    fn unicode_escapes_parse() {
        let got: String = from_str(r#""aé😀b\tc""#).unwrap();
        assert_eq!(got, "aé😀b\tc");
    }

    #[test]
    fn dynamic_value_indexing() {
        let v: Value = from_str(r#"{"a": {"b": [1, 2.5, "x"]}, "n": null}"#).unwrap();
        assert_eq!(v["a"]["b"][0].as_u64(), Some(1));
        assert_eq!(v["a"]["b"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"]["b"][2].as_str(), Some("x"));
        assert!(v["n"].is_null());
        assert!(v["missing"].is_null());
        let back = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&back).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v: Value = from_str(r#"{"a":[1,{"b":true}],"c":"s"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
