//! Minimal vendored stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: strategies for
//! numeric ranges, tuples, `Just`, simple regex-like string patterns,
//! collections and options, `prop_map`/`prop_filter`, `prop_oneof!`, and the
//! `proptest!` test macro with `prop_assert!`/`prop_assert_eq!`. Generation
//! is deterministic per test (fixed base seed, one derived seed per case).
//! There is no shrinking: a failing case reports its assertion message and
//! case number.

pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError(reason.into())
        }

        /// Real proptest distinguishes rejection from failure; here both
        /// simply abort the case with a message.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Run one property: `cases` attempts, each with a seed derived from the
    /// test name so distinct properties see distinct streams.
    pub fn run<F>(config: ProptestConfig, name: &str, f: F)
    where
        F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            name_hash ^= b as u64;
            name_hash = name_hash.wrapping_mul(0x100_0000_01b3);
        }
        for case in 0..config.cases {
            let mut rng = TestRng::from_seed(name_hash ^ ((case as u64) << 32));
            if let Err(e) = f(&mut rng) {
                panic!(
                    "proptest `{name}` failed at case {case}/{}: {e}",
                    config.cases
                );
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("proptest filter `{}` rejected 1000 candidates", self.whence);
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!alternatives.is_empty(), "prop_oneof! needs an alternative");
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    // -- regex-like string patterns ------------------------------------------

    /// One element of a simple pattern: a set of candidate chars plus a
    /// repetition range.
    struct PatternPiece {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        for c in chars.by_ref() {
            match c {
                ']' => return set,
                '-' => {
                    // Range like `a-z`: the next char closes it.
                    prev = Some('-');
                    continue;
                }
                c => {
                    if prev == Some('-') && !set.is_empty() {
                        let start = *set.last().unwrap();
                        let (lo, hi) = (start as u32, c as u32);
                        for code in lo + 1..=hi {
                            if let Some(ch) = char::from_u32(code) {
                                set.push(ch);
                            }
                        }
                    } else {
                        set.push(c);
                    }
                    prev = Some(c);
                }
            }
        }
        panic!("unterminated character class in pattern");
    }

    fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
        let mut pieces = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars),
                '\\' => vec![chars.next().expect("dangling escape in pattern")],
                c => vec![c],
            };
            let (mut min, mut max) = (1usize, 1usize);
            match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let mut parts = spec.splitn(2, ',');
                    min = parts.next().unwrap_or("").trim().parse().unwrap_or(0);
                    max = match parts.next() {
                        Some(m) => m.trim().parse().unwrap_or(min),
                        None => min,
                    };
                }
                Some('*') => {
                    chars.next();
                    min = 0;
                    max = 8;
                }
                Some('+') => {
                    chars.next();
                    min = 1;
                    max = 8;
                }
                Some('?') => {
                    chars.next();
                    min = 0;
                    max = 1;
                }
                _ => {}
            }
            pieces.push(PatternPiece {
                chars: set,
                min,
                max,
            });
        }
        pieces
    }

    /// `&str` as a strategy: interpreted as a simple regex subset
    /// (character classes, `{m,n}`/`*`/`+`/`?` repetition, literals).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let pieces = parse_pattern(self);
            let mut out = String::new();
            for piece in &pieces {
                let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
                for _ in 0..n {
                    let idx = rng.below(piece.chars.len() as u64) as usize;
                    out.push(piece.chars[idx]);
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Canonical strategy for a type (`any::<T>()`).
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    pub struct AnyPrimitive<T>(fn(&mut TestRng) -> T);

    impl<T> Strategy for AnyPrimitive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! arbitrary_impls {
        ($($t:ty => $gen:expr),* $(,)?) => {$(
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive($gen)
                }
            }
        )*};
    }

    arbitrary_impls! {
        bool => |rng| rng.next_u64() & 1 == 1,
        u8 => |rng| rng.next_u64() as u8,
        u16 => |rng| rng.next_u64() as u16,
        u32 => |rng| rng.next_u64() as u32,
        u64 => |rng| rng.next_u64(),
        usize => |rng| rng.next_u64() as usize,
        i8 => |rng| rng.next_u64() as i8,
        i16 => |rng| rng.next_u64() as i16,
        i32 => |rng| rng.next_u64() as i32,
        i64 => |rng| rng.next_u64() as i64,
        isize => |rng| rng.next_u64() as isize,
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `None` a quarter of the time, `Some` of the inner strategy otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(__config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    __left, __right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                    __left, __right, format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($alternative:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($alternative)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror of real proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_ident() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9_]{0,5}".prop_filter("nonempty", |s| !s.is_empty())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(pair in (0usize..10, -5i64..5), f in 0.0..1f64) {
            let (a, b) = pair;
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn idents_match_shape(s in arb_ident()) {
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(s.len() <= 6, "len = {}", s.len());
        }

        #[test]
        fn collections_and_unions(
            v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..6),
            o in prop::option::of(0u8..4)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|x| *x == 1 || *x == 2));
            if let Some(x) = o {
                prop_assert!(x < 4);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = prop::collection::vec(0u64..100, 2..8);
        let a: Vec<u64> = s.generate(&mut TestRng::from_seed(9));
        let b: Vec<u64> = s.generate(&mut TestRng::from_seed(9));
        assert_eq!(a, b);
    }
}
