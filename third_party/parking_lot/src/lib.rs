//! Minimal vendored stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small API slice it actually uses. These are thin
//! wrappers over `std::sync` primitives with parking_lot's ergonomics:
//! `const` constructors and lock methods that never surface poisoning.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive. Unlike `std::sync::Mutex`, `lock()` does not
/// return a poison-wrapped result: a panic while holding the lock does not
/// prevent later use.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with the same no-poisoning contract as [`Mutex`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_is_const_constructible_and_survives_poison() {
        static M: Mutex<i32> = Mutex::new(7);
        assert_eq!(*M.lock(), 7);
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
