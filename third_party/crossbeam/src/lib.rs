//! Minimal vendored stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`. The
//! workspace uses unbounded channels for database event subscription; the
//! mpsc semantics (FIFO, unbounded, `try_iter`) match what the callers need.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    pub use std::sync::mpsc::{RecvError, TryRecvError};

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip_and_try_iter() {
            let (tx, rx) = unbounded();
            for i in 0..3 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
