//! Minimal vendored stand-in for the `criterion` crate.
//!
//! Keeps the bench sources compiling and producing useful wall-clock
//! numbers without the statistical machinery: each benchmark runs a short
//! calibration to pick an iteration count, then reports mean ns/iter on
//! stderr. No plots, no sample persistence, no outlier analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation; recorded so per-element rates can be printed.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count that takes ~20ms.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters = iters.saturating_mul(8);
        };
        // One measured pass at the calibrated count.
        let measure_iters = ((20_000_000.0 / per_iter_ns.max(1.0)) as u64).clamp(1, 1 << 22);
        let start = Instant::now();
        for _ in 0..measure_iters {
            std::hint::black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / measure_iters as f64;
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / mean_ns * 1000.0)
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 / mean_ns * 1000.0 / 1.048_576)
        }
        _ => String::new(),
    };
    eprintln!("bench {name:<50} {mean_ns:>12.1} ns/iter{rate}");
}

/// Top-level benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(id, b.mean_ns, None);
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.id),
            b.mean_ns,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: Into<BenchmarkId>,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            b.mean_ns,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

/// Re-export for bench sources that use `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
