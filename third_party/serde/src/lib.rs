//! Minimal vendored stand-in for the `serde` crate.
//!
//! The build environment has no crates registry, so the workspace vendors a
//! small self-describing serialization facade. Instead of serde's
//! visitor-based zero-copy model, values convert to and from a generic
//! [`content::Content`] tree; format crates (here, the vendored
//! `serde_json`) serialize that tree. The derive macros in the companion
//! `serde_derive` crate generate the same external representation real serde
//! would for the plain structs and enums this workspace defines:
//!
//! * named struct      -> map of field name to value
//! * newtype struct    -> the inner value, transparently
//! * tuple struct      -> sequence
//! * unit enum variant -> the variant name as a string
//! * data-carrying variant -> single-entry map `{ "Variant": payload }`

pub use serde_derive::{Deserialize, Serialize};

pub mod content {
    /// A self-describing value tree: the data model every serializable type
    /// converts through.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Content {
        Null,
        Bool(bool),
        I64(i64),
        U64(u64),
        F64(f64),
        Str(String),
        Seq(Vec<Content>),
        Map(Vec<(Content, Content)>),
    }
}

pub mod de {
    /// Deserialization error: a human-readable description of the mismatch.
    #[derive(Debug, Clone)]
    pub struct Error(String);

    impl Error {
        pub fn custom(msg: impl std::fmt::Display) -> Error {
            Error(msg.to_string())
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}
}

use content::Content;
use de::Error;

/// A value that can render itself as a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// A value that can reconstruct itself from a [`Content`] tree.
pub trait Deserialize<'de>: Sized {
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// -- primitive impls ---------------------------------------------------------

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<$t, Error> {
                let n: i64 = match content {
                    Content::I64(n) => *n,
                    Content::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Content::F64(f) if f.fract() == 0.0 => *f as i64,
                    // Map keys arrive stringified from JSON.
                    Content::Str(s) => s.parse::<i64>()
                        .map_err(|_| Error::custom(format!("expected integer, got {s:?}")))?,
                    other => return Err(Error::custom(format!(
                        "expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
signed_impls!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<$t, Error> {
                let n: u64 = match content {
                    Content::U64(n) => *n,
                    Content::I64(n) => u64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Content::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    Content::Str(s) => s.parse::<u64>()
                        .map_err(|_| Error::custom(format!("expected integer, got {s:?}")))?,
                    other => return Err(Error::custom(format!(
                        "expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
unsigned_impls!(u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        match u64::try_from(*self) {
            Ok(n) => Content::U64(n),
            Err(_) => Content::Str(self.to_string()),
        }
    }
}

impl<'de> Deserialize<'de> for u128 {
    fn from_content(content: &Content) -> Result<u128, Error> {
        match content {
            Content::U64(n) => Ok(*n as u128),
            Content::I64(n) if *n >= 0 => Ok(*n as u128),
            Content::Str(s) => s
                .parse::<u128>()
                .map_err(|_| Error::custom(format!("expected integer, got {s:?}"))),
            other => Err(Error::custom(format!("expected integer, got {other:?}"))),
        }
    }
}

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::F64(*self as f64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<$t, Error> {
                match content {
                    Content::F64(f) => Ok(*f as $t),
                    Content::I64(n) => Ok(*n as $t),
                    Content::U64(n) => Ok(*n as $t),
                    Content::Str(s) => s.parse::<$t>()
                        .map_err(|_| Error::custom(format!("expected number, got {s:?}"))),
                    other => Err(Error::custom(format!(
                        "expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_content(content: &Content) -> Result<bool, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            Content::Str(s) if s == "true" => Ok(true),
            Content::Str(s) if s == "false" => Ok(false),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_content(content: &Content) -> Result<String, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_content(content: &Content) -> Result<char, Error> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!("expected char, got {other:?}"))),
        }
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_content(content: &Content) -> Result<(), Error> {
        match content {
            Content::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, got {other:?}"))),
        }
    }
}

// -- reference / container impls ---------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_content(content: &Content) -> Result<Box<T>, Error> {
        Ok(Box::new(T::from_content(content)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(content: &Content) -> Result<Option<T>, Error> {
        match content {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(content: &Content) -> Result<Vec<T>, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_content(content: &Content) -> Result<($($t,)+), Error> {
                match content {
                    Content::Seq(items) => {
                        let expected = [$($n),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected tuple of {expected}, got {} elements", items.len())));
                        }
                        Ok(($($t::from_content(&items[$n])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected sequence, got {other:?}"))),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

/// Support code invoked from `serde_derive` expansions. Not a public API.
#[doc(hidden)]
pub mod __private {
    pub use crate::content::Content;
    pub use crate::de::Error;
    use crate::Deserialize;

    pub fn get_field<'a>(content: &'a Content, name: &str) -> Option<&'a Content> {
        match content {
            Content::Map(entries) => entries.iter().find_map(|(k, v)| match k {
                Content::Str(s) if s == name => Some(v),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Look up and deserialize a named struct field. A missing key is
    /// retried against `Null` so optional fields tolerate omission.
    pub fn field<'de, T: Deserialize<'de>>(content: &Content, name: &str) -> Result<T, Error> {
        match get_field(content, name) {
            Some(v) => {
                T::from_content(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
            }
            None => T::from_content(&Content::Null)
                .map_err(|_| Error::custom(format!("missing field `{name}`"))),
        }
    }

    /// Like [`field`], but a missing key falls back to `T::default()` —
    /// the behavior of a `#[serde(default)]` field attribute.
    pub fn field_or_default<'de, T: Deserialize<'de> + Default>(
        content: &Content,
        name: &str,
    ) -> Result<T, Error> {
        match get_field(content, name) {
            Some(v) => {
                T::from_content(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
            }
            None => Ok(T::default()),
        }
    }

    pub fn seq(content: &Content, expected: usize) -> Result<&[Content], Error> {
        match content {
            Content::Seq(items) if items.len() == expected => Ok(items),
            Content::Seq(items) => Err(Error::custom(format!(
                "expected {expected} elements, got {}",
                items.len()
            ))),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }

    /// Split an enum representation into `(variant_name, payload)`.
    pub fn variant(content: &Content) -> Result<(&str, Option<&Content>), Error> {
        match content {
            Content::Str(name) => Ok((name, None)),
            Content::Map(entries) if entries.len() == 1 => match &entries[0] {
                (Content::Str(name), payload) => Ok((name, Some(payload))),
                _ => Err(Error::custom("enum variant key must be a string")),
            },
            other => Err(Error::custom(format!("expected enum, got {other:?}"))),
        }
    }

    pub fn payload<'a>(payload: Option<&'a Content>, variant: &str) -> Result<&'a Content, Error> {
        payload.ok_or_else(|| Error::custom(format!("variant `{variant}` expects data")))
    }
}

#[cfg(test)]
mod tests {
    use super::content::Content;
    use super::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i32::from_content(&42i32.to_content()).unwrap(), 42);
        assert_eq!(u64::from_content(&7u64.to_content()).unwrap(), 7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(
            String::from_content(&String::from("hi").to_content()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<i64>::from_content(&Content::Null).unwrap(),
            None::<i64>
        );
    }

    #[test]
    fn maps_accept_stringified_integer_keys() {
        let m = Content::Map(vec![(Content::Str("3".into()), Content::Str("x".into()))]);
        let got: BTreeMap<u64, String> = BTreeMap::from_content(&m).unwrap();
        assert_eq!(got.get(&3).map(String::as_str), Some("x"));
    }
}
