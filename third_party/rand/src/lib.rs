//! Minimal vendored stand-in for the `rand` crate.
//!
//! Provides the `Rng`/`SeedableRng` surface the workspace uses:
//! `gen_range` over half-open and inclusive integer/float ranges, and
//! `gen_bool`. Determinism is per-seed and stable within this workspace;
//! the exact stream does not match upstream `rand` (no test pins it).

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, reduced to the one constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that knows how to sample a uniform value from an RNG.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high-quality bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range_impls {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let offset = rng.next_u64() % span;
                ((self.start as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = rng.next_u64() % (span + 1);
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}

int_range_impls! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

macro_rules! float_range_impls {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = unit_f64(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// A buffer that can be filled with random data.
pub trait Fill {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for chunk in self.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl Fill for [u32] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for word in self.iter_mut() {
            *word = rng.next_u32();
        }
    }
}

impl Fill for [u64] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for word in self.iter_mut() {
            *word = rng.next_u64();
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }

    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds_and_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = a.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            assert_eq!(x, b.gen_range(-1.0..1.0));
            let i: i64 = a.gen_range(1..=4);
            assert!((1..=4).contains(&i));
            let _ = b.gen_range(1..=4i64);
            let u: usize = a.gen_range(0..7);
            assert!(u < 7);
            let _ = b.gen_range(0..7usize);
            assert_eq!(a.gen_bool(0.3), b.gen_bool(0.3));
        }
    }

    #[test]
    fn gen_bool_tracks_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
