//! Differential suite for the binary WAL record codec (`walcodec`).
//!
//! Three contracts (`docs/storage.md`):
//!
//! 1. **Format equivalence**: for any record, decoding the binary frame
//!    yields exactly the same `WalRecord` as serializing to JSON and
//!    parsing that back — the two formats are interchangeable.
//! 2. **Torn frames**: a binary payload truncated at *any* byte offset
//!    fails to decode cleanly (`None`), never panics and never yields a
//!    wrong record — recovery treats it as a torn tail.
//! 3. **Mixed logs**: a log holding a JSON prefix and a binary tail (a
//!    version-1 store reopened by a binary-writing build) recovers to
//!    the same state as an oracle replay, at every truncation offset.

use std::path::PathBuf;

use proptest::prelude::*;

use geodb::db::Database;
use geodb::geometry::{Geometry, Point, Polygon, Polyline};
use geodb::instance::{Instance, Oid};
use geodb::query::DbEvent;
use geodb::schema::{ClassDef, SchemaDef};
use geodb::value::{AttrType, Value};
use geodb::wal::{self, WalConfig, WalFormat, WalOp, WalRecord};
use geodb::walcodec;
use geodb::Epoch;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "activegis-walcodec-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// Arbitrary WalRecords
// ---------------------------------------------------------------------------

/// Attribute/class names drawn from a pool that collides with the
/// codec's static vocabulary about half the time, exercising both the
/// static and the per-frame string table.
fn arb_name() -> BoxedStrategy<String> {
    prop_oneof![
        Just("name".to_string()),
        Just("schema".to_string()),
        Just("x".to_string()),
        Just("optional".to_string()),
        (0..40u32).prop_map(|n| format!("attr_{n}")),
        (0..40u32).prop_map(|n| format!("weird \"n\\ame\" {n}\n")),
    ]
    .boxed()
}

fn arb_float() -> BoxedStrategy<f64> {
    // Finite only: the JSON oracle cannot represent NaN/infinity.
    prop_oneof![
        Just(0.0f64),
        Just(-0.0f64),
        -1.0e12..1.0e12f64,
        (-1.0..1.0f64).prop_map(|f| f / 1.0e9),
    ]
    .boxed()
}

fn arb_point() -> impl Strategy<Value = Point> {
    (arb_float(), arb_float()).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_geometry() -> BoxedStrategy<Geometry> {
    prop_oneof![
        arb_point().prop_map(Geometry::Point),
        proptest::collection::vec(arb_point(), 2..6)
            .prop_map(|pts| Geometry::Polyline(Polyline::new(pts).expect("2+ points"))),
        (arb_float(), arb_float(), 1.0..50.0f64).prop_map(|(x, y, r)| {
            // A triangle is always a valid non-degenerate ring.
            let ring = vec![Point::new(x, y), Point::new(x + r, y), Point::new(x, y + r)];
            Geometry::Polygon(Polygon::new(ring).expect("triangle ring"))
        }),
    ]
    .boxed()
}

fn arb_value(depth: u32) -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        arb_float().prop_map(Value::Float),
        arb_name().prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(|n| Value::Ref(Oid(n))),
        proptest::collection::vec(any::<u8>(), 0..12).prop_map(Value::Bitmap),
        arb_geometry().prop_map(Value::Geometry),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        leaf,
        proptest::collection::vec(arb_value(depth - 1), 0..4).prop_map(Value::List),
        proptest::collection::vec((arb_name(), arb_value(depth - 1)), 0..4).prop_map(Value::Tuple),
    ]
    .boxed()
}

fn arb_attr_type(depth: u32) -> BoxedStrategy<AttrType> {
    let leaf = prop_oneof![
        Just(AttrType::Int),
        Just(AttrType::Float),
        Just(AttrType::Text),
        Just(AttrType::Bool),
        Just(AttrType::Geometry),
        Just(AttrType::Bitmap),
        arb_name().prop_map(AttrType::Ref),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        leaf,
        arb_attr_type(depth - 1).prop_map(|t| AttrType::List(Box::new(t))),
        proptest::collection::vec((arb_name(), arb_attr_type(depth - 1)), 0..3)
            .prop_map(AttrType::Tuple),
    ]
    .boxed()
}

fn arb_schema_def() -> BoxedStrategy<SchemaDef> {
    (
        arb_name(),
        proptest::collection::vec((arb_name(), arb_attr_type(1), any::<bool>()), 0..4),
    )
        .prop_map(|(name, attrs)| {
            let mut class = ClassDef::new("C");
            for (attr, ty, optional) in attrs {
                class = if optional {
                    class.optional_attr(attr, ty)
                } else {
                    class.attr(attr, ty)
                };
            }
            SchemaDef::new(name).class(class)
        })
        .boxed()
}

fn arb_instance() -> BoxedStrategy<Instance> {
    (
        any::<u64>(),
        arb_name(),
        proptest::collection::vec((arb_name(), arb_value(2)), 0..5),
    )
        .prop_map(|(oid, class, values)| {
            let mut inst = Instance::new(Oid(oid), class);
            inst.values = values.into_iter().collect();
            inst
        })
        .boxed()
}

fn arb_event() -> BoxedStrategy<DbEvent> {
    prop_oneof![
        arb_name().prop_map(|schema| DbEvent::GetSchema { schema }),
        (arb_name(), arb_name()).prop_map(|(schema, class)| DbEvent::GetClass { schema, class }),
        (arb_name(), arb_name(), any::<u64>()).prop_map(|(schema, class, oid)| DbEvent::Insert {
            schema,
            class,
            oid: Oid(oid)
        }),
        (arb_name(), arb_name(), any::<u64>()).prop_map(|(schema, class, oid)| DbEvent::Update {
            schema,
            class,
            oid: Oid(oid)
        }),
        (arb_name(), arb_name(), any::<u64>()).prop_map(|(schema, class, oid)| DbEvent::Delete {
            schema,
            class,
            oid: Oid(oid)
        }),
        arb_name().prop_map(|schema| DbEvent::SchemaRegistered { schema }),
    ]
    .boxed()
}

fn arb_op() -> BoxedStrategy<WalOp> {
    prop_oneof![
        arb_schema_def().prop_map(|def| WalOp::Schema { def }),
        (arb_name(), arb_instance())
            .prop_map(|(schema, instance)| WalOp::Upsert { schema, instance }),
        any::<u64>().prop_map(|oid| WalOp::Delete { oid: Oid(oid) }),
    ]
    .boxed()
}

fn arb_record() -> BoxedStrategy<WalRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(arb_event(), 0..4),
        proptest::collection::vec(arb_op(), 0..4),
    )
        .prop_map(|(epoch, next_oid, events, ops)| WalRecord {
            epoch: Epoch(epoch),
            next_oid,
            events,
            ops,
        })
        .boxed()
}

// ---------------------------------------------------------------------------
// Codec properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode(binary(rec)) == rec == decode(json(rec)): the binary codec
    /// and the JSON codec agree on every record either can produce.
    #[test]
    fn binary_and_json_decode_to_the_same_record(rec in arb_record()) {
        let bin = walcodec::encode_record(&rec);
        prop_assert_eq!(bin.first(), Some(&walcodec::BINARY_MARKER));
        let via_binary = walcodec::decode_record(&bin)
            .expect("well-formed binary frame must decode");
        prop_assert_eq!(&via_binary, &rec, "binary round-trip diverged");

        let json = serde_json::to_vec(&rec).expect("finite floats encode");
        let via_json: WalRecord = serde_json::from_slice(&json).expect("JSON round-trip");
        prop_assert_eq!(&via_binary, &via_json, "formats disagree");

        // Both paths feed the same sniffing decoder recovery uses.
        let sniffed_bin = wal::decode_payload(&bin);
        let sniffed_json = wal::decode_payload(&json);
        prop_assert_eq!(sniffed_bin.as_ref(), Some(&rec));
        prop_assert_eq!(sniffed_json.as_ref(), Some(&rec));
    }

    /// Every strict prefix of a binary frame fails to decode — no panic,
    /// no bogus record. This is what makes torn-tail truncation safe for
    /// binary frames.
    #[test]
    fn truncated_binary_frames_never_decode(rec in arb_record()) {
        let bin = walcodec::encode_record(&rec);
        for cut in 0..bin.len() {
            prop_assert!(
                walcodec::decode_record(&bin[..cut]).is_none(),
                "prefix of {} bytes decoded to a record",
                cut
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Mixed-format logs
// ---------------------------------------------------------------------------

fn seeded_db(name: &str) -> Database {
    let mut db = Database::new(name);
    db.register_schema(
        SchemaDef::new("grid").class(
            ClassDef::new("Cell")
                .attr("name", AttrType::Text)
                .attr("level", AttrType::Int),
        ),
    )
    .unwrap();
    db.drain_events();
    db
}

fn insert_cell(db: &mut Database, i: i64) -> geodb::Result<Oid> {
    db.insert(
        "grid",
        "Cell",
        vec![
            ("name".into(), Value::Text(format!("c{i}"))),
            ("level".into(), Value::Int(i)),
        ],
    )
}

/// Oracle: the first `n` inserts replayed on a plain database.
fn oracle_bytes(n: usize) -> String {
    let mut db = seeded_db("mixed");
    for i in 0..n {
        insert_cell(&mut db, i as i64).unwrap();
        db.drain_events();
    }
    geodb::snapshot::save(&mut db).unwrap()
}

/// The payload format of each complete frame in a log file.
fn frame_formats(path: &std::path::Path) -> Vec<WalFormat> {
    let bytes = std::fs::read(path).unwrap();
    let mut formats = Vec::new();
    let mut off = 12; // file header
    while off + 12 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let start = off + 12;
        if start + len > bytes.len() {
            break;
        }
        formats.push(if bytes[start] == walcodec::BINARY_MARKER {
            WalFormat::Binary
        } else {
            WalFormat::Json
        });
        off = start + len;
    }
    formats
}

/// A JSON-era log reopened by a binary-writing store: recovery replays
/// the JSON prefix, appends binary frames after it, and a second
/// recovery replays the mixed log to the same state as the oracle.
#[test]
fn mixed_format_log_recovers_like_the_oracle() {
    const JSON_WRITES: usize = 4;
    const BINARY_WRITES: usize = 4;
    let dir = tmp_dir("mixed");

    let json_config = || WalConfig::new(&dir).record_format(WalFormat::Json);
    let binary_config = || WalConfig::new(&dir).record_format(WalFormat::Binary);

    {
        let (store, report) = wal::open(seeded_db("mixed"), json_config()).unwrap();
        assert!(report.is_none());
        for i in 0..JSON_WRITES {
            store.write(|db| insert_cell(db, i as i64)).unwrap();
        }
    }
    {
        let (store, report) = wal::recover(binary_config()).unwrap();
        assert_eq!(report.replayed_records, JSON_WRITES as u64);
        for i in 0..BINARY_WRITES {
            store
                .write(|db| insert_cell(db, (JSON_WRITES + i) as i64))
                .unwrap();
        }
        let (status, _) = store.wal_status().unwrap();
        assert_eq!(status.records, BINARY_WRITES as u64);
        assert!(status.payload_bytes > 0);
    }

    let formats = frame_formats(&dir.join(wal::WAL_FILE));
    assert_eq!(formats.len(), JSON_WRITES + BINARY_WRITES);
    assert_eq!(&formats[..JSON_WRITES], &[WalFormat::Json; JSON_WRITES]);
    assert_eq!(&formats[JSON_WRITES..], &[WalFormat::Binary; BINARY_WRITES]);

    let (recovered, report) = wal::recover(binary_config()).unwrap();
    assert_eq!(
        report.replayed_records,
        (JSON_WRITES + BINARY_WRITES) as u64,
        "both formats replay"
    );
    assert!(report.torn.is_none());
    assert_eq!(
        geodb::snapshot::save_snapshot(&recovered.snapshot()).unwrap(),
        oracle_bytes(JSON_WRITES + BINARY_WRITES),
        "mixed-format recovery diverged from the oracle"
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}

/// Truncate the mixed log at a sweep of byte offsets: recovery always
/// succeeds and lands on the oracle prefix of however many complete
/// frames survive — JSON and binary frames alike.
#[test]
fn mixed_log_truncation_sweep_holds_at_every_offset() {
    const JSON_WRITES: usize = 3;
    const BINARY_WRITES: usize = 3;
    let dir = tmp_dir("mixed-torn");

    {
        let (store, _) = wal::open(
            seeded_db("mixed"),
            WalConfig::new(&dir).record_format(WalFormat::Json),
        )
        .unwrap();
        for i in 0..JSON_WRITES {
            store.write(|db| insert_cell(db, i as i64)).unwrap();
        }
    }
    {
        let (store, _) =
            wal::recover(WalConfig::new(&dir).record_format(WalFormat::Binary)).unwrap();
        for i in 0..BINARY_WRITES {
            store
                .write(|db| insert_cell(db, (JSON_WRITES + i) as i64))
                .unwrap();
        }
    }

    let wal_path = dir.join(wal::WAL_FILE);
    let full = std::fs::read(&wal_path).unwrap();
    let scratch = tmp_dir("mixed-torn-scratch");
    std::fs::create_dir_all(&scratch).unwrap();
    for name in [wal::CHECKPOINT_FILE, wal::CHECKPOINT_META_FILE] {
        std::fs::copy(dir.join(name), scratch.join(name)).unwrap();
    }
    // Prime stride hits every alignment class; the final iteration is
    // the untruncated log.
    let mut cut = 0usize;
    while cut <= full.len() {
        std::fs::write(scratch.join(wal::WAL_FILE), &full[..cut.min(full.len())]).unwrap();
        let (store, report) =
            wal::recover(WalConfig::new(&scratch).record_format(WalFormat::Binary)).unwrap();
        let replayed = report.replayed_records as usize;
        assert!(
            replayed <= JSON_WRITES + BINARY_WRITES,
            "cut {cut}: replayed more than was written"
        );
        assert_eq!(
            geodb::snapshot::save_snapshot(&store.snapshot()).unwrap(),
            oracle_bytes(replayed),
            "cut {cut}: recovered bytes diverge from the {replayed}-op oracle"
        );
        drop(store);
        if cut == full.len() {
            break;
        }
        cut = (cut + 7).min(full.len());
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

/// The size win the format exists for: binary frames for a realistic
/// commit stream are at least 2x smaller than the same records as JSON.
#[test]
fn binary_frames_are_at_least_twice_as_small_as_json() {
    let mut json_bytes = 0usize;
    let mut binary_bytes = 0usize;
    let mut db = seeded_db("size");
    for i in 0..32i64 {
        let oid = insert_cell(&mut db, i).unwrap();
        let events = db.drain_events();
        let rec = WalRecord {
            epoch: Epoch(i as u64 + 2),
            next_oid: oid.0 + 1,
            events,
            ops: vec![WalOp::Upsert {
                schema: "grid".into(),
                instance: Instance {
                    oid,
                    class: "Cell".into(),
                    values: [
                        ("name".to_string(), Value::Text(format!("c{i}"))),
                        ("level".to_string(), Value::Int(i)),
                    ]
                    .into_iter()
                    .collect(),
                },
            }],
        };
        json_bytes += wal::encode_payload_with(&rec, WalFormat::Json)
            .unwrap()
            .len();
        binary_bytes += wal::encode_payload_with(&rec, WalFormat::Binary)
            .unwrap()
            .len();
    }
    assert!(
        binary_bytes * 2 <= json_bytes,
        "binary {binary_bytes}B not 2x smaller than JSON {json_bytes}B"
    );
}
