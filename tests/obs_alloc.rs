//! Disabled-path overhead guard: when metric collection is off and
//! trace sampling is disarmed, every obs hook must collapse to one
//! relaxed atomic load — in particular, it must never allocate. A
//! counting global allocator proves it: the fully-disarmed hot path
//! performs zero allocations across thousands of hook invocations.
//!
//! This test binary must stay single-test: the counting allocator is
//! process-global, and a parallel test allocating on another thread
//! would poison the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn disarmed_hooks_never_allocate() {
    // Warm up: registering the names (and the registry itself) is
    // allowed to allocate — the claim is about the steady-state hot
    // path, not first use.
    obs::set_enabled(true);
    obs::counter_add("alloc_test.hits", 1);
    obs::record_nanos("alloc_test.lat", 100);
    {
        let _root = obs::trace_root("alloc_test.request");
        let _inner = obs::span("alloc_test.inner");
    }

    // Fully disarm: metrics off, sampling off.
    obs::set_enabled(false);
    obs::set_trace_sampling(0);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        obs::counter_add("alloc_test.hits", 1);
        obs::record_nanos("alloc_test.lat", 100);
        obs::counter_add_labeled("alloc_test.labeled", &[("shard", "0")], 1);
        {
            let _root = obs::trace_root("alloc_test.request");
            let _inner = obs::span("alloc_test.inner");
            obs::trace_annotate("k", "v");
            obs::trace_event("alloc_test.leaf", &[]);
            obs::trace_mark_fault();
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    obs::set_enabled(true);

    assert_eq!(
        after - before,
        0,
        "disarmed obs hooks allocated {} times over 10k iterations",
        after - before
    );

    // Sanity: the hooks come back to life when re-armed.
    let snap_before = obs::snapshot().counter("alloc_test.hits");
    obs::counter_add("alloc_test.hits", 1);
    assert_eq!(obs::snapshot().counter("alloc_test.hits"), snap_before + 1);
}
