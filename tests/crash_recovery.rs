//! Crash-recovery differential suite for the durable write path.
//!
//! The contract under test (`docs/storage.md`):
//!
//! 1. **Durability**: once `DbStore::write` returns, the commit survives
//!    any crash — recovery replays the WAL tail on top of the newest
//!    checkpoint and lands on a byte-identical snapshot.
//! 2. **Kill points**: a crash injected at `wal.append`, `wal.fsync` or
//!    `db.publish` (the window between durability and visibility) never
//!    loses an acknowledged epoch and never resurrects a torn record.
//! 3. **Torn tails**: a log truncated at *any* byte offset recovers to
//!    the last complete frame — corruption is truncation, not failure.
//!
//! Every test replays an oracle: the same op prefix applied to a plain
//! mutable [`Database`], compared byte-for-byte through the snapshot
//! serializer. Seeded chain tests take their seed from `CRASH_SEED`
//! (CI sweeps 7, 1994, 271828).

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use geodb::db::Database;
use geodb::instance::Oid;
use geodb::schema::{ClassDef, SchemaDef};
use geodb::store::DbStore;
use geodb::value::{AttrType, Value};
use geodb::wal::{self, WalConfig};

/// Failpoints are process-global: every test in this binary serializes
/// on one mutex so an armed kill point never leaks into a neighbor.
fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    faultsim::reset();
    guard
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "activegis-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid_schema() -> SchemaDef {
    SchemaDef::new("grid")
        .class(
            ClassDef::new("Cell")
                .attr("name", AttrType::Text)
                .attr("level", AttrType::Int),
        )
        .class(
            ClassDef::new("Probe")
                .attr("name", AttrType::Text)
                .attr("reading", AttrType::Float),
        )
}

fn seeded_db(name: &str) -> Database {
    let mut db = Database::new(name);
    db.register_schema(grid_schema()).unwrap();
    db.drain_events();
    db
}

/// One mutation of a schedule; targets index into the OIDs ever
/// allocated so updates/deletes sometimes hit dead objects.
#[derive(Debug, Clone)]
enum Op {
    InsertCell { name: u8, level: i64 },
    InsertProbe { name: u8, reading: i64 },
    Update { target: usize, level: i64 },
    Delete { target: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), -100..100i64).prop_map(|(name, level)| Op::InsertCell { name, level }),
        (any::<u8>(), -100..100i64).prop_map(|(name, reading)| Op::InsertProbe { name, reading }),
        (0..24usize, -100..100i64).prop_map(|(target, level)| Op::Update { target, level }),
        (0..24usize).prop_map(|target| Op::Delete { target }),
    ]
}

fn random_op(rng: &mut ChaCha8Rng) -> Op {
    match rng.gen_range(0..4u8) {
        0 => Op::InsertCell {
            name: rng.gen_range(0..=u8::MAX),
            level: rng.gen_range(-100..100),
        },
        1 => Op::InsertProbe {
            name: rng.gen_range(0..=u8::MAX),
            reading: rng.gen_range(-100..100),
        },
        2 => Op::Update {
            target: rng.gen_range(0..24),
            level: rng.gen_range(-100..100),
        },
        _ => Op::Delete {
            target: rng.gen_range(0..24),
        },
    }
}

fn apply(db: &mut Database, op: &Op, oids: &[Oid]) -> geodb::Result<Option<Oid>> {
    match op {
        Op::InsertCell { name, level } => db
            .insert(
                "grid",
                "Cell",
                vec![
                    ("name".into(), Value::Text(format!("c{name}"))),
                    ("level".into(), Value::Int(*level)),
                ],
            )
            .map(Some),
        Op::InsertProbe { name, reading } => db
            .insert(
                "grid",
                "Probe",
                vec![
                    ("name".into(), Value::Text(format!("p{name}"))),
                    ("reading".into(), Value::Float(*reading as f64 / 4.0)),
                ],
            )
            .map(Some),
        Op::Update { target, level } => {
            let oid = oids
                .get(*target)
                .copied()
                .unwrap_or(Oid(u64::MAX - *target as u64));
            db.update(oid, vec![("level".into(), Value::Int(*level))])
                .map(|()| None)
        }
        Op::Delete { target } => {
            let oid = oids
                .get(*target)
                .copied()
                .unwrap_or(Oid(u64::MAX - *target as u64));
            db.delete(oid).map(|()| None)
        }
    }
}

/// Replay the first `n` ops of a schedule on a fresh oracle database and
/// serialize it. Closure errors are ignored exactly as the store's
/// republish-on-abort semantics retain partial mutations.
fn oracle_bytes(name: &str, ops: &[Op], n: usize) -> String {
    let mut db = seeded_db(name);
    let mut oids = Vec::new();
    for op in &ops[..n] {
        if let Ok(Some(oid)) = apply(&mut db, op, &oids.clone()) {
            oids.push(oid);
        }
        db.drain_events();
    }
    geodb::snapshot::save(&mut db).unwrap()
}

fn store_bytes(store: &DbStore) -> String {
    geodb::snapshot::save_snapshot(&store.snapshot()).unwrap()
}

const KILL_POINTS: [&str; 3] = ["wal.append", "wal.fsync", "db.publish"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash a random schedule at a random write through each of the
    /// three kill points. Recovery must land on exactly the last durable
    /// epoch: every acknowledged write survives, the torn write never
    /// half-appears, and the recovered snapshot is byte-identical to an
    /// oracle replay of the durable prefix.
    #[test]
    fn killed_commit_recovers_to_the_last_durable_epoch(
        ops in prop::collection::vec(arb_op(), 1..20),
        kill_at in 1..20usize,
        kill_point in 0..3usize,
    ) {
        let _g = serialized();
        let kill_at = kill_at.min(ops.len());
        let point = KILL_POINTS[kill_point];
        let dir = tmp_dir("kill");
        let (store, report) = wal::open(seeded_db("crash"), WalConfig::new(&dir)).unwrap();
        prop_assert!(report.is_none(), "fresh directory must not recover");

        let mut oids: Vec<Oid> = Vec::new();
        let mut acknowledged = 0usize;
        for (i, op) in ops.iter().enumerate() {
            let write_no = i + 1;
            let killed = write_no == kill_at;
            if killed {
                faultsim::arm(point, faultsim::Trigger::Always, faultsim::FaultAction::Error);
            }
            let oids_view = oids.clone();
            let res = store.write(|db| apply(db, op, &oids_view));
            if killed {
                faultsim::disarm(point);
                prop_assert!(res.is_err(), "killed write must not acknowledge");
                break;
            }
            // Commit succeeded (the closure itself may have errored —
            // that still consumes the epoch and is acknowledged durable).
            acknowledged += 1;
            if let Ok(c) = res {
                if let Some(oid) = c.value {
                    oids.push(oid);
                }
            }
        }
        prop_assert!(store.poisoned().is_some(), "kill poisons the store");
        prop_assert!(
            store.write(|_| Ok(())).is_err(),
            "poisoned store refuses writes"
        );
        drop(store);

        let (recovered, report) = wal::recover(WalConfig::new(&dir)).unwrap();
        let r = report.recovered_epoch;
        // Acknowledged writes 1..=A hold epochs 2..=A+1.
        prop_assert!(
            r > acknowledged as u64,
            "lost an acknowledged epoch: recovered {} < {}",
            r,
            acknowledged + 1
        );
        prop_assert!(
            r <= acknowledged as u64 + 2,
            "resurrected more than the one in-flight write"
        );
        if point == "db.publish" {
            // Durable-but-unpublished: the killed write was already on
            // disk, so recovery replays past the acknowledged frontier.
            prop_assert_eq!(r, acknowledged as u64 + 2);
        } else {
            // Torn/unsynced: the killed write never became durable.
            prop_assert_eq!(r, acknowledged as u64 + 1);
        }
        prop_assert_eq!(recovered.epoch(), r);
        prop_assert_eq!(recovered.durable_epoch(), r);
        prop_assert_eq!(
            store_bytes(&recovered),
            oracle_bytes("crash", &ops, (r.get() - 1) as usize),
            "recovered snapshot diverged from the oracle prefix"
        );
        // The recovered store accepts new durable writes.
        recovered
            .write(|db| {
                db.insert(
                    "grid",
                    "Cell",
                    vec![
                        ("name".into(), Value::Text("post".into())),
                        ("level".into(), Value::Int(1)),
                    ],
                )
            })
            .unwrap();
        prop_assert_eq!(recovered.epoch(), r + 1);
        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Truncate the log at a sweep of byte offsets: recovery must always
/// succeed, keeping exactly the complete frames below the cut.
#[test]
fn torn_tail_recovers_at_every_truncation_offset() {
    let _g = serialized();
    let dir = tmp_dir("torn");
    let ops: Vec<Op> = (0..6)
        .map(|i| Op::InsertCell {
            name: i as u8,
            level: i,
        })
        .collect();
    {
        let (store, _) = wal::open(seeded_db("torn"), WalConfig::new(&dir)).unwrap();
        let mut oids = Vec::new();
        for op in &ops {
            let oids_view = oids.clone();
            if let Some(oid) = store.write(|db| apply(db, op, &oids_view)).unwrap().value {
                oids.push(oid);
            }
        }
    }
    let wal_path = dir.join(wal::WAL_FILE);
    let full = std::fs::read(&wal_path).unwrap();
    let scratch = tmp_dir("torn-scratch");
    std::fs::create_dir_all(&scratch).unwrap();
    for name in [wal::CHECKPOINT_FILE, wal::CHECKPOINT_META_FILE] {
        std::fs::copy(dir.join(name), scratch.join(name)).unwrap();
    }
    // Every 7th offset (prime stride hits every alignment class), plus
    // the exact frame boundaries via the full-length case.
    let mut cut = 0usize;
    while cut <= full.len() {
        std::fs::write(scratch.join(wal::WAL_FILE), &full[..cut]).unwrap();
        let (store, report) = wal::recover(WalConfig::new(&scratch)).unwrap();
        let replayed = report.replayed_records as usize;
        assert!(
            replayed <= ops.len(),
            "cut {cut}: replayed more records than were written"
        );
        assert_eq!(
            store_bytes(&store),
            oracle_bytes("torn", &ops, replayed),
            "cut {cut}: recovered bytes diverge from the {replayed}-op oracle"
        );
        drop(store);
        cut += 7;
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

/// A seeded chain of crash/recover cycles over one directory — the
/// long-haul shape CI sweeps with `CRASH_SEED` ∈ {7, 1994, 271828}.
/// After every cycle the recovered store must match an oracle replay of
/// every surviving epoch, with auto-checkpoints landing mid-chain.
#[test]
fn seeded_crash_chain_replays_every_surviving_epoch() {
    let _g = serialized();
    let seed: u64 = std::env::var("CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dir = tmp_dir("chain");
    let config = || WalConfig::new(&dir).checkpoint_every(5);

    // All ops that still hold an epoch, in epoch order.
    let mut history: Vec<Op> = Vec::new();
    let mut oids: Vec<Oid> = Vec::new();
    let (mut store, report) = wal::open(seeded_db("chain"), config()).unwrap();
    assert!(report.is_none());

    for _cycle in 0..6 {
        let writes = rng.gen_range(3..10);
        for _ in 0..writes {
            let op = random_op(&mut rng);
            let oids_view = oids.clone();
            let res = store.write(|db| apply(db, &op, &oids_view));
            history.push(op);
            if let Ok(c) = res {
                if let Some(oid) = c.value {
                    oids.push(oid);
                }
            }
        }
        // Crash mid-commit at a random kill point.
        let point = KILL_POINTS[rng.gen_range(0..KILL_POINTS.len())];
        faultsim::arm(
            point,
            faultsim::Trigger::Always,
            faultsim::FaultAction::Error,
        );
        let op = random_op(&mut rng);
        let oids_view = oids.clone();
        let _ = store.write(|db| apply(db, &op, &oids_view));
        faultsim::disarm(point);
        history.push(op);
        drop(store);

        let (recovered, report) = wal::recover(config()).unwrap();
        let surviving = (report.recovered_epoch.get() - 1) as usize;
        assert!(
            surviving <= history.len(),
            "cycle {_cycle}: recovered beyond the issued history"
        );
        // Epochs beyond the durable frontier died with the crash.
        history.truncate(surviving);
        assert_eq!(
            store_bytes(&recovered),
            oracle_bytes("chain", &history, history.len()),
            "cycle {_cycle} (seed {seed}): recovery diverged"
        );
        // Rebuild the oracle's view of live OIDs for the next cycle.
        let mut db = seeded_db("chain");
        oids.clear();
        for op in &history {
            if let Ok(Some(oid)) = apply(&mut db, op, &oids.clone()) {
                oids.push(oid);
            }
        }
        store = recovered;
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: a closure that errors *after* mutating still
/// republishes (published state never diverges from the writer db), and
/// with a WAL attached the logged batch matches the published state —
/// proven by crash-recovering to identical bytes.
#[test]
fn aborted_write_republishes_and_logs_consistently() {
    let _g = serialized();
    // Volatile store: the pre-WAL abort semantics, pinned.
    let store = DbStore::new(seeded_db("abort"));
    let epoch_before = store.epoch();
    let err = store
        .write(|db| -> geodb::Result<()> {
            db.insert(
                "grid",
                "Cell",
                vec![
                    ("name".into(), Value::Text("half".into())),
                    ("level".into(), Value::Int(1)),
                ],
            )?;
            Err(geodb::GeoDbError::InvalidQuery("abort after mutate".into()))
        })
        .unwrap_err();
    assert!(matches!(err, geodb::GeoDbError::InvalidQuery(_)));
    assert_eq!(store.epoch(), epoch_before + 1, "abort still publishes");
    assert_eq!(
        store.snapshot().extent_size("grid", "Cell"),
        1,
        "the partial mutation is visible"
    );

    // Durable store: the WAL records the batch exactly as published.
    let dir = tmp_dir("abort");
    let (store, _) = wal::open(seeded_db("abort"), WalConfig::new(&dir)).unwrap();
    let res = store.write(|db| -> geodb::Result<()> {
        db.insert(
            "grid",
            "Cell",
            vec![
                ("name".into(), Value::Text("half".into())),
                ("level".into(), Value::Int(1)),
            ],
        )?;
        Err(geodb::GeoDbError::InvalidQuery("abort after mutate".into()))
    });
    assert!(matches!(res, Err(geodb::GeoDbError::InvalidQuery(_))));
    assert_eq!(store.epoch(), 2);
    assert_eq!(store.durable_epoch(), 2, "the aborted batch is durable");
    let published = store_bytes(&store);
    drop(store);
    let (recovered, report) = wal::recover(WalConfig::new(&dir)).unwrap();
    assert_eq!(report.recovered_epoch, 2);
    assert_eq!(
        store_bytes(&recovered),
        published,
        "WAL diverged from the published abort state"
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}

/// Concurrent writers share fsyncs through group commit: with a window
/// armed, batches of more than one commit form, every write is
/// acknowledged durable, and the final state still matches a recovery.
#[test]
fn group_commit_batches_concurrent_writers() {
    let _g = serialized();
    const WRITERS: usize = 4;
    const WRITES_EACH: usize = 25;
    let dir = tmp_dir("group");
    let (store, _) = wal::open(
        seeded_db("group"),
        WalConfig::new(&dir).group_window(Duration::from_millis(20)),
    )
    .unwrap();

    // A long-pinned reader across the storm: retention must stay
    // bounded anyway.
    let mut pinned = store.reader();
    pinned.pin();

    let mut seed_oids = Vec::new();
    store
        .write(|db| {
            for i in 0..WRITERS {
                seed_oids.push(db.insert(
                    "grid",
                    "Cell",
                    vec![
                        ("name".into(), Value::Text(format!("w{i}"))),
                        ("level".into(), Value::Int(0)),
                    ],
                )?);
            }
            Ok(())
        })
        .unwrap();

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(WRITERS));
    let threads: Vec<_> = seed_oids
        .iter()
        .map(|&oid| {
            let store = store.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..WRITES_EACH {
                    store
                        .write(|db| db.update(oid, vec![("level".into(), Value::Int(i as i64))]))
                        .expect("storm write commits durably");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("writer thread");
    }

    let total = (WRITERS * WRITES_EACH) as u64 + 1; // + the seed write
    assert_eq!(store.epoch(), 1 + total);
    assert_eq!(store.durable_epoch(), store.epoch());
    let (status, durable) = store.wal_status().expect("durable store");
    assert_eq!(durable, store.epoch());
    assert_eq!(status.records, total);
    assert!(
        status.max_group >= 2,
        "no batch ever formed: {status:?} — group commit is not batching"
    );
    assert!(
        status.fsyncs < total,
        "every commit paid its own fsync despite the window"
    );
    assert!(
        store.epochs_retained() <= 8,
        "retention unbounded under a pinned reader"
    );
    drop(pinned);

    let published = store_bytes(&store);
    drop(store);
    let (recovered, report) = wal::recover(WalConfig::new(&dir)).unwrap();
    assert_eq!(report.recovered_epoch, 1 + total);
    assert_eq!(store_bytes(&recovered), published);
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}

/// An explicit checkpoint truncates the log and recovery starts from it.
#[test]
fn checkpoint_truncates_and_recovery_resumes_from_it() {
    let _g = serialized();
    let dir = tmp_dir("ckpt");
    let (store, _) = wal::open(seeded_db("ckpt"), WalConfig::new(&dir)).unwrap();
    let ops: Vec<Op> = (0..4)
        .map(|i| Op::InsertCell {
            name: i as u8,
            level: i,
        })
        .collect();
    let mut oids = Vec::new();
    for op in &ops[..2] {
        let oids_view = oids.clone();
        if let Some(oid) = store.write(|db| apply(db, op, &oids_view)).unwrap().value {
            oids.push(oid);
        }
    }
    let ckpt_epoch = store.checkpoint().unwrap();
    assert_eq!(ckpt_epoch, 3, "checkpoint sits at the durable frontier");
    let (status, _) = store.wal_status().unwrap();
    assert_eq!(status.checkpoint_epoch, 3);
    for op in &ops[2..] {
        let oids_view = oids.clone();
        if let Some(oid) = store.write(|db| apply(db, op, &oids_view)).unwrap().value {
            oids.push(oid);
        }
    }
    let published = store_bytes(&store);
    drop(store);
    let (recovered, report) = wal::recover(WalConfig::new(&dir)).unwrap();
    assert_eq!(report.checkpoint_epoch, 3);
    assert_eq!(report.replayed_records, 2, "only the post-checkpoint tail");
    assert_eq!(report.recovered_epoch, 5);
    assert_eq!(store_bytes(&recovered), published);
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}
