//! Integration test for the paper's worked example (Section 4):
//! Fig. 5 (the Pole schema), Fig. 6 (the customization program and its
//! rules R1/R2/R3), Fig. 4 (default windows) and Fig. 7 (customized
//! windows).

use activegis::{
    ActiveGis, AttrType, Customization, Event, SchemaMode, SessionContext, TelecomConfig,
    FIG6_PROGRAM,
};
use geodb::query::DbEvent;

fn demo() -> ActiveGis {
    ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap()
}

/// Fig. 5: the `Pole` class as declared in the paper.
#[test]
fn fig5_pole_schema_matches_paper() {
    let mut gis = demo();
    let snap = gis.dispatcher().snapshot();
    let pole = snap.catalog().class("phone_net", "Pole").unwrap().clone();

    let attr_names: Vec<&str> = pole.attrs.iter().map(|a| a.name.as_str()).collect();
    assert_eq!(
        attr_names,
        vec![
            "pole_type",
            "pole_composition",
            "pole_supplier",
            "pole_location",
            "pole_picture",
            "pole_historic",
        ]
    );
    assert_eq!(pole.own_attr("pole_type").unwrap().ty, AttrType::Int);
    assert_eq!(
        pole.own_attr("pole_composition").unwrap().ty,
        AttrType::Tuple(vec![
            ("pole_material".into(), AttrType::Text),
            ("pole_diameter".into(), AttrType::Float),
            ("pole_height".into(), AttrType::Float),
        ])
    );
    assert_eq!(
        pole.own_attr("pole_supplier").unwrap().ty,
        AttrType::Ref("Supplier".into())
    );
    assert_eq!(
        pole.own_attr("pole_location").unwrap().ty,
        AttrType::Geometry
    );
    assert_eq!(pole.own_attr("pole_picture").unwrap().ty, AttrType::Bitmap);
    assert_eq!(pole.own_attr("pole_historic").unwrap().ty, AttrType::Text);

    let m = pole.own_method("get_supplier_name").unwrap();
    assert_eq!(m.params, vec![AttrType::Ref("Supplier".into())]);
    assert_eq!(m.returns, AttrType::Text);
}

/// Fig. 6: the program compiles into the three rules the paper describes,
/// and they fire exactly as R1 and R2 do in Section 4.
#[test]
fn fig6_rules_fire_like_r1_r2() {
    let program = activegis::parse(FIG6_PROGRAM).unwrap();
    let rules = activegis::compile(&program, "fig6");
    assert_eq!(rules.len(), 3);

    let mut engine: activegis::Engine<Customization> = activegis::Engine::new();
    engine.add_rules(rules).unwrap();
    let juliano = SessionContext::new("juliano", "planner", "pole_manager");

    // R1: On Get_Schema If <juliano, pole_manager> Then
    // Build_Window(Schema, phone_net, NULL); Get_Class(Pole).
    let out = engine
        .dispatch(
            Event::Db(DbEvent::GetSchema {
                schema: "phone_net".into(),
            }),
            &juliano,
        )
        .unwrap();
    let Customization::SchemaWindow {
        schema,
        mode,
        classes,
    } = out.customization().unwrap()
    else {
        panic!("R1 must customize the Schema window");
    };
    assert_eq!(schema, "phone_net");
    assert_eq!(*mode, SchemaMode::Null);
    assert_eq!(classes, &["Pole".to_string()]);

    // R2: On Get_Class If <juliano, pole_manager> Then
    // Build_Window(Class_set, Pole, Pole_Widget, pointFormat).
    let out = engine
        .dispatch(
            Event::Db(DbEvent::GetClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            }),
            &juliano,
        )
        .unwrap();
    let Customization::ClassWindow {
        class,
        control,
        presentation,
        ..
    } = out.customization().unwrap()
    else {
        panic!("R2 must customize the Class_set window");
    };
    assert_eq!(class, "Pole");
    assert_eq!(control.as_deref(), Some("poleWidget"));
    assert_eq!(presentation.as_deref(), Some("pointFormat"));
}

/// Fig. 4: the default windows for a non-customized user.
#[test]
fn fig4_default_windows() {
    let mut gis = demo();
    let sid = gis.login("maria", "operator", "network_browse");

    // Schema window: "a schema window with a list of classes".
    let windows = gis.browse_schema(sid, "phone_net").unwrap();
    assert_eq!(windows.len(), 1);
    let schema_art = gis.render(windows[0]).unwrap();
    for class in ["Supplier", "Pole", "Duct", "District"] {
        assert!(schema_art.contains(class));
    }

    // Class window: "the class schema and a generic map with class
    // instances" — control + presentation areas.
    let class_win = gis.browse_class(sid, "phone_net", "Pole").unwrap();
    let class_art = gis.render(class_win).unwrap();
    assert!(class_art.contains("control"));
    assert!(class_art.contains("display"));
    assert!(class_art.contains("[ Zoom ]"));
    assert!(class_art.contains('.'), "poles appear as points");

    // Instance window: every attribute with its default presentation.
    let poles = gis
        .dispatcher()
        .snapshot()
        .get_class("phone_net", "Pole", false)
        .unwrap();
    let inst_win = gis.inspect(sid, poles[0].oid).unwrap();
    let inst_art = gis.render(inst_win).unwrap();
    for attr in [
        "pole_type",
        "pole_composition",
        "pole_supplier",
        "pole_historic",
    ] {
        assert!(inst_art.contains(attr), "missing {attr}");
    }
    assert!(inst_art.contains("[bitmap"), "bitmap placeholder shown");
}

/// Fig. 7: the customized windows for `<juliano, pole_manager>`.
#[test]
fn fig7_customized_windows() {
    let mut gis = demo();
    gis.customize(FIG6_PROGRAM, "fig6").unwrap();
    let sid = gis.login("juliano", "planner", "pole_manager");

    // "the database schema is not displayed (value Null)" and the Pole
    // class window opens directly.
    let windows = gis.browse_schema(sid, "phone_net").unwrap();
    assert_eq!(windows.len(), 2);
    assert_eq!(gis.render(windows[0]).unwrap(), "");

    // Left of Fig. 7: poleWidget (slider) control + pointFormat display.
    let class_art = gis.render(windows[1]).unwrap();
    assert!(class_art.contains("O="), "slider control:\n{class_art}");
    assert!(!class_art.contains("[ Zoom ]"), "generic buttons replaced");
    assert!(class_art.contains('o'), "pointFormat symbols");

    // Right of Fig. 7: the customized Instance window.
    let poles = gis
        .dispatcher()
        .snapshot()
        .get_class("phone_net", "Pole", false)
        .unwrap();
    let inst_win = gis.inspect(sid, poles[0].oid).unwrap();
    let inst_art = gis.render(inst_win).unwrap();

    // Line 12: pole_location hidden.
    assert!(!inst_art.contains("pole_location"));
    // Lines 10-11: supplier name derived via get_supplier_name.
    assert!(inst_art.contains("pole_supplier: Supplier-"));
    // Lines 7-9: composition from its three tuple fields.
    let comp = inst_art
        .lines()
        .find(|l| l.contains("pole_composition"))
        .expect("composition row present");
    assert_eq!(comp.matches(" / ").count(), 2, "three joined fields");
    // "The omitted attributes (pole_type, pole_picture, and pole_historic)
    // are represented with the default presentation."
    assert!(inst_art.contains("pole_type"));
    assert!(inst_art.contains("pole_picture"));
    assert!(inst_art.contains("pole_historic"));
}

/// The transparency claim: with no rules installed, customized and
/// non-customized dispatch paths produce identical windows.
#[test]
fn customization_is_transparent_when_absent() {
    let mut a = demo();
    let mut b = demo();
    b.customize(FIG6_PROGRAM, "fig6").unwrap();

    // A user outside the customized context sees identical output from
    // both systems.
    let sa = a.login("guest", "visitor", "browse");
    let sb = b.login("guest", "visitor", "browse");
    let wa = a.browse_schema(sa, "phone_net").unwrap()[0];
    let wb = b.browse_schema(sb, "phone_net").unwrap()[0];
    assert_eq!(a.render(wa).unwrap(), b.render(wb).unwrap());

    let ca = a.browse_class(sa, "phone_net", "Pole").unwrap();
    let cb = b.browse_class(sb, "phone_net", "Pole").unwrap();
    assert_eq!(a.render(ca).unwrap(), b.render(cb).unwrap());
}
