//! Property-based tests over the core data structures and invariants,
//! spanning all crates.

use proptest::prelude::*;

use activegis::{ContextPattern, Engine, Event, EventPattern, Rule, SessionContext};
use geodb::geometry::{wkt, Geometry, Point, Polygon, Polyline, Rect};
use geodb::index::{GridIndex, RTree, SpatialIndex};
use geodb::instance::Oid;
use geodb::query::{DbEvent, DbEventKind};
use geodb::storage::{SlottedPage, PAGE_SIZE};

// -- geometry ---------------------------------------------------------------

fn arb_point() -> impl Strategy<Value = Point> {
    (-1e4..1e4f64, -1e4..1e4f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corners(a, b))
}

proptest! {
    #[test]
    fn rect_union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        // Union is commutative.
        prop_assert_eq!(u, b.union(&a));
    }

    #[test]
    fn rect_intersection_is_contained_and_commutes(a in arb_rect(), b in arb_rect()) {
        let i = a.intersection(&b);
        prop_assert_eq!(i, b.intersection(&a));
        if !i.is_empty() {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn rect_enlargement_is_nonnegative(a in arb_rect(), b in arb_rect()) {
        prop_assert!(a.enlargement(&b) >= 0.0);
    }

    #[test]
    fn point_distance_triangle_inequality(
        a in arb_point(), b in arb_point(), c in arb_point()
    ) {
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    #[test]
    fn geometry_bbox_contains_representative_point(pts in prop::collection::vec(arb_point(), 2..8)) {
        let line = Geometry::Polyline(Polyline::new(pts).unwrap());
        let bbox = line.bbox();
        let rep = line.representative_point();
        prop_assert!(bbox.inflate(1e-6).contains_point(&rep));
    }

    #[test]
    fn wkt_round_trip_points(p in arb_point()) {
        let g = Geometry::Point(p);
        prop_assert_eq!(wkt::from_wkt(&wkt::to_wkt(&g)).unwrap(), g);
    }

    #[test]
    fn wkt_round_trip_polylines(pts in prop::collection::vec(arb_point(), 2..10)) {
        let g = Geometry::Polyline(Polyline::new(pts).unwrap());
        prop_assert_eq!(wkt::from_wkt(&wkt::to_wkt(&g)).unwrap(), g);
    }

    #[test]
    fn polygon_area_is_winding_invariant(pts in prop::collection::vec(arb_point(), 3..8)) {
        if let Ok(poly) = Polygon::new(pts.clone()) {
            let mut rev = pts;
            rev.reverse();
            if let Ok(rpoly) = Polygon::new(rev) {
                prop_assert!((poly.area() - rpoly.area()).abs() < 1e-6);
            }
        }
    }
}

// -- spatial indexes vs. brute force ------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtree_and_grid_agree_with_scan(
        items in prop::collection::vec((arb_point(), 0.0..50f64, 0.0..50f64), 1..120),
        window in arb_rect()
    ) {
        let rects: Vec<(Oid, Rect)> = items
            .iter()
            .enumerate()
            .map(|(i, (p, w, h))| {
                (Oid(i as u64), Rect::new(p.x, p.y, p.x + w, p.y + h))
            })
            .collect();
        let mut rtree = RTree::new();
        let mut grid = GridIndex::new(100.0);
        for (oid, r) in &rects {
            rtree.insert(*oid, *r);
            grid.insert(*oid, *r);
        }
        let mut expect: Vec<Oid> = rects
            .iter()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(o, _)| *o)
            .collect();
        expect.sort();
        let mut from_tree = rtree.query_rect(&window);
        from_tree.sort();
        let mut from_grid = grid.query_rect(&window);
        from_grid.sort();
        prop_assert_eq!(&from_tree, &expect);
        prop_assert_eq!(&from_grid, &expect);
    }

    #[test]
    fn rtree_survives_interleaved_inserts_and_removes(
        ops in prop::collection::vec((any::<bool>(), 0u64..40, arb_point()), 1..200)
    ) {
        let mut tree = RTree::new();
        let mut reference: std::collections::HashMap<Oid, Rect> = Default::default();
        for (insert, id, p) in ops {
            let oid = Oid(id);
            if insert {
                let r = Rect::from_point(p);
                tree.insert(oid, r);
                reference.insert(oid, r);
            } else {
                let expected = reference.remove(&oid).is_some();
                prop_assert_eq!(tree.remove(oid), expected);
            }
        }
        prop_assert_eq!(tree.len(), reference.len());
        let everything = Rect::new(-2e4, -2e4, 2e4, 2e4);
        let mut got = tree.query_rect(&everything);
        got.sort();
        let mut expect: Vec<Oid> = reference.keys().copied().collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }
}

// -- slotted pages --------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn page_ops_match_reference_model(
        ops in prop::collection::vec(
            prop_oneof![
                prop::collection::vec(any::<u8>(), 0..300).prop_map(Some), // insert
                Just(None),                                               // delete first live
            ],
            1..60
        )
    ) {
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut page = SlottedPage::init(&mut buf);
        let mut model: Vec<(usize, Vec<u8>)> = Vec::new();
        for op in ops {
            match op {
                Some(record) => {
                    if let Some(slot) = page.insert(&record) {
                        model.retain(|(s, _)| *s != slot);
                        model.push((slot, record));
                    }
                }
                None => {
                    if let Some((slot, _)) = model.first().cloned() {
                        prop_assert!(page.delete(slot));
                        model.remove(0);
                    }
                }
            }
            // Every model record is readable and correct.
            for (slot, record) in &model {
                prop_assert_eq!(page.get(*slot).unwrap(), &record[..]);
            }
        }
    }
}

// -- customization language -------------------------------------------------------

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,10}".prop_filter("not a keyword", |s| {
        ![
            "for",
            "user",
            "category",
            "application",
            "schema",
            "class",
            "display",
            "as",
            "control",
            "presentation",
            "instances",
            "attribute",
            "from",
            "using",
            "default",
            "hierarchy",
            "null",
        ]
        .contains(&s.to_ascii_lowercase().as_str())
    })
}

fn arb_program() -> impl Strategy<Value = activegis::Program> {
    use custlang::{
        AttrClause, AttrDisplay, ClassClause, ContextClause, Directive, SchemaClause, SchemaMode,
        Source,
    };
    let mode = prop_oneof![
        Just(SchemaMode::Default),
        Just(SchemaMode::Hierarchy),
        Just(SchemaMode::UserDefined),
        Just(SchemaMode::Null),
    ];
    let display = prop_oneof![
        Just(AttrDisplay::Default),
        Just(AttrDisplay::Null),
        arb_ident().prop_map(AttrDisplay::Widget),
    ];
    let source = prop_oneof![
        arb_ident().prop_map(Source::Path),
        (arb_ident(), prop::collection::vec(arb_ident(), 0..3))
            .prop_map(|(method, args)| Source::MethodCall { method, args }),
    ];
    let attr = (
        arb_ident(),
        display,
        prop::collection::vec(source, 0..3),
        prop::option::of(arb_ident()),
    )
        .prop_map(|(attribute, display, from, using)| AttrClause {
            attribute,
            display,
            from,
            using,
        });
    let class = (
        arb_ident(),
        prop::option::of(arb_ident()),
        prop::option::of(arb_ident()),
        prop::collection::vec(attr, 0..3),
    )
        .prop_map(|(name, control, presentation, instances)| ClassClause {
            name,
            control,
            presentation,
            instances,
        });
    let directive = (
        prop::option::of(arb_ident()),
        prop::option::of(arb_ident()),
        prop::option::of(arb_ident()),
        arb_ident(),
        mode,
        prop::collection::vec(class, 1..3),
    )
        .prop_map(
            |(user, category, application, schema, mode, classes)| Directive {
                context: ContextClause {
                    user,
                    category,
                    application,
                    extras: vec![],
                },
                schema: SchemaClause { name: schema, mode },
                classes,
            },
        );
    prop::collection::vec(directive, 0..3).prop_map(|directives| custlang::Program { directives })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pretty_parse_round_trip(program in arb_program()) {
        let printed = custlang::pretty(&program);
        let reparsed = custlang::parse(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\n--- source ---\n{printed}")))?;
        prop_assert_eq!(program, reparsed);
    }

    #[test]
    fn compiled_rule_counts_match_structure(program in arb_program()) {
        let rules = custlang::compile(&program, "p");
        let expected: usize = program
            .directives
            .iter()
            .map(|d| 1 + d.classes.len()
                + d.classes.iter().filter(|c| !c.instances.is_empty()).count())
            .sum();
        prop_assert_eq!(rules.len(), expected);
        // Names are unique.
        let names: std::collections::HashSet<&str> =
            rules.iter().map(|r| r.name.as_str()).collect();
        prop_assert_eq!(names.len(), rules.len());
    }
}

// -- active engine: the most-specific-wins invariant -----------------------------

fn arb_context_pattern() -> impl Strategy<Value = ContextPattern> {
    (
        prop::option::of(Just("juliano".to_string())),
        prop::option::of(Just("planner".to_string())),
        prop::option::of(Just("pole_manager".to_string())),
    )
        .prop_map(|(user, category, application)| ContextPattern {
            user,
            category,
            application,
            extras: Default::default(),
        })
}

proptest! {
    #[test]
    fn engine_selects_a_maximally_specific_rule(
        patterns in prop::collection::vec(arb_context_pattern(), 1..12)
    ) {
        let mut engine: Engine<usize> = Engine::new();
        for (i, ctx) in patterns.iter().enumerate() {
            engine
                .add_rule(Rule::customization(
                    format!("r{i}"),
                    EventPattern::db(DbEventKind::GetSchema),
                    ctx.clone(),
                    i,
                ))
                .unwrap();
        }
        // All patterns built from these fixed values match this session.
        let session = SessionContext::new("juliano", "planner", "pole_manager");
        let out = engine
            .dispatch(
                Event::Db(DbEvent::GetSchema { schema: "s".into() }),
                &session,
            )
            .unwrap();
        prop_assert_eq!(out.customizations.len(), 1);
        let winner = out.customizations[0];
        let max = patterns.iter().map(|p| p.specificity()).max().unwrap();
        prop_assert_eq!(patterns[winner].specificity(), max,
            "winner {} is not maximally specific", winner);
    }

    #[test]
    fn specificity_is_monotone_in_bound_fields(p in arb_context_pattern()) {
        // Binding one more field strictly increases specificity.
        if p.user.is_none() {
            let mut q = p.clone();
            q.user = Some("x".into());
            prop_assert!(q.specificity() > p.specificity());
        }
        if p.category.is_none() {
            let mut q = p.clone();
            q.category = Some("x".into());
            prop_assert!(q.specificity() > p.specificity());
        }
        if p.application.is_none() {
            let mut q = p.clone();
            q.application = Some("x".into());
            prop_assert!(q.specificity() > p.specificity());
        }
    }
}

// -- value model ------------------------------------------------------------------

proptest! {
    #[test]
    fn value_compare_is_antisymmetric(a in -1000i64..1000, b in -1000i64..1000) {
        use activegis::Value;
        let va = Value::Int(a);
        let vb = Value::Float(b as f64 + 0.5);
        prop_assert_eq!(va.compare(&vb), vb.compare(&va).reverse());
    }
}

// -- buffer pool model check ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn buffer_pool_never_corrupts_pages(
        capacity in 1usize..8,
        clock in any::<bool>(),
        ops in prop::collection::vec((0usize..16, any::<bool>(), any::<u8>()), 1..200)
    ) {
        use geodb::storage::{BufferPool, EvictionPolicy, MemStore, PAGE_SIZE};
        let policy = if clock { EvictionPolicy::Clock } else { EvictionPolicy::Lru };
        let mut pool = BufferPool::new(MemStore::new(), capacity, policy);
        let pids: Vec<_> = (0..16).map(|_| pool.allocate_page().unwrap()).collect();
        let ops_count = ops.len() as u64;
        // Reference model: what each page's first byte should hold.
        let mut model = [0u8; 16];
        for (idx, write, val) in ops {
            let pid = pids[idx];
            if write {
                pool.with_page_mut(pid, |d| d[0] = val).unwrap();
                model[idx] = val;
            } else {
                let got = pool.with_page(pid, |d| d[0]).unwrap();
                prop_assert_eq!(got, model[idx], "page {} first byte", idx);
            }
        }
        // Hit/miss accounting: exactly one access per op.
        let s = pool.stats();
        prop_assert_eq!(s.hits + s.misses, ops_count);
        // Flush then cold-read everything.
        pool.clear().unwrap();
        for (idx, pid) in pids.iter().enumerate() {
            let got = pool.with_page(*pid, |d| (d[0], d.len())).unwrap();
            prop_assert_eq!(got, (model[idx], PAGE_SIZE));
        }
    }

    #[test]
    fn heap_file_model_check(
        ops in prop::collection::vec(
            prop_oneof![
                (1usize..6000).prop_map(Some),  // insert of this size
                Just(None),                     // delete oldest live
            ],
            1..80
        )
    ) {
        use geodb::storage::{BufferPool, EvictionPolicy, HeapFile, MemStore};
        let mut pool = BufferPool::new(MemStore::new(), 8, EvictionPolicy::Lru);
        let mut heap = HeapFile::new();
        let mut model: Vec<(geodb::storage::RecordId, Vec<u8>)> = Vec::new();
        let mut counter = 0u8;
        for op in ops {
            match op {
                Some(size) => {
                    counter = counter.wrapping_add(1);
                    let payload = vec![counter; size];
                    let rid = heap.insert(&mut pool, &payload).unwrap();
                    model.push((rid, payload));
                }
                None => {
                    if !model.is_empty() {
                        let (rid, _) = model.remove(0);
                        heap.delete(&mut pool, rid).unwrap();
                    }
                }
            }
            prop_assert_eq!(heap.len(), model.len());
        }
        for (rid, payload) in &model {
            prop_assert_eq!(&heap.get(&mut pool, *rid).unwrap(), payload);
        }
        let mut scanned = heap.scan(&mut pool).unwrap();
        scanned.sort_by_key(|(_, p)| p.clone());
        let mut expect: Vec<Vec<u8>> = model.iter().map(|(_, p)| p.clone()).collect();
        expect.sort();
        let got: Vec<Vec<u8>> = scanned.into_iter().map(|(_, p)| p).collect();
        prop_assert_eq!(got, expect);
    }
}
