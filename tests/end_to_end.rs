//! Full-loop integration tests: the Fig. 1 event flow, multi-session
//! behaviour, the weak-integration protocol, and failure injection.

use activegis::{
    ActiveGis, CmpOp, InteractionMode, Predicate, Request, Response, TelecomConfig, Value,
    FIG6_PROGRAM,
};

fn demo() -> ActiveGis {
    ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap()
}

/// The complete Fig. 1 loop driven through gestures only: click in the
/// schema list → class window; click on the map → instance window.
#[test]
fn gesture_driven_three_level_browse() {
    let mut gis = demo();
    let sid = gis.login("maria", "operator", "browse");
    let schema_win = gis.browse_schema(sid, "phone_net").unwrap()[0];

    let d = gis.dispatcher();
    let opened = d
        .handle_gesture(
            sid,
            schema_win,
            "schema_window/body/classes",
            "select",
            Some("Duct".into()),
        )
        .unwrap();
    assert_eq!(opened.len(), 1);
    let class_win = opened[0];
    assert!(d.render(class_win).unwrap().contains("Class: Duct"));

    // Ducts draw as line strokes by default.
    assert!(d.render(class_win).unwrap().contains('-'));

    // Pick the first duct by oid via the map gesture.
    let ducts = d.snapshot().get_class("phone_net", "Duct", false).unwrap();
    let opened = d
        .handle_gesture(
            sid,
            class_win,
            "class_window/body/presentation/map",
            "click",
            Some(format!("#{}", ducts[0].oid.0)),
        )
        .unwrap();
    assert_eq!(opened.len(), 1);
    let art = d.render(opened[0]).unwrap();
    assert!(art.contains("duct_type"));
    assert!(art.contains("duct_diameter"));
}

/// Two sessions with different contexts run concurrently against one
/// dispatcher without interfering.
#[test]
fn concurrent_sessions_see_different_interfaces() {
    let mut gis = demo();
    gis.customize(FIG6_PROGRAM, "fig6").unwrap();
    let juliano = gis.login("juliano", "planner", "pole_manager");
    let guest = gis.login("guest", "visitor", "browse");

    // Interleave the two sessions.
    let jw = gis.browse_schema(juliano, "phone_net").unwrap();
    let gw = gis.browse_schema(guest, "phone_net").unwrap();
    assert_eq!(jw.len(), 2);
    assert_eq!(gw.len(), 1);

    let g_class = gis.browse_class(guest, "phone_net", "Pole").unwrap();
    assert!(gis.render(g_class).unwrap().contains("[ Zoom ]"));
    assert!(gis.render(jw[1]).unwrap().contains("O="));

    // Sessions track their own windows.
    let d = gis.dispatcher();
    assert_eq!(d.session(juliano).unwrap().windows.len(), 2);
    assert_eq!(d.session(guest).unwrap().windows.len(), 2);
}

/// The weak-integration protocol: requests encoded to JSON, served, and
/// responses decoded — including the error path.
#[test]
fn protocol_end_to_end() {
    let mut gis = demo();
    let sid = gis.login("maria", "operator", "browse");
    let d = gis.dispatcher();

    // Encode/decode across the "wire".
    let wire = gisui::encode(&Request::OpenSchema {
        schema: "phone_net".into(),
    });
    let req: Request = gisui::decode(&wire).unwrap();
    let resp = d.handle_request(sid, req);
    let wire = gisui::encode(&resp);
    let resp: Response = gisui::decode(&wire).unwrap();
    let Response::Windows(windows) = resp else {
        panic!("expected windows");
    };
    assert_eq!(windows.len(), 1);
    assert!(windows[0].ascii.contains("Schema: phone_net"));

    // Gesture through the protocol.
    let resp = d.handle_request(
        sid,
        Request::UiGesture {
            window: windows[0].id,
            path: "schema_window/body/classes".into(),
            gesture: "select".into(),
            detail: Some("Pole".into()),
        },
    );
    let Response::Windows(opened) = resp else {
        panic!("expected windows");
    };
    assert_eq!(opened.len(), 1);
    assert_eq!(opened[0].kind, "Class_set");

    // Failure injection: unknown schema, unknown window, bad gesture path.
    for req in [
        Request::OpenSchema {
            schema: "nope".into(),
        },
        Request::CloseWindow { window: 9999 },
        Request::UiGesture {
            window: windows[0].id,
            path: "schema_window/ghost".into(),
            gesture: "select".into(),
            detail: None,
        },
    ] {
        match d.handle_request(sid, req.clone()) {
            Response::Error { message } => assert!(!message.is_empty()),
            Response::Closed(ids) if ids.is_empty() => {} // closing closed window
            other => panic!("expected error for {req:?}, got {other:?}"),
        }
    }
}

/// Analysis-mode predicate browsing produces a filtered class window that
/// still honours the user's customization.
#[test]
fn analysis_mode_respects_customization() {
    let mut gis = demo();
    gis.customize(FIG6_PROGRAM, "fig6").unwrap();
    let sid = gis.login("juliano", "planner", "pole_manager");
    gis.set_mode(sid, InteractionMode::Analysis).unwrap();

    let wood = Predicate::cmp("pole_composition.pole_material", CmpOp::Eq, "wood");
    let win = gis
        .dispatcher()
        .analysis_query(sid, "phone_net", "Pole", &wood)
        .unwrap();
    let art = gis.render(win).unwrap();
    // Customized control (slider) even on a filtered window.
    assert!(art.contains("O="));
    assert!(gis
        .dispatcher()
        .window(win)
        .unwrap()
        .built
        .title
        .contains("filtered"));
}

/// Updates outside simulation mode are refused; inside it, they are
/// sandboxed.
#[test]
fn update_isolation_between_modes() {
    let mut gis = demo();
    let sid = gis.login("maria", "operator", "maintenance");

    let poles = gis
        .dispatcher()
        .snapshot()
        .get_class("phone_net", "Pole", false)
        .unwrap();
    let oid = poles[0].oid;
    let updates = vec![(oid, vec![("pole_type".to_string(), Value::Int(42))])];

    // Exploratory mode: refused.
    assert!(gis
        .dispatcher()
        .simulate(sid, "phone_net", "Pole", updates.clone())
        .is_err());

    // Simulation mode: sandboxed.
    gis.set_mode(sid, InteractionMode::Simulation).unwrap();
    let win = gis
        .dispatcher()
        .simulate(sid, "phone_net", "Pole", updates)
        .unwrap();
    assert!(gis.render(win).unwrap().contains("Class: Pole"));
    let real = gis.dispatcher().snapshot().peek(oid).unwrap();
    assert_ne!(real.get("pole_type"), &Value::Int(42));
}

/// Dynamic recustomization: installing a new program changes subsequent
/// windows without touching existing ones ("interfaces can be built
/// dynamically").
#[test]
fn live_recustomization() {
    let mut gis = demo();
    let sid = gis.login("juliano", "planner", "pole_manager");

    let before = gis.browse_class(sid, "phone_net", "Pole").unwrap();
    assert!(gis.render(before).unwrap().contains("[ Zoom ]"));

    gis.customize(FIG6_PROGRAM, "fig6").unwrap();
    let after = gis.browse_class(sid, "phone_net", "Pole").unwrap();
    assert!(gis.render(after).unwrap().contains("O="));
    // The old window is untouched.
    assert!(gis.render(before).unwrap().contains("[ Zoom ]"));

    // Replace with a different program under the same name.
    gis.customize(
        "for user juliano application pole_manager \
         schema phone_net display as default \
         class Pole display presentation as symbolFormat",
        "fig6",
    )
    .unwrap();
    let third = gis.browse_class(sid, "phone_net", "Pole").unwrap();
    let art = gis.render(third).unwrap();
    assert!(art.contains('P'), "symbolFormat uses the class initial");
    assert!(!art.contains("O="), "old slider customization replaced");
}

/// The interface-objects library persists inside the database and
/// round-trips through a snapshot.
#[test]
fn library_lives_in_the_database() {
    let mut gis = demo();
    gis.define_widget("myGauge", "Panel", vec![("style".into(), "slider".into())])
        .unwrap();

    // Persist the library into the geographic database itself.
    let d = gis.dispatcher();
    let lib = d.builder_library_mut().clone();
    d.store()
        .write(|db| uilib::persist::save_library(db, &lib))
        .unwrap();

    // Snapshot the whole database (data + stored library)…
    let json = geodb::snapshot::save_snapshot(&d.snapshot()).unwrap();
    let mut restored_db = geodb::snapshot::load(&json).unwrap();

    // …and reload the library from the restored database.
    let restored = uilib::persist::load_library(&mut restored_db).unwrap();
    assert!(restored.contains("myGauge"));
    assert!(restored.contains("poleWidget"));
}

/// Analysis queries travel over the protocol, predicate included.
#[test]
fn analyze_request_over_the_protocol() {
    let mut gis = demo();
    let sid = gis.login("bruno", "analyst", "inspection");
    gis.set_mode(sid, InteractionMode::Analysis).unwrap();
    let req = Request::Analyze {
        schema: "phone_net".into(),
        class: "Pole".into(),
        predicate: Predicate::cmp("pole_composition.pole_height", CmpOp::Gt, 10.0),
    };
    let wire = gisui::encode(&req);
    let req: Request = gisui::decode(&wire).unwrap();
    let resp = gis.dispatcher().handle_request(sid, req);
    let Response::Windows(ws) = resp else {
        panic!("expected a filtered window, got {resp:?}");
    };
    assert!(ws[0].title.contains("filtered"));

    // In exploratory mode the same request is refused through the
    // protocol's error path.
    let guest = gis.login("g", "v", "browse");
    let resp = gis.dispatcher().handle_request(
        guest,
        Request::Analyze {
            schema: "phone_net".into(),
            class: "Pole".into(),
            predicate: Predicate::True,
        },
    );
    assert!(matches!(resp, Response::Error { message } if message.contains("mode")));
}

/// The paper's alternative selection path: pick an instance from the
/// Class-set window's *control area* list rather than the map.
#[test]
fn control_area_selection_opens_instance_window() {
    let mut gis = demo();
    let sid = gis.login("maria", "operator", "browse");
    let class_win = gis.browse_class(sid, "phone_net", "Pole").unwrap();
    let poles = gis
        .dispatcher()
        .snapshot()
        .get_class("phone_net", "Pole", false)
        .unwrap();
    let first = poles[0].oid;
    let opened = gis
        .dispatcher()
        .handle_gesture(
            sid,
            class_win,
            "class_window/body/control/ids",
            "select",
            Some(first.to_string()),
        )
        .unwrap();
    assert_eq!(opened.len(), 1);
    let managed = gis.dispatcher().window(opened[0]).unwrap();
    assert_eq!(managed.oid, Some(first));
    assert_eq!(managed.parent, Some(class_win));
}
