//! Replication differential suite.
//!
//! The contract under test (`docs/replication.md`):
//!
//! 1. **Byte identity**: a replica's applied state at epoch E is
//!    byte-identical (through the snapshot serializer) to the primary's
//!    snapshot at E — under writer storms, delta/full sync mixes, and
//!    schema changes mid-stream.
//! 2. **Bounded staleness**: a read routed through
//!    [`geodb::repl::ReadRouter`] with bound `n` never observes a
//!    snapshot more than `n` epochs behind the primary's frontier at
//!    pin time.
//! 3. **GC coupling**: a stalled replica pins its delta base only up to
//!    the primary's hard retention cap; past it the base is trimmed,
//!    retention stays bounded, and the replica full-syncs.
//! 4. **Failover**: after the primary is killed at any WAL failpoint,
//!    promoting a replica over the WAL tail serves read-your-writes for
//!    every acknowledged commit — zero durable-epoch loss.
//!
//! Seeded chain tests take their seed from `REPL_SEED` (CI sweeps
//! 7, 1994, 271828 — the same sweep as `CRASH_SEED`).

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use geodb::db::Database;
use geodb::instance::Oid;
use geodb::repl::{ReadRouter, ReadSource, ReplicaStore, SyncOutcome};
use geodb::schema::{ClassDef, SchemaDef};
use geodb::store::DbStore;
use geodb::value::{AttrType, Value};
use geodb::wal::{self, WalConfig};
use geodb::Epoch;

/// Failpoints are process-global: every test in this binary serializes
/// on one mutex so an armed kill point never leaks into a neighbor.
fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    faultsim::reset();
    guard
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "activegis-repl-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn repl_seed() -> u64 {
    std::env::var("REPL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn grid_schema() -> SchemaDef {
    SchemaDef::new("grid")
        .class(
            ClassDef::new("Cell")
                .attr("name", AttrType::Text)
                .attr("level", AttrType::Int),
        )
        .class(
            ClassDef::new("Probe")
                .attr("name", AttrType::Text)
                .attr("reading", AttrType::Float),
        )
}

fn seeded_db(name: &str) -> Database {
    let mut db = Database::new(name);
    db.register_schema(grid_schema()).unwrap();
    db.drain_events();
    db
}

/// One mutation of a schedule; targets index into the OIDs ever
/// allocated so updates/deletes sometimes hit dead objects (the write
/// errors, the store republishes the partial state — replication must
/// track that too).
#[derive(Debug, Clone)]
enum Op {
    InsertCell { name: u8, level: i64 },
    InsertProbe { name: u8, reading: i64 },
    Update { target: usize, level: i64 },
    Delete { target: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), -100..100i64).prop_map(|(name, level)| Op::InsertCell { name, level }),
        (any::<u8>(), -100..100i64).prop_map(|(name, reading)| Op::InsertProbe { name, reading }),
        (0..24usize, -100..100i64).prop_map(|(target, level)| Op::Update { target, level }),
        (0..24usize).prop_map(|target| Op::Delete { target }),
    ]
}

fn random_op(rng: &mut ChaCha8Rng) -> Op {
    match rng.gen_range(0..4u8) {
        0 => Op::InsertCell {
            name: rng.gen_range(0..=u8::MAX),
            level: rng.gen_range(-100..100),
        },
        1 => Op::InsertProbe {
            name: rng.gen_range(0..=u8::MAX),
            reading: rng.gen_range(-100..100),
        },
        2 => Op::Update {
            target: rng.gen_range(0..24),
            level: rng.gen_range(-100..100),
        },
        _ => Op::Delete {
            target: rng.gen_range(0..24),
        },
    }
}

fn apply(db: &mut Database, op: &Op, oids: &[Oid]) -> geodb::Result<Option<Oid>> {
    match op {
        Op::InsertCell { name, level } => db
            .insert(
                "grid",
                "Cell",
                vec![
                    ("name".into(), Value::Text(format!("c{name}"))),
                    ("level".into(), Value::Int(*level)),
                ],
            )
            .map(Some),
        Op::InsertProbe { name, reading } => db
            .insert(
                "grid",
                "Probe",
                vec![
                    ("name".into(), Value::Text(format!("p{name}"))),
                    ("reading".into(), Value::Float(*reading as f64 / 4.0)),
                ],
            )
            .map(Some),
        Op::Update { target, level } => {
            let oid = oids
                .get(*target)
                .copied()
                .unwrap_or(Oid(u64::MAX - *target as u64));
            db.update(oid, vec![("level".into(), Value::Int(*level))])
                .map(|()| None)
        }
        Op::Delete { target } => {
            let oid = oids
                .get(*target)
                .copied()
                .unwrap_or(Oid(u64::MAX - *target as u64));
            db.delete(oid).map(|()| None)
        }
    }
}

/// Run one op through the store's write path, tracking allocated OIDs.
/// Write errors are fine (dead targets) — the epoch still publishes.
fn storm(store: &DbStore, op: &Op, oids: &mut Vec<Oid>) {
    let targets = oids.clone();
    if let Ok(committed) = store.write(|db| apply(db, op, &targets)) {
        if let Some(oid) = committed.value {
            oids.push(oid);
        }
    }
}

fn store_bytes(store: &DbStore) -> String {
    geodb::snapshot::save_snapshot(&store.snapshot()).unwrap()
}

fn replica_bytes(replica: &ReplicaStore) -> String {
    geodb::snapshot::save_snapshot(&replica.snapshot()).unwrap()
}

/// Replay the first `n` ops of a schedule on a fresh oracle database and
/// serialize it — the promotion tests compare the promoted store against
/// this, exactly like the crash-recovery suite.
fn oracle_bytes(name: &str, ops: &[Op], n: usize) -> String {
    let mut db = seeded_db(name);
    let mut oids = Vec::new();
    for op in &ops[..n] {
        if let Ok(Some(oid)) = apply(&mut db, op, &oids.clone()) {
            oids.push(oid);
        }
        db.drain_events();
    }
    geodb::snapshot::save(&mut db).unwrap()
}

// ---------------------------------------------------------------------------
// 1. Byte identity under storms and delta/full mixes
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// At every sync point of a random schedule, the replica's applied
    /// state is byte-identical to the primary's snapshot at the same
    /// epoch. Burst lengths above the primary's retention cap force
    /// full-sync fallbacks, so both frame kinds are exercised.
    #[test]
    fn replica_is_byte_identical_at_every_sync_point(
        bursts in proptest::collection::vec(
            (proptest::collection::vec(arb_op(), 1..14), any::<bool>()),
            1..8,
        ),
    ) {
        let _g = serialized();
        let store = DbStore::new(seeded_db("repl"));
        let replica = ReplicaStore::attach(&store, "r1").unwrap();
        let mut oids: Vec<Oid> = Vec::new();
        let mut full_seen = 0u64;
        for (burst, stall_long) in bursts {
            // A "long stall" pushes far past the hard retention cap so
            // the delta base is guaranteed trimmed.
            let reps = if stall_long { 2 } else { 1 };
            for _ in 0..reps {
                for op in &burst {
                    storm(&store, op, &mut oids);
                }
            }
            let before = replica.epoch();
            replica.sync_to_latest().unwrap();
            prop_assert_eq!(replica.epoch(), store.epoch());
            prop_assert_eq!(replica_bytes(&replica), store_bytes(&store));
            prop_assert!(replica.epoch() > before || store.epoch() == before);
            full_seen = replica.status().full_syncs;
        }
        // Attach itself is one full sync; long stalls may add more.
        prop_assert!(full_seen >= 1);
        // The replica's pin never inflates the primary's retention past
        // its hard cap.
        prop_assert!(store.epochs_retained() <= 8);
    }

    // -----------------------------------------------------------------------
    // 2. Bounded staleness
    // -----------------------------------------------------------------------

    /// A router with bound `n` never serves a snapshot more than `n`
    /// epochs behind the primary's frontier at pin time, no matter how
    /// writes and replica syncs interleave.
    #[test]
    fn bounded_staleness_reads_never_exceed_the_bound(
        bound in 0..3u64,
        steps in proptest::collection::vec((arb_op(), 0..3u8), 1..40),
    ) {
        let _g = serialized();
        let store = DbStore::new(seeded_db("repl"));
        let replica = ReplicaStore::attach(&store, "r1").unwrap();
        let mut router =
            ReadRouter::with_replica(store.reader(), replica.reader(), Some(bound));
        let mut oids: Vec<Oid> = Vec::new();
        for (op, action) in steps {
            match action {
                0 => storm(&store, &op, &mut oids),
                1 => {
                    replica.sync_to_latest().unwrap();
                }
                _ => {
                    let frontier = store.epoch();
                    let (snap, source, lag) = router.pin();
                    prop_assert!(
                        frontier.lag_from(snap.epoch()) <= bound,
                        "read at epoch {} violates bound {} (frontier {}, source {:?})",
                        snap.epoch(), bound, frontier, source
                    );
                    if source == ReadSource::Replica {
                        prop_assert!(lag <= bound);
                    } else {
                        // The fallback read is frontier-fresh.
                        prop_assert_eq!(snap.epoch(), frontier);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 3. GC coupling: stalled replica, hard cap, full-sync fallback
// ---------------------------------------------------------------------------

/// Regression for the retention accounting: a replica that stops syncing
/// holds its delta base alive only up to the primary's hard cap. The
/// ring must not grow past the cap, and the replica must recover via a
/// full sync once its base is gone.
#[test]
fn stalled_replica_cannot_exceed_the_retention_cap() {
    let _g = serialized();
    let store = DbStore::new(seeded_db("repl"));
    let replica = ReplicaStore::attach(&store, "r1").unwrap();
    let attach_epoch = replica.epoch();
    assert_eq!(store.pin_watermark(), Some(attach_epoch));

    let mut oids: Vec<Oid> = Vec::new();
    let mut rng = ChaCha8Rng::seed_from_u64(repl_seed());
    // Within the soft window the base stays retained for the pin.
    for _ in 0..3 {
        let op = random_op(&mut rng);
        storm(&store, &op, &mut oids);
        assert!(store.snapshot_at(attach_epoch).is_some());
    }
    // Far past the hard cap: retention stays bounded, the base is gone.
    for _ in 0..30 {
        let op = random_op(&mut rng);
        storm(&store, &op, &mut oids);
    }
    assert!(
        store.epochs_retained() <= 8,
        "stalled replica inflated retention to {}",
        store.epochs_retained()
    );
    assert!(store.snapshot_at(replica.epoch()).is_none());

    match replica.sync_once().unwrap() {
        SyncOutcome::Full { .. } => {}
        other => panic!("expected full-sync fallback, got {other:?}"),
    }
    replica.sync_to_latest().unwrap();
    assert_eq!(replica_bytes(&replica), store_bytes(&store));
}

// ---------------------------------------------------------------------------
// Interleaved writer storm with a streaming shipper
// ---------------------------------------------------------------------------

/// Two writer threads storm the primary while the background shipper
/// streams deltas; after the dust settles the replica converges to the
/// primary byte-for-byte.
#[test]
fn streaming_replica_converges_under_concurrent_writers() {
    let _g = serialized();
    let store = DbStore::new(seeded_db("repl"));
    let replica = ReplicaStore::attach(&store, "r1").unwrap();
    replica.start_streaming().unwrap();

    let writers: Vec<_> = (0..2)
        .map(|w| {
            let store = store.clone();
            std::thread::spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(repl_seed() ^ (w as u64));
                let mut oids = Vec::new();
                for _ in 0..40 {
                    let op = random_op(&mut rng);
                    storm(&store, &op, &mut oids);
                    if rng.gen_bool(0.2) {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }

    replica.stop_streaming();
    replica.sync_to_latest().unwrap();
    assert_eq!(replica.epoch(), store.epoch());
    assert_eq!(replica_bytes(&replica), store_bytes(&store));
}

// ---------------------------------------------------------------------------
// Seeded kill points on the shipping path
// ---------------------------------------------------------------------------

/// A seeded chain of sync rounds with `repl.ship` / `repl.apply` faults
/// injected at random: failed rounds surface as errors (never as silent
/// divergence), and once the faults clear the replica converges
/// byte-identically — a failed apply degrades to a full resync instead
/// of trusting a half-applied delta base.
#[test]
fn seeded_kill_points_never_cause_silent_divergence() {
    let _g = serialized();
    let seed = repl_seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let store = DbStore::new(seeded_db("repl"));
    let replica = ReplicaStore::attach(&store, "r1").unwrap();
    let mut oids: Vec<Oid> = Vec::new();

    for round in 0..20u64 {
        for _ in 0..rng.gen_range(1..5) {
            let op = random_op(&mut rng);
            storm(&store, &op, &mut oids);
        }
        let point = if rng.gen_bool(0.5) {
            "repl.ship"
        } else {
            "repl.apply"
        };
        faultsim::arm(
            point,
            faultsim::Trigger::Probability {
                p: 0.4,
                seed: seed ^ round,
            },
            faultsim::FaultAction::Error,
        );
        // Syncs may fail while the fault is armed; applied state must
        // stay a prefix the next round can build on (or full-resync
        // from), never a torn hybrid.
        let _ = replica.sync_to_latest();
        faultsim::disarm(point);
        replica.sync_to_latest().unwrap();
        assert_eq!(replica.epoch(), store.epoch(), "round {round}");
        assert_eq!(
            replica_bytes(&replica),
            store_bytes(&store),
            "round {round} diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// 4. Failover: faultsim-killed primary, WAL-tail promotion
// ---------------------------------------------------------------------------

const KILL_POINTS: [&str; 3] = ["wal.append", "wal.fsync", "db.publish"];

/// A seeded chain of kill/promote cycles: a durable primary is killed at
/// a random WAL failpoint mid-write, and a replica that had synced an
/// arbitrary prefix is promoted over the WAL tail. The promoted store
/// must serve every *acknowledged* commit (read-your-writes, zero
/// durable-epoch loss) and match an oracle replay byte-for-byte — the
/// `db.publish` kill additionally resurrects the durable-but-unpublished
/// write, exactly like crash recovery.
#[test]
fn promotion_after_killed_primary_serves_read_your_writes() {
    let _g = serialized();
    let seed = repl_seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(17));

    for cycle in 0..6 {
        let dir = tmp_dir(&format!("promote-{cycle}"));
        // Odd cycles auto-checkpoint, so some promotions find a
        // checkpoint *newer* than the replica's applied epoch and take
        // the full-recovery path instead of the tail replay.
        let config = || {
            if cycle % 2 == 1 {
                WalConfig::new(&dir).checkpoint_every(4)
            } else {
                WalConfig::new(&dir)
            }
        };
        let (store, _) = wal::open(seeded_db("grid"), config()).unwrap();
        let replica = ReplicaStore::attach(&store, "r1").unwrap();

        let total: usize = rng.gen_range(2..12);
        let sync_after: usize = rng.gen_range(0..=total);
        let mut ops: Vec<Op> = Vec::new();
        let mut oids: Vec<Oid> = Vec::new();
        for i in 0..total {
            let op = random_op(&mut rng);
            let targets = oids.clone();
            // Dead-target ops error back to the caller but still burn a
            // durable epoch — the write path commits before surfacing
            // the callback error, exactly like the crash suite.
            let res = store.write(|db| apply(db, &op, &targets));
            if let Ok(c) = res {
                if let Some(oid) = c.value {
                    oids.push(oid);
                }
            }
            ops.push(op);
            if i + 1 == sync_after {
                replica.sync_to_latest().unwrap();
            }
        }
        let frontier = store.durable_epoch();
        assert_eq!(frontier, Epoch(total as u64 + 1));

        // Kill the primary mid-write at a random WAL failpoint: the
        // write errors, the store poisons, the process "dies".
        let point = KILL_POINTS[rng.gen_range(0..KILL_POINTS.len())];
        faultsim::arm(
            point,
            faultsim::Trigger::Always,
            faultsim::FaultAction::Error,
        );
        let killed = random_op(&mut rng);
        let targets = oids.clone();
        assert!(store.write(|db| apply(db, &killed, &targets)).is_err());
        faultsim::disarm(point);
        ops.push(killed);
        assert!(store.poisoned().is_some());
        drop(store);

        let applied_before = replica.epoch();
        let (promoted, report) = replica.promote(config()).unwrap();
        assert_eq!(report.replica_applied, applied_before);
        assert_eq!(report.promoted_epoch, promoted.epoch());

        // Zero durable-epoch loss: every acknowledged commit survives.
        // The killed write itself may or may not have reached the disk
        // before the fault — either way the promoted state must be a
        // clean epoch-aligned prefix of the issued history.
        assert!(
            report.promoted_epoch >= frontier,
            "cycle {cycle} ({point}): promoted {} < durable frontier {}",
            report.promoted_epoch,
            frontier
        );
        assert!(report.promoted_epoch <= frontier + 1);
        let surviving = (report.promoted_epoch.get() - 1) as usize;
        assert!(surviving <= ops.len());
        assert_eq!(
            store_bytes(&promoted),
            oracle_bytes("grid", &ops, surviving),
            "cycle {cycle} ({point}): promoted state diverged from the oracle"
        );

        // Read-your-writes continues: the promoted primary accepts new
        // durable writes past the old frontier (a dead-target op still
        // burns a durable epoch, so the frontier advances either way).
        let op = random_op(&mut rng);
        let targets = oids.clone();
        let _ = promoted.write(|db| apply(db, &op, &targets));
        assert!(promoted.durable_epoch() > frontier);

        drop(promoted);
        std::fs::remove_dir_all(&dir).ok();
    }
}
