//! Snapshot-isolation differential suite for the versioned store.
//!
//! Two angles on the same contract (`docs/storage.md`):
//!
//! 1. **Differential**: a random schedule of inserts/updates/deletes is
//!    applied both to a plain mutable [`Database`] (the oracle) and
//!    through [`DbStore::write`] commits. After every prefix the store's
//!    published snapshot must serialize byte-identically to the oracle,
//!    and a snapshot pinned mid-schedule must keep serializing exactly
//!    the bytes it was pinned at, no matter how many epochs the writer
//!    publishes afterwards.
//!
//! 2. **Threaded stress**: one writer thread commits a seeded schedule
//!    while reader threads hold pins and re-serialize them; any torn
//!    read or leaked mutation shows up as a byte difference. The seed
//!    comes from `ISOLATION_SEED` (CI sweeps 7, 1994, 271828).

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use geodb::db::Database;
use geodb::instance::Oid;
use geodb::schema::{ClassDef, SchemaDef};
use geodb::store::DbStore;
use geodb::value::{AttrType, Value};

/// A deliberately small schema so random schedules collide on the same
/// partitions (the interesting case for copy-on-write patching).
fn grid_schema() -> SchemaDef {
    SchemaDef::new("grid")
        .class(
            ClassDef::new("Cell")
                .attr("name", AttrType::Text)
                .attr("level", AttrType::Int),
        )
        .class(
            ClassDef::new("Probe")
                .attr("name", AttrType::Text)
                .attr("reading", AttrType::Float),
        )
}

fn seeded_db(name: &str) -> Database {
    let mut db = Database::new(name);
    db.register_schema(grid_schema()).unwrap();
    db.drain_events();
    db
}

/// One mutation of the random schedule. Targets index into the list of
/// OIDs ever allocated, so updates/deletes sometimes hit dead objects —
/// both sides must fail identically.
#[derive(Debug, Clone)]
enum Op {
    InsertCell { name: u8, level: i64 },
    InsertProbe { name: u8, reading: i64 },
    Update { target: usize, level: i64 },
    Delete { target: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), -100..100i64).prop_map(|(name, level)| Op::InsertCell { name, level }),
        (any::<u8>(), -100..100i64).prop_map(|(name, reading)| Op::InsertProbe { name, reading }),
        (0..24usize, -100..100i64).prop_map(|(target, level)| Op::Update { target, level }),
        (0..24usize).prop_map(|target| Op::Delete { target }),
    ]
}

/// Apply one op to a plain database; returns `Ok(Some(oid))` on insert.
fn apply(db: &mut Database, op: &Op, oids: &[Oid]) -> geodb::error::Result<Option<Oid>> {
    match op {
        Op::InsertCell { name, level } => db
            .insert(
                "grid",
                "Cell",
                vec![
                    ("name".into(), Value::Text(format!("c{name}"))),
                    ("level".into(), Value::Int(*level)),
                ],
            )
            .map(Some),
        Op::InsertProbe { name, reading } => db
            .insert(
                "grid",
                "Probe",
                vec![
                    ("name".into(), Value::Text(format!("p{name}"))),
                    ("reading".into(), Value::Float(*reading as f64 / 4.0)),
                ],
            )
            .map(Some),
        Op::Update { target, level } => {
            let oid = oids
                .get(*target)
                .copied()
                .unwrap_or(Oid(u64::MAX - *target as u64));
            db.update(oid, vec![("level".into(), Value::Int(*level))])
                .map(|()| None)
        }
        Op::Delete { target } => {
            let oid = oids
                .get(*target)
                .copied()
                .unwrap_or(Oid(u64::MAX - *target as u64));
            db.delete(oid).map(|()| None)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The store's published snapshot stays byte-identical to a plain
    /// mutable database fed the same schedule, and a mid-schedule pin is
    /// frozen at exactly its epoch's bytes.
    #[test]
    fn store_commits_match_the_mutable_oracle(
        ops in prop::collection::vec(arb_op(), 1..32),
        pin_at in 0..32usize,
    ) {
        let mut oracle = seeded_db("iso");
        let store = DbStore::new(seeded_db("iso"));
        let mut oids: Vec<Oid> = Vec::new();
        let mut pinned = None;

        for (i, op) in ops.iter().enumerate() {
            if i == pin_at.min(ops.len() - 1) {
                let snap = store.snapshot();
                let bytes = geodb::snapshot::save_snapshot(&snap).unwrap();
                pinned = Some((snap, bytes));
            }

            let oracle_res = apply(&mut oracle, op, &oids);
            oracle.drain_events();
            let oids_view = oids.clone();
            let store_res = store.write(|db| apply(db, op, &oids_view));
            let store_res = store_res.map(|c| c.value);
            prop_assert_eq!(
                oracle_res.is_ok(),
                store_res.is_ok(),
                "op {:?} diverged: oracle {:?} vs store {:?}",
                op, oracle_res, store_res
            );
            if let (Ok(Some(a)), Ok(Some(b))) = (&oracle_res, &store_res) {
                prop_assert_eq!(a, b, "insert allocated different oids");
                oids.push(*a);
            }

            // Published snapshot == oracle, byte for byte, at every prefix.
            let store_json = geodb::snapshot::save_snapshot(&store.snapshot()).unwrap();
            let oracle_json = geodb::snapshot::save(&mut oracle).unwrap();
            prop_assert_eq!(store_json, oracle_json, "divergence after op {}", i);
        }

        // The pin froze its epoch: identical bytes after the whole tail.
        let (snap, bytes_then) = pinned.expect("schedule pinned a snapshot");
        let bytes_now = geodb::snapshot::save_snapshot(&snap).unwrap();
        prop_assert_eq!(bytes_then, bytes_now, "pinned snapshot mutated");
        prop_assert!(snap.epoch() <= store.epoch());
    }
}

/// A seeded writer storm against concurrent pinned readers. Every reader
/// verifies its pin never changes underneath it while epochs race past,
/// then re-pins and must land on a strictly newer (or equal) epoch.
#[test]
fn pinned_readers_survive_a_writer_storm() {
    let seed: u64 = std::env::var("ISOLATION_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    const WRITES: usize = 200;
    const READERS: usize = 4;
    const CHECKS_PER_READER: usize = 25;

    let mut db = seeded_db("storm");
    let mut oids = Vec::new();
    for i in 0..16 {
        oids.push(
            db.insert(
                "grid",
                "Cell",
                vec![
                    ("name".into(), Value::Text(format!("seed{i}"))),
                    ("level".into(), Value::Int(i)),
                ],
            )
            .unwrap(),
        );
    }
    let store = DbStore::new(db);
    let first_epoch = store.epoch();

    let writer = {
        let store = store.clone();
        let oids = oids.clone();
        std::thread::spawn(move || {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..WRITES {
                let oid = oids[rng.gen_range(0..oids.len())];
                let level = rng.gen_range(-1000..1000i64);
                store
                    .write(|db| db.update(oid, vec![("level".into(), Value::Int(level))]))
                    .expect("storm update commits");
            }
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let store = store.clone();
            std::thread::spawn(move || {
                let mut last_epoch = geodb::Epoch::ZERO;
                for _ in 0..CHECKS_PER_READER {
                    let snap = store.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "reader {r}: epochs went backwards"
                    );
                    last_epoch = snap.epoch();
                    let before = geodb::snapshot::save_snapshot(&snap).unwrap();
                    std::thread::yield_now();
                    let after = geodb::snapshot::save_snapshot(&snap).unwrap();
                    assert_eq!(before, after, "reader {r}: pinned view tore");
                    // Invariants inside the pinned view: every cell the
                    // seed created is still reachable with a legal level.
                    assert_eq!(snap.extent_size("grid", "Cell"), 16);
                }
            })
        })
        .collect();

    writer.join().expect("writer thread");
    for r in readers {
        r.join().expect("reader thread");
    }

    assert_eq!(store.epoch(), first_epoch + WRITES as u64);
    // With every thread done, only the published snapshot stays alive.
    assert_eq!(store.pinned_snapshots(), 0);

    // The final state is exactly what a sequential replay produces.
    let mut replay_db = seeded_db("storm");
    let mut replay_oids = Vec::new();
    for i in 0..16 {
        replay_oids.push(
            replay_db
                .insert(
                    "grid",
                    "Cell",
                    vec![
                        ("name".into(), Value::Text(format!("seed{i}"))),
                        ("level".into(), Value::Int(i)),
                    ],
                )
                .unwrap(),
        );
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for _ in 0..WRITES {
        let oid = replay_oids[rng.gen_range(0..replay_oids.len())];
        let level = rng.gen_range(-1000..1000i64);
        replay_db
            .update(oid, vec![("level".into(), Value::Int(level))])
            .unwrap();
    }
    assert_eq!(
        geodb::snapshot::save(&mut replay_db).unwrap(),
        geodb::snapshot::save_snapshot(&store.snapshot()).unwrap(),
        "storm result diverged from sequential replay"
    );
}
