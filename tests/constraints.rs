//! Constraint maintenance through the active mechanism.
//!
//! The paper (Section 3.3): "a wide spectrum of gis functions can profit
//! from active features … integrity constraints and data adjustments can
//! be ensured by rules during spatial data entry and updates", citing the
//! authors' own prototype for "maintaining topological constraints in the
//! gis" [11]. This test reproduces that usage on our substrate: the same
//! engine that serves customization rules also runs integrity rules —
//! here, a binary topological constraint *every duct endpoint must touch
//! a pole* — and both rule families coexist, exactly as the paper's
//! partitioned rule set prescribes.

use std::sync::Arc;
use std::sync::Mutex;

use activegis::{Engine, Event, EventPattern, Geometry, Point, Rect, Rule, SessionContext, Value};
use custlang::Customization;
use geodb::db::Database;
use geodb::gen::{phone_net_db, TelecomConfig};
use geodb::geometry::Polyline;
use geodb::query::{DbEvent, DbEventKind};

/// Tolerance for "touches" (map units).
const EPS: f64 = 2.0;

/// Install the topological-constraint rule: on every Duct insert/update,
/// check both endpoints against the pole extension; violations are
/// logged and raise an external repair event.
fn install_duct_constraint(
    engine: &mut Engine<Customization>,
    db: Arc<Mutex<Database>>,
    violations: Arc<Mutex<Vec<String>>>,
) {
    let checker = move |event: &Event, _ctx: &SessionContext| -> Vec<Event> {
        let Event::Db(DbEvent::Insert { oid, .. } | DbEvent::Update { oid, .. }) = event else {
            return vec![];
        };
        let mut db = db.lock().unwrap();
        let Ok(duct) = db.peek(*oid) else {
            return vec![];
        };
        let Some(Geometry::Polyline(path)) = duct.get("duct_path").as_geometry().cloned() else {
            return vec![];
        };
        let endpoints = [
            path.points()[0],
            *path.points().last().expect("polyline has points"),
        ];
        let mut raised = Vec::new();
        for p in endpoints {
            let near = db
                .window_query("phone_net", "Pole", Rect::from_point(p).inflate(EPS))
                .unwrap_or_default();
            let touches = near.iter().any(|pole| {
                pole.get("pole_location")
                    .as_geometry()
                    .is_some_and(|g| g.distance_to_point(&p) <= EPS)
            });
            if !touches {
                violations
                    .lock()
                    .unwrap()
                    .push(format!("duct {oid} endpoint {p} touches no pole"));
                raised.push(Event::external("topology_violation"));
            }
        }
        raised
    };
    engine
        .add_rule(Rule::integrity(
            "duct_endpoints_touch_poles",
            EventPattern::Db {
                kind: None, // both Insert and Update
                schema: Some("phone_net".into()),
                class: Some("Duct".into()),
            },
            Arc::new(checker),
        ))
        .unwrap();
}

#[allow(clippy::type_complexity)]
fn setup() -> (
    Arc<Mutex<Database>>,
    Engine<Customization>,
    Arc<Mutex<Vec<String>>>,
    Arc<Mutex<u32>>,
) {
    let (db, _) = phone_net_db(&TelecomConfig::small()).unwrap();
    let db = Arc::new(Mutex::new(db));
    let violations = Arc::new(Mutex::new(Vec::new()));
    let repairs = Arc::new(Mutex::new(0u32));

    let mut engine: Engine<Customization> = Engine::new();
    install_duct_constraint(&mut engine, db.clone(), violations.clone());
    // A second rule consumes the raised violation events (the "data
    // adjustment" stage — here it only counts repair requests).
    let repairs2 = repairs.clone();
    engine
        .add_rule(Rule::integrity(
            "schedule_repair",
            EventPattern::External {
                name: Some("topology_violation".into()),
            },
            Arc::new(move |_, _| {
                *repairs2.lock().unwrap() += 1;
                vec![]
            }),
        ))
        .unwrap();
    (db, engine, violations, repairs)
}

/// Feed pending database events through the engine, as the dispatcher
/// does after each database operation.
fn pump(db: &Arc<Mutex<Database>>, engine: &mut Engine<Customization>) {
    let events = db.lock().unwrap().drain_events();
    let ctx = SessionContext::new("editor", "maintenance", "data_entry");
    for e in events {
        engine.dispatch(Event::Db(e), &ctx).unwrap();
    }
}

fn nearest_pole_points(db: &Arc<Mutex<Database>>) -> (Point, Point, geodb::Oid) {
    let mut db = db.lock().unwrap();
    let poles = db.get_class("phone_net", "Pole", false).unwrap();
    db.drain_events();
    let a = poles[0]
        .get("pole_location")
        .as_geometry()
        .unwrap()
        .bbox()
        .center();
    let b = poles[1]
        .get("pole_location")
        .as_geometry()
        .unwrap()
        .bbox()
        .center();
    let supplier_oid = match poles[0].get("pole_supplier") {
        Value::Ref(o) => *o,
        _ => panic!("pole has a supplier"),
    };
    (a, b, supplier_oid)
}

fn insert_duct(db: &Arc<Mutex<Database>>, a: Point, b: Point, supplier: geodb::Oid) -> geodb::Oid {
    db.lock()
        .unwrap()
        .insert(
            "phone_net",
            "Duct",
            vec![
                ("duct_type".into(), Value::Int(1)),
                ("duct_diameter".into(), Value::Float(0.1)),
                ("duct_supplier".into(), Value::Ref(supplier)),
                (
                    "duct_path".into(),
                    Geometry::Polyline(Polyline::new(vec![a, b]).unwrap()).into(),
                ),
            ],
        )
        .unwrap()
}

#[test]
fn valid_ducts_pass_the_constraint() {
    let (db, mut engine, violations, repairs) = setup();
    let (a, b, supplier) = nearest_pole_points(&db);
    insert_duct(&db, a, b, supplier);
    pump(&db, &mut engine);
    assert!(
        violations.lock().unwrap().is_empty(),
        "{:?}",
        violations.lock().unwrap()
    );
    assert_eq!(*repairs.lock().unwrap(), 0);
}

#[test]
fn dangling_ducts_are_flagged_and_repairs_scheduled() {
    let (db, mut engine, violations, repairs) = setup();
    let (a, _, supplier) = nearest_pole_points(&db);
    // One endpoint floats in the void.
    let oid = insert_duct(&db, a, Point::new(-500.0, -500.0), supplier);
    pump(&db, &mut engine);
    assert_eq!(violations.lock().unwrap().len(), 1);
    assert!(violations.lock().unwrap()[0].contains(&format!("duct {oid}")));
    // The violation cascaded into a repair request.
    assert_eq!(*repairs.lock().unwrap(), 1);
}

#[test]
fn updates_are_rechecked() {
    let (db, mut engine, violations, repairs) = setup();
    let (a, b, supplier) = nearest_pole_points(&db);
    let oid = insert_duct(&db, a, b, supplier);
    pump(&db, &mut engine);
    assert!(violations.lock().unwrap().is_empty());

    // Drag the duct away from its poles.
    db.lock()
        .unwrap()
        .update(
            oid,
            vec![(
                "duct_path".into(),
                Geometry::Polyline(
                    Polyline::new(vec![Point::new(-100.0, 0.0), Point::new(-200.0, 0.0)]).unwrap(),
                )
                .into(),
            )],
        )
        .unwrap();
    pump(&db, &mut engine);
    assert_eq!(violations.lock().unwrap().len(), 2, "both endpoints dangle");
    assert_eq!(*repairs.lock().unwrap(), 2);
}

/// Integrity rules and customization rules share one engine without
/// interference — the paper's partitioned rule set.
#[test]
fn integrity_and_customization_rules_coexist() {
    let (db, mut engine, violations, _) = setup();
    engine
        .add_rules(custlang::compile(
            &custlang::parse(custlang::FIG6_PROGRAM).unwrap(),
            "fig6",
        ))
        .unwrap();

    // A Get_Class event under juliano's context selects the customization
    // and leaves the integrity log untouched.
    let juliano = SessionContext::new("juliano", "planner", "pole_manager");
    let out = engine
        .dispatch(
            Event::Db(DbEvent::GetClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            }),
            &juliano,
        )
        .unwrap();
    assert!(out.customization().is_some());
    assert!(violations.lock().unwrap().is_empty());

    // A bad insert under any context fires only the integrity rule.
    let (a, _, supplier) = nearest_pole_points(&db);
    insert_duct(&db, a, Point::new(-999.0, -999.0), supplier);
    let events = db.lock().unwrap().drain_events();
    for e in events {
        let out = engine.dispatch(Event::Db(e), &juliano).unwrap();
        assert!(out.customization().is_none());
    }
    assert_eq!(violations.lock().unwrap().len(), 1);

    // Static analysis finds no conflicts in the combined rule set.
    let findings = active::analyze(engine.rules());
    assert!(findings.is_empty(), "{findings:?}");
}

/// The generic rule machinery the constraint uses is pattern-checked:
/// a kind-less Db pattern matches Insert and Update but not queries.
#[test]
fn kindless_db_pattern_scopes_correctly() {
    let pattern = EventPattern::Db {
        kind: None,
        schema: Some("phone_net".into()),
        class: Some("Duct".into()),
    };
    let insert = Event::Db(DbEvent::Insert {
        schema: "phone_net".into(),
        class: "Duct".into(),
        oid: geodb::Oid(1),
    });
    let get_class_other = Event::Db(DbEvent::GetClass {
        schema: "phone_net".into(),
        class: "Pole".into(),
    });
    assert!(pattern.matches(&insert));
    assert!(!pattern.matches(&get_class_other));
    assert_eq!(DbEventKind::Insert.to_string(), "Insert");
}
