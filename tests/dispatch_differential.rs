//! Differential testing: the indexed dispatch path (discrimination index
//! plus winner cache) and the compiled dispatch tier (flat per-epoch
//! jump tables) must produce exactly the same `Outcome` as the linear
//! scan they replaced, for random rule sets, session contexts and event
//! sequences — including after interleaved add/remove/enable mutations,
//! which must invalidate the winner cache and recompile the tables. The
//! compiled arm runs twice: traces on (full walk, traces compared
//! entry-for-entry) and traces off (the early-exit winner walk, outcomes
//! compared).

use std::sync::Arc;

use proptest::prelude::*;

use active::{
    Action, ContextPattern, DispatchStrategy, Engine, EngineConfig, Event, EventPattern, Rule,
    RuleGroup, SessionContext,
};
use geodb::instance::Oid;
use geodb::query::{DbEvent, DbEventKind};

const SCHEMAS: [&str; 2] = ["phone_net", "water_net"];
const CLASSES: [&str; 2] = ["Pole", "Duct"];
const GESTURES: [&str; 2] = ["click", "key"];
const SOURCES: [&str; 2] = ["schema_window/list", "class_window/panel"];
const EXTERNALS: [&str; 2] = ["tick", "refresh"];
const FAMILIES: [&str; 2] = ["fa", "fb"];

/// Everything needed to build the *same* rule twice, once per engine.
#[derive(Debug, Clone)]
struct RuleSpec {
    event: EventPattern,
    context: ContextPattern,
    family: usize,
    group: RuleGroup,
    priority: i32,
    /// Deterministic guard (`only Db events pass`) — exercises the
    /// engine's cache bypass for guard-bearing rules.
    guarded: bool,
    /// Non-customization rules may raise a follow-up event (cascades;
    /// wildcard raisers even cycle, which both strategies must report
    /// with the same `CascadeOverflow`).
    raises: bool,
}

#[derive(Debug, Clone)]
enum Op {
    /// Dispatch an event twice (the second run exercises the cache-hit
    /// path) under the `usize`-th session context.
    Dispatch(Event, usize),
    Add(Box<RuleSpec>),
    Remove(usize),
    Toggle(usize, bool),
    /// Drop the whole `fa/` rule family, as program reinstallation does.
    RemovePrefix,
}

fn sessions() -> Vec<SessionContext> {
    vec![
        SessionContext::new("juliano", "planner", "pole_manager"),
        SessionContext::new("claudia", "planner", "env_monitor"),
        SessionContext::new("guest", "visitor", "browser"),
        SessionContext::new("juliano", "planner", "pole_manager").with_extra("scale", "1:1000"),
    ]
}

fn arb_event_pattern() -> impl Strategy<Value = EventPattern> {
    let opt_kind = prop::option::of(prop_oneof![
        Just(DbEventKind::GetSchema),
        Just(DbEventKind::GetClass),
        Just(DbEventKind::Insert),
    ]);
    let opt_schema = prop::option::of((0usize..2).prop_map(|i| SCHEMAS[i].to_string()));
    let opt_class = prop::option::of((0usize..2).prop_map(|i| CLASSES[i].to_string()));
    let opt_gesture = prop::option::of((0usize..2).prop_map(|i| GESTURES[i].to_string()));
    let opt_prefix = prop::option::of(prop_oneof![
        Just("schema_window".to_string()),
        Just("class_window".to_string()),
    ]);
    let opt_ext = prop::option::of((0usize..2).prop_map(|i| EXTERNALS[i].to_string()));
    prop_oneof![
        Just(EventPattern::Any),
        (opt_kind, opt_schema, opt_class).prop_map(|(kind, schema, class)| EventPattern::Db {
            kind,
            schema,
            class
        }),
        (opt_gesture, opt_prefix).prop_map(|(name, source_prefix)| EventPattern::Interface {
            name,
            source_prefix
        }),
        opt_ext.prop_map(|name| EventPattern::External { name }),
    ]
}

fn arb_context_pattern() -> impl Strategy<Value = ContextPattern> {
    (
        prop::option::of(prop_oneof![
            Just("juliano".to_string()),
            Just("claudia".to_string())
        ]),
        prop::option::of(Just("planner".to_string())),
        prop::option::of(prop_oneof![
            Just("pole_manager".to_string()),
            Just("env_monitor".to_string())
        ]),
        any::<bool>(),
    )
        .prop_map(|(user, category, application, scaled)| {
            let mut p = ContextPattern {
                user,
                category,
                application,
                extras: Default::default(),
            };
            if scaled {
                p = p.extra("scale", "1:1000");
            }
            p
        })
}

fn arb_rule_spec() -> impl Strategy<Value = RuleSpec> {
    (
        (arb_event_pattern(), arb_context_pattern(), 0usize..2),
        (
            prop_oneof![
                Just(RuleGroup::Customization),
                Just(RuleGroup::Integrity),
                Just(RuleGroup::Other),
            ],
            -3i32..4,
            any::<bool>(),
            any::<bool>(),
        ),
    )
        .prop_map(
            |((event, context, family), (group, priority, guarded, raises))| RuleSpec {
                event,
                context,
                family,
                group,
                priority,
                guarded,
                raises,
            },
        )
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0usize..2).prop_map(|i| Event::Db(DbEvent::GetSchema {
            schema: SCHEMAS[i].to_string()
        })),
        (0usize..2, 0usize..2).prop_map(|(s, c)| Event::Db(DbEvent::GetClass {
            schema: SCHEMAS[s].to_string(),
            class: CLASSES[c].to_string()
        })),
        (0usize..2, 0u64..4).prop_map(|(s, oid)| Event::Db(DbEvent::Insert {
            schema: SCHEMAS[s].to_string(),
            class: CLASSES[0].to_string(),
            oid: Oid(oid)
        })),
        (0usize..2, 0usize..2)
            .prop_map(|(g, s)| Event::interface(GESTURES[g], SOURCES[s].to_string())),
        (0usize..2).prop_map(|i| Event::external(EXTERNALS[i])),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    // The vendored proptest has no weighted `prop_oneof`; repeating the
    // dispatch arm biases runs toward dispatches between mutations.
    prop_oneof![
        (arb_event(), 0usize..4).prop_map(|(e, c)| Op::Dispatch(e, c)),
        (arb_event(), 0usize..4).prop_map(|(e, c)| Op::Dispatch(e, c)),
        (arb_event(), 0usize..4).prop_map(|(e, c)| Op::Dispatch(e, c)),
        arb_rule_spec().prop_map(|s| Op::Add(Box::new(s))),
        arb_rule_spec().prop_map(|s| Op::Add(Box::new(s))),
        (0usize..32).prop_map(Op::Remove),
        (0usize..32, any::<bool>()).prop_map(|(i, on)| Op::Toggle(i, on)),
        Just(Op::RemovePrefix),
    ]
}

fn make_rule(name: &str, spec: &RuleSpec, payload: usize) -> Rule<usize> {
    let mut r = Rule::customization(name, spec.event.clone(), spec.context.clone(), payload)
        .with_group(spec.group)
        .with_priority(spec.priority);
    if spec.group != RuleGroup::Customization && spec.raises {
        r.action = Arc::new(Action::Raise(vec![Event::external("chain")]));
    }
    if spec.guarded {
        r = r.with_guard(Arc::new(|e, _| matches!(e, Event::Db(_))));
    }
    r
}

struct Harness {
    indexed: Engine<usize>,
    linear: Engine<usize>,
    /// Compiled tier, traces on: full table walks, compared
    /// entry-for-entry against the oracle's traces.
    compiled: Engine<usize>,
    /// Compiled tier, traces off: exercises the early-exit
    /// most-specific walk (no trace to compare, outcomes must agree).
    compiled_fast: Engine<usize>,
    names: Vec<String>,
    serial: usize,
}

impl Harness {
    fn new() -> Harness {
        let cfg = |strategy| EngineConfig {
            strategy,
            ..Default::default()
        };
        Harness {
            indexed: Engine::with_config(cfg(DispatchStrategy::Indexed)),
            linear: Engine::with_config(cfg(DispatchStrategy::Linear)),
            // Threshold 0 forces the compiled tables even for the small
            // populations the generator produces (the hybrid arm would
            // otherwise scan and never touch them).
            compiled: Engine::with_config(EngineConfig {
                strategy: DispatchStrategy::Compiled,
                hybrid_linear_threshold: 0,
                ..Default::default()
            }),
            compiled_fast: Engine::with_config(EngineConfig {
                strategy: DispatchStrategy::Compiled,
                hybrid_linear_threshold: 0,
                tracing: false,
                ..Default::default()
            }),
            names: Vec::new(),
            serial: 0,
        }
    }

    fn engines(&mut self) -> [&mut Engine<usize>; 4] {
        [
            &mut self.indexed,
            &mut self.linear,
            &mut self.compiled,
            &mut self.compiled_fast,
        ]
    }

    fn add(&mut self, spec: &RuleSpec) -> Result<(), TestCaseError> {
        let serial = self.serial;
        let name = format!("{}/{}", FAMILIES[spec.family], serial);
        let results: Vec<_> = self
            .engines()
            .map(|e| e.add_rule(make_rule(&name, spec, serial)))
            .into_iter()
            .collect();
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[0], &results[2]);
        prop_assert_eq!(&results[0], &results[3]);
        if results[0].is_ok() {
            self.names.push(name);
        }
        self.serial += 1;
        Ok(())
    }

    fn dispatch(&mut self, event: &Event, ctx: &SessionContext) -> Result<(), TestCaseError> {
        let oracle = self.linear.dispatch(event.clone(), ctx);
        for (label, result) in [
            ("indexed", self.indexed.dispatch(event.clone(), ctx)),
            ("compiled", self.compiled.dispatch(event.clone(), ctx)),
            (
                "compiled_fast",
                self.compiled_fast.dispatch(event.clone(), ctx),
            ),
        ] {
            match (&result, &oracle) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(
                        &a.customizations,
                        &b.customizations,
                        "{} on {:?}",
                        label,
                        event
                    );
                    prop_assert_eq!(a.fired_names(), b.fired_names(), "{} on {:?}", label, event);
                    prop_assert_eq!(a.events_processed, b.events_processed);
                    // The fast arm runs traces off; everyone else must
                    // reproduce the oracle's trace exactly.
                    if label != "compiled_fast" {
                        prop_assert_eq!(
                            &a.trace.entries,
                            &b.trace.entries,
                            "{} on {:?}",
                            label,
                            event
                        );
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "strategies disagree on {event:?}: {label} {a:?} vs linear {b:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    fn apply(&mut self, op: &Op, sessions: &[SessionContext]) -> Result<(), TestCaseError> {
        match op {
            Op::Dispatch(event, c) => {
                // Twice: the repeat exercises the winner-cache hit path
                // (string-keyed on the indexed arm, packed on compiled).
                self.dispatch(event, &sessions[*c])?;
                self.dispatch(event, &sessions[*c])?;
            }
            Op::Add(spec) => self.add(spec)?,
            Op::Remove(i) => {
                if self.names.is_empty() {
                    return Ok(());
                }
                let name = self.names[i % self.names.len()].clone();
                let results = self.engines().map(|e| e.remove_rule(&name).is_ok());
                prop_assert_eq!(results[0], results[1]);
                prop_assert_eq!(results[0], results[2]);
                prop_assert_eq!(results[0], results[3]);
                if results[0] {
                    self.names.retain(|n| n != &name);
                }
            }
            Op::Toggle(i, on) => {
                if self.names.is_empty() {
                    return Ok(());
                }
                let name = self.names[i % self.names.len()].clone();
                let on = *on;
                let results: Vec<_> = self
                    .engines()
                    .map(|e| e.set_enabled(&name, on))
                    .into_iter()
                    .collect();
                prop_assert_eq!(&results[0], &results[1]);
                prop_assert_eq!(&results[0], &results[2]);
                prop_assert_eq!(&results[0], &results[3]);
            }
            Op::RemovePrefix => {
                let results = self.engines().map(|e| e.remove_rules_with_prefix("fa/"));
                prop_assert_eq!(results[0], results[1]);
                prop_assert_eq!(results[0], results[2]);
                prop_assert_eq!(results[0], results[3]);
                self.names.retain(|n| !n.starts_with("fa/"));
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn indexed_dispatch_matches_the_linear_oracle(
        initial in prop::collection::vec(arb_rule_spec(), 0..12),
        ops in prop::collection::vec(arb_op(), 1..40),
        finale in prop::collection::vec(arb_event(), 1..6),
    ) {
        let sessions = sessions();
        let mut h = Harness::new();
        for spec in &initial {
            h.add(spec)?;
        }
        for op in &ops {
            h.apply(op, &sessions)?;
        }
        // Sweep every context with a final event batch so each run ends
        // on a dense round of comparisons over the mutated rule set.
        for event in &finale {
            for ctx in &sessions {
                h.dispatch(event, ctx)?;
            }
        }
        // The engines' rule books stayed in lockstep.
        prop_assert_eq!(h.indexed.len(), h.linear.len());
        prop_assert_eq!(h.compiled.len(), h.linear.len());
        prop_assert_eq!(h.compiled_fast.len(), h.linear.len());
        for name in &h.names {
            prop_assert_eq!(h.indexed.rule(name).is_some(), h.linear.rule(name).is_some());
            prop_assert_eq!(h.compiled.rule(name).is_some(), h.linear.rule(name).is_some());
        }
    }
}

// ---------------------------------------------------------------------------
// Batch lane: `dispatch_batch` amortizes context packing, route
// classification and selection lookups across a batch, but it must be
// observationally identical to dispatching the same events one at a
// time — against both the per-event compiled walk and the linear
// oracle, across interleaved rule mutations (including priority edits,
// which flip the epoch mid-run).

mod batch {
    use super::*;

    #[derive(Debug, Clone)]
    pub(super) enum Mutation {
        Add(Box<RuleSpec>),
        Remove(usize),
        Toggle(usize, bool),
        Priority(usize, i32),
        Quiet,
    }

    pub(super) fn arb_mutation() -> impl Strategy<Value = Mutation> {
        prop_oneof![
            arb_rule_spec().prop_map(|s| Mutation::Add(Box::new(s))),
            arb_rule_spec().prop_map(|s| Mutation::Add(Box::new(s))),
            (0usize..32).prop_map(Mutation::Remove),
            (0usize..32, any::<bool>()).prop_map(|(i, on)| Mutation::Toggle(i, on)),
            (0usize..32, -3i32..4).prop_map(|(i, p)| Mutation::Priority(i, p)),
            Just(Mutation::Quiet),
        ]
    }

    /// Three engines fed the same rule book: the batch lane under test,
    /// a per-event compiled arm, and the linear oracle. The batch lane
    /// runs tracing off (its production configuration), so the arms
    /// compare payloads, fired names and cascade counts, not traces —
    /// the main property test already pins traces.
    struct Tri {
        batched: Engine<usize>,
        per_event: Engine<usize>,
        linear: Engine<usize>,
        names: Vec<String>,
        serial: usize,
    }

    impl Tri {
        fn new() -> Tri {
            let compiled = || EngineConfig {
                strategy: DispatchStrategy::Compiled,
                hybrid_linear_threshold: 0,
                tracing: false,
                ..Default::default()
            };
            Tri {
                batched: Engine::with_config(compiled()),
                per_event: Engine::with_config(compiled()),
                linear: Engine::with_config(EngineConfig {
                    strategy: DispatchStrategy::Linear,
                    tracing: false,
                    ..Default::default()
                }),
                names: Vec::new(),
                serial: 0,
            }
        }

        fn engines(&mut self) -> [&mut Engine<usize>; 3] {
            [&mut self.batched, &mut self.per_event, &mut self.linear]
        }

        fn add(&mut self, spec: &RuleSpec) -> Result<(), TestCaseError> {
            let serial = self.serial;
            let name = format!("{}/{}", FAMILIES[spec.family], serial);
            let results = self
                .engines()
                .map(|e| e.add_rule(make_rule(&name, spec, serial)).is_ok());
            prop_assert_eq!(results[0], results[1]);
            prop_assert_eq!(results[0], results[2]);
            if results[0] {
                self.names.push(name);
            }
            self.serial += 1;
            Ok(())
        }

        fn mutate(&mut self, m: &Mutation) -> Result<(), TestCaseError> {
            let name = |names: &[String], i: usize| {
                (!names.is_empty()).then(|| names[i % names.len()].clone())
            };
            match m {
                Mutation::Add(spec) => self.add(spec)?,
                Mutation::Remove(i) => {
                    if let Some(name) = name(&self.names, *i) {
                        let results = self.engines().map(|e| e.remove_rule(&name).is_ok());
                        prop_assert_eq!(results[0], results[1]);
                        prop_assert_eq!(results[0], results[2]);
                        if results[0] {
                            self.names.retain(|n| n != &name);
                        }
                    }
                }
                Mutation::Toggle(i, on) => {
                    if let Some(name) = name(&self.names, *i) {
                        let on = *on;
                        let results = self.engines().map(|e| e.set_enabled(&name, on).is_ok());
                        prop_assert_eq!(results[0], results[1]);
                        prop_assert_eq!(results[0], results[2]);
                    }
                }
                Mutation::Priority(i, p) => {
                    if let Some(name) = name(&self.names, *i) {
                        let p = *p;
                        let results = self.engines().map(|e| e.set_priority(&name, p).is_ok());
                        prop_assert_eq!(results[0], results[1]);
                        prop_assert_eq!(results[0], results[2]);
                    }
                }
                Mutation::Quiet => {}
            }
            Ok(())
        }

        fn run_batch(
            &mut self,
            events: &[Event],
            ctx: &SessionContext,
        ) -> Result<(), TestCaseError> {
            let outs = self.batched.dispatch_batch(events.iter().cloned(), ctx);
            prop_assert_eq!(outs.len(), events.len());
            for (event, got) in events.iter().zip(&outs) {
                let pe = self.per_event.dispatch(event.clone(), ctx);
                let or = self.linear.dispatch(event.clone(), ctx);
                match (got, &pe, &or) {
                    (Ok(a), Ok(b), Ok(c)) => {
                        prop_assert_eq!(&a.customizations, &b.customizations, "on {:?}", event);
                        prop_assert_eq!(&a.customizations, &c.customizations, "on {:?}", event);
                        prop_assert_eq!(a.fired_names(), b.fired_names(), "on {:?}", event);
                        prop_assert_eq!(a.fired_names(), c.fired_names(), "on {:?}", event);
                        prop_assert_eq!(a.events_processed, b.events_processed);
                        prop_assert_eq!(a.events_processed, c.events_processed);
                    }
                    (Err(a), Err(b), Err(c)) => {
                        prop_assert_eq!(a, b);
                        prop_assert_eq!(a, c);
                    }
                    (a, b, c) => {
                        return Err(TestCaseError::fail(format!(
                            "arms disagree on {event:?}: batch {a:?} vs per-event {b:?} \
                             vs linear {c:?}"
                        )))
                    }
                }
            }
            Ok(())
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn dispatch_batch_matches_per_event_and_linear(
            initial in prop::collection::vec(arb_rule_spec(), 0..10),
            rounds in prop::collection::vec(
                (arb_mutation(), prop::collection::vec(arb_event(), 1..16), 0usize..4),
                1..6,
            ),
        ) {
            let sessions = sessions();
            let mut t = Tri::new();
            for spec in &initial {
                t.add(spec)?;
            }
            for (mutation, events, c) in &rounds {
                t.mutate(mutation)?;
                let ctx = &sessions[*c];
                // Twice: the repeat replays the batch against warm lane
                // memos and warm winner caches.
                t.run_batch(events, ctx)?;
                t.run_batch(events, ctx)?;
            }
            prop_assert_eq!(t.batched.len(), t.linear.len());
            prop_assert_eq!(t.per_event.len(), t.linear.len());
        }
    }

    /// A rule quarantined *inside* a batch (circuit breaker trip → epoch
    /// bump) must invalidate the lane's memoized selections mid-flight:
    /// the remaining events see the post-quarantine rule book, exactly
    /// as a per-event loop would.
    #[test]
    fn mid_batch_quarantine_trip_matches_per_event() {
        fn build() -> Engine<usize> {
            let mut e = Engine::with_config(EngineConfig {
                strategy: DispatchStrategy::Compiled,
                hybrid_linear_threshold: 0,
                tracing: false,
                quarantine_threshold: 2,
                ..Default::default()
            });
            e.add_rule(Rule::integrity(
                "boom",
                EventPattern::External {
                    name: Some("tick".into()),
                },
                Arc::new(|_, _| panic!("injected mid-batch fault")),
            ))
            .expect("unique");
            e.add_rule(Rule::customization(
                "style",
                EventPattern::Any,
                ContextPattern::any(),
                9usize,
            ))
            .expect("unique");
            e
        }

        let ctx = SessionContext::new("juliano", "planner", "pole_manager");
        // Interleave a Db event between the faulting ticks so the lane's
        // route memos flip while the fault counter climbs: faults on the
        // first two ticks, quarantine at the threshold, clean ticks after.
        let batch = [
            Event::external("tick"),
            Event::Db(DbEvent::GetSchema {
                schema: "phone_net".into(),
            }),
            Event::external("tick"),
            Event::external("tick"),
            Event::Db(DbEvent::GetSchema {
                schema: "phone_net".into(),
            }),
            Event::external("tick"),
        ];

        let mut batched = build();
        let outs = batched.dispatch_batch(batch.iter().cloned(), &ctx);
        assert_eq!(outs.len(), batch.len());

        // Quarantine state is scoped to the rule base, so the per-event
        // arm gets its own identically-built engine.
        let mut seq = build();
        for (i, (event, got)) in batch.iter().zip(&outs).enumerate() {
            let want = seq.dispatch(event.clone(), &ctx).expect("fail-open");
            let got = got.as_ref().expect("fail-open");
            assert_eq!(
                got.customizations, want.customizations,
                "event {i} ({event:?})"
            );
            assert_eq!(got.fired_names(), want.fired_names(), "event {i}");
            assert_eq!(
                got.faults.len(),
                want.faults.len(),
                "event {i} fault counts"
            );
            // The `Any` customization survives every fault (fail-open).
            assert_eq!(got.customizations, vec![9], "event {i}");
        }
        // Ticks 0 and 2 fault; the threshold trips on the second fault,
        // so ticks 3 and 5 (and the Db events) are fault-free.
        let fault_counts: Vec<usize> = outs
            .iter()
            .map(|o| o.as_ref().expect("fail-open").faults.len())
            .collect();
        assert_eq!(fault_counts, vec![1, 0, 1, 0, 0, 0]);
        assert_eq!(outs[0].as_ref().unwrap().faults[0].rule, "boom");
        assert_eq!(batched.quarantined(), vec!["boom"]);
        assert_eq!(seq.quarantined(), vec!["boom"]);
    }
}

// ---------------------------------------------------------------------------
// Hot reload: patching the compiled artifact on a single-rule mutation
// must yield tables observationally identical to a full recompile of
// the same rule book.

mod hot_reload {
    use super::batch::{arb_mutation, Mutation};
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn incremental_patch_matches_full_recompile(
            initial in prop::collection::vec(arb_rule_spec(), 0..10),
            muts in prop::collection::vec(arb_mutation(), 1..12),
            probes in prop::collection::vec(arb_event(), 1..5),
        ) {
            let sessions = sessions();
            let compiled = || EngineConfig {
                strategy: DispatchStrategy::Compiled,
                hybrid_linear_threshold: 0,
                ..Default::default()
            };
            // Separate bases: `invalidate_compiled` is base-global, so
            // the full-recompile arm must not share the patched arm's
            // artifact cache.
            let mut pair = MutPair::new(
                Engine::with_config(compiled()),
                Engine::with_config(compiled()),
            );
            for spec in &initial {
                pair.add(spec)?;
            }
            pair.patched.precompile();
            pair.full.precompile();

            // A Db-pattern customization with already-wide interners is
            // always spliceable — this pins the patch path at least once
            // per case regardless of what the random mutations do.
            let seed = RuleSpec {
                event: EventPattern::Db {
                    kind: Some(DbEventKind::Insert),
                    schema: Some(SCHEMAS[0].to_string()),
                    class: Some(CLASSES[0].to_string()),
                },
                context: ContextPattern::any(),
                family: 1,
                group: RuleGroup::Customization,
                priority: 2,
                guarded: false,
                raises: false,
            };
            pair.add(&seed)?;
            let stats = pair.patched.precompile();
            prop_assert!(stats.patched, "db-pattern add must splice");
            pair.full.rule_base().invalidate_compiled();
            let full_stats = pair.full.precompile();
            prop_assert!(!full_stats.patched);
            prop_assert_eq!(stats.rules, full_stats.rules);
            let mut patched_seen = 1usize;

            for m in &muts {
                pair.mutate(m)?;
                let a = pair.patched.precompile();
                pair.full.rule_base().invalidate_compiled();
                let b = pair.full.precompile();
                prop_assert!(!b.patched);
                if a.patched {
                    patched_seen += 1;
                }
                prop_assert_eq!(a.generation, b.generation);
                prop_assert_eq!(a.rules, b.rules);
                for event in &probes {
                    for ctx in &sessions {
                        pair.compare(event, ctx)?;
                    }
                }
            }
            prop_assert!(patched_seen >= 1);
        }
    }

    /// Two engines on independent bases receiving the same mutations;
    /// arm A keeps its artifact warm (patches), arm B throws the
    /// artifact away before every recompile.
    struct MutPair {
        patched: Engine<usize>,
        full: Engine<usize>,
        names: Vec<String>,
        serial: usize,
    }

    impl MutPair {
        fn new(patched: Engine<usize>, full: Engine<usize>) -> MutPair {
            MutPair {
                patched,
                full,
                names: Vec::new(),
                serial: 0,
            }
        }

        fn add(&mut self, spec: &RuleSpec) -> Result<(), TestCaseError> {
            let serial = self.serial;
            let name = format!("{}/{}", FAMILIES[spec.family], serial);
            let a = self
                .patched
                .add_rule(make_rule(&name, spec, serial))
                .is_ok();
            let b = self.full.add_rule(make_rule(&name, spec, serial)).is_ok();
            prop_assert_eq!(a, b);
            if a {
                self.names.push(name);
            }
            self.serial += 1;
            Ok(())
        }

        fn mutate(&mut self, m: &Mutation) -> Result<(), TestCaseError> {
            let pick = |names: &[String], i: usize| {
                (!names.is_empty()).then(|| names[i % names.len()].clone())
            };
            match m {
                Mutation::Add(spec) => self.add(spec)?,
                Mutation::Remove(i) => {
                    if let Some(name) = pick(&self.names, *i) {
                        let a = self.patched.remove_rule(&name).is_ok();
                        let b = self.full.remove_rule(&name).is_ok();
                        prop_assert_eq!(a, b);
                        if a {
                            self.names.retain(|n| n != &name);
                        }
                    }
                }
                Mutation::Toggle(i, on) => {
                    if let Some(name) = pick(&self.names, *i) {
                        let a = self.patched.set_enabled(&name, *on).is_ok();
                        let b = self.full.set_enabled(&name, *on).is_ok();
                        prop_assert_eq!(a, b);
                    }
                }
                Mutation::Priority(i, p) => {
                    if let Some(name) = pick(&self.names, *i) {
                        let a = self.patched.set_priority(&name, *p).is_ok();
                        let b = self.full.set_priority(&name, *p).is_ok();
                        prop_assert_eq!(a, b);
                    }
                }
                Mutation::Quiet => {}
            }
            Ok(())
        }

        fn compare(&mut self, event: &Event, ctx: &SessionContext) -> Result<(), TestCaseError> {
            let a = self.patched.dispatch(event.clone(), ctx);
            let b = self.full.dispatch(event.clone(), ctx);
            match (&a, &b) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.customizations, &b.customizations, "on {:?}", event);
                    prop_assert_eq!(a.fired_names(), b.fired_names(), "on {:?}", event);
                    prop_assert_eq!(a.events_processed, b.events_processed);
                    prop_assert_eq!(&a.trace.entries, &b.trace.entries, "on {:?}", event);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "patched vs full recompile disagree on {event:?}: {a:?} vs {b:?}"
                    )))
                }
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-threaded stress: the differential property must also hold while a
// writer thread mutates the shared rule base under concurrent readers.

mod threaded {
    use super::*;
    use active::RuleBase;
    use geodb::query::DbEvent;

    /// The concurrency contract, enforced at compile time: every handle
    /// the serving layer moves across threads is `Send`, and everything
    /// shared between sessions is `Sync`.
    #[test]
    fn handles_are_send_and_sync() {
        fn send_sync<T: Send + Sync>() {}
        fn send<T: Send>() {}
        send_sync::<RuleBase<usize>>();
        send_sync::<Engine<usize>>();
        send::<gisui::Dispatcher>();
        send_sync::<activegis::SessionServer>();
    }

    /// A deterministic pool of rules the writer cycles through: varied
    /// patterns, groups, priorities and guards, mirroring the property
    /// test's generator without its RNG.
    fn stress_rule(serial: usize) -> Rule<usize> {
        let event = match serial % 4 {
            0 => EventPattern::db(DbEventKind::GetSchema),
            1 => EventPattern::Db {
                kind: Some(DbEventKind::GetClass),
                schema: Some(SCHEMAS[serial % 2].into()),
                class: Some(CLASSES[serial / 2 % 2].into()),
            },
            2 => EventPattern::Interface {
                name: Some(GESTURES[serial % 2].into()),
                source_prefix: None,
            },
            _ => EventPattern::Any,
        };
        let context = match serial % 3 {
            0 => ContextPattern::any(),
            1 => ContextPattern::for_user("juliano"),
            _ => ContextPattern::for_application("pole_manager"),
        };
        let mut rule = Rule::customization(format!("stress/{serial}"), event, context, serial)
            .with_priority((serial % 7) as i32 - 3);
        if serial.is_multiple_of(5) {
            rule = rule.with_guard(Arc::new(|e, _| matches!(e, Event::Db(_))));
        }
        rule
    }

    fn stress_events() -> Vec<Event> {
        vec![
            Event::Db(DbEvent::GetSchema {
                schema: "phone_net".into(),
            }),
            Event::Db(DbEvent::GetClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            }),
            Event::interface("click", SOURCES[0].to_string()),
            Event::external("tick"),
        ]
    }

    /// One writer thread adds/removes/toggles rules in the shared base
    /// while reader threads continuously compare four sessions — pure
    /// index, hybrid (default threshold), the compiled tier (recompiling
    /// on every observed snapshot flip) and the linear oracle — over
    /// bitwise-identical pinned snapshots. Any divergence between the
    /// strategies, or any torn snapshot observation, fails the test.
    #[test]
    fn strategies_agree_under_concurrent_mutation() {
        const READERS: usize = 3;
        const READER_ROUNDS: usize = 120;
        const WRITER_ROUNDS: usize = 300;

        let base = Engine::<usize>::new().rule_base();
        let mut writer = base.session();
        for serial in 0..16 {
            writer.add_rule(stress_rule(serial)).expect("unique names");
        }

        let writer_base = base.clone();
        let writer_thread = std::thread::spawn(move || {
            let mut writer = writer_base.session();
            for round in 0..WRITER_ROUNDS {
                let serial = 16 + round;
                match round % 4 {
                    0 | 1 => {
                        writer.add_rule(stress_rule(serial)).expect("unique names");
                    }
                    2 => {
                        // Remove the oldest rule still alive; ignore a
                        // miss if an earlier round already removed it.
                        let _ = writer.remove_rule(&format!("stress/{}", serial - 8));
                    }
                    _ => {
                        let name = format!("stress/{}", serial - 4);
                        let _ = writer.set_enabled(&name, round % 8 < 4);
                    }
                }
            }
        });

        let sessions = sessions();
        let events = stress_events();
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let base = base.clone();
                let sessions = sessions.clone();
                let events = events.clone();
                std::thread::spawn(move || {
                    let mut indexed = base.session_with(EngineConfig {
                        strategy: DispatchStrategy::Indexed,
                        hybrid_linear_threshold: 0,
                        ..Default::default()
                    });
                    let mut hybrid = base.session_with(EngineConfig {
                        strategy: DispatchStrategy::Indexed,
                        ..Default::default()
                    });
                    let mut linear = base.session_with(EngineConfig {
                        strategy: DispatchStrategy::Linear,
                        ..Default::default()
                    });
                    let mut compiled = base.session_with(EngineConfig {
                        strategy: DispatchStrategy::Compiled,
                        hybrid_linear_threshold: 0,
                        ..Default::default()
                    });
                    // Pin the snapshots: each round refreshes the indexed
                    // session, then clones its exact view into the others
                    // so all four dispatch over the same rule set no
                    // matter what the writer publishes meanwhile. The
                    // compiled session recompiles its tables on every
                    // snapshot flip it observes.
                    for handle in [&mut indexed, &mut hybrid, &mut linear, &mut compiled] {
                        handle.set_auto_sync(false);
                    }
                    for round in 0..READER_ROUNDS {
                        indexed.sync();
                        hybrid.sync_with(&indexed);
                        linear.sync_with(&indexed);
                        compiled.sync_with(&indexed);
                        let ctx = &sessions[(r + round) % sessions.len()];
                        for event in &events {
                            // Twice per handle: the repeat hits each
                            // session's private winner cache.
                            for _ in 0..2 {
                                let a = indexed.dispatch(event.clone(), ctx);
                                let b = hybrid.dispatch(event.clone(), ctx);
                                let c = linear.dispatch(event.clone(), ctx);
                                let d = compiled.dispatch(event.clone(), ctx);
                                let (Ok(a), Ok(b), Ok(c), Ok(d)) = (a, b, c, d) else {
                                    panic!("stress dispatch failed on {event:?}");
                                };
                                assert_eq!(
                                    a.customizations, b.customizations,
                                    "index vs hybrid on {event:?}"
                                );
                                assert_eq!(
                                    a.customizations, c.customizations,
                                    "index vs linear on {event:?}"
                                );
                                assert_eq!(
                                    c.customizations, d.customizations,
                                    "linear vs compiled on {event:?}"
                                );
                                assert_eq!(a.fired_names(), b.fired_names());
                                assert_eq!(a.fired_names(), c.fired_names());
                                assert_eq!(c.fired_names(), d.fired_names());
                                assert_eq!(a.trace.entries, c.trace.entries);
                                assert_eq!(c.trace.entries, d.trace.entries);
                            }
                        }
                    }
                })
            })
            .collect();

        writer_thread.join().expect("writer thread");
        for reader in readers {
            reader.join().expect("reader thread");
        }

        // Every session of the base sees the writer's final rule book.
        let mut check = base.session();
        check.sync();
        assert_eq!(check.rules_generation(), base.epoch());
    }
}
