//! Cross-crate persistence tests: database snapshots, the stored widget
//! library, and customization programs surviving a full save/load cycle.

use activegis::{ActiveGis, TelecomConfig, FIG6_PROGRAM};
use geodb::gen::{phone_net_db, TelecomConfig as Cfg};
use geodb::geometry::Rect;

/// A generated telephone network round-trips bit-for-bit through a
/// snapshot, including spatial query results.
#[test]
fn phone_net_snapshot_round_trip() {
    let (mut db, stats) = phone_net_db(&Cfg::small()).unwrap();
    let window = Rect::new(0.0, 0.0, 150.0, 150.0);
    let before = db.window_query("phone_net", "Pole", window).unwrap();

    let json = geodb::snapshot::save(&mut db).unwrap();
    let mut restored = geodb::snapshot::load(&json).unwrap();

    assert_eq!(restored.extent_size("phone_net", "Pole"), stats.poles);
    assert_eq!(restored.extent_size("phone_net", "Duct"), stats.ducts);
    let after = restored.window_query("phone_net", "Pole", window).unwrap();
    assert_eq!(before, after);

    // Methods are native code and must be re-registered after load; the
    // schema still declares them.
    let poles = restored.get_class("phone_net", "Pole", false).unwrap();
    assert!(restored
        .call_method(&poles[0], "get_supplier_name", &[])
        .is_err());
    geodb::gen::register_phone_net_methods(&mut restored).unwrap();
    assert!(restored
        .call_method(&poles[0], "get_supplier_name", &[])
        .is_ok());
}

/// A complete system — data, stored library, customization program —
/// can be torn down and rebuilt from the snapshot plus program source.
#[test]
fn full_system_rebuild_from_snapshot() {
    // Phase 1: build, customize, persist.
    let snapshot = {
        let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
        gis.customize(FIG6_PROGRAM, "fig6").unwrap();
        let d = gis.dispatcher();
        let lib = d.builder_library_mut().clone();
        d.store()
            .write(|db| uilib::persist::save_library(db, &lib))
            .unwrap();
        geodb::snapshot::save_snapshot(&d.snapshot()).unwrap()
    };

    // Phase 2: rebuild from the snapshot.
    let mut db = geodb::snapshot::load(&snapshot).unwrap();
    geodb::gen::register_phone_net_methods(&mut db).unwrap();
    let library = uilib::persist::load_library(&mut db).unwrap();
    assert!(library.contains("poleWidget"));

    let mut gis = ActiveGis::with_library(db, library);
    gis.customize(FIG6_PROGRAM, "fig6").unwrap();

    // Phase 3: the rebuilt system behaves identically (Fig. 7 windows).
    let sid = gis.login("juliano", "planner", "pole_manager");
    let windows = gis.browse_schema(sid, "phone_net").unwrap();
    assert_eq!(windows.len(), 2);
    let art = gis.render(windows[1]).unwrap();
    assert!(art.contains("O="), "customized slider survives rebuild");
}

/// Snapshots are deterministic: saving twice yields identical JSON.
#[test]
fn snapshots_are_deterministic() {
    let (mut db, _) = phone_net_db(&Cfg::small()).unwrap();
    let a = geodb::snapshot::save(&mut db).unwrap();
    let b = geodb::snapshot::save(&mut db).unwrap();
    assert_eq!(a, b);

    // And loading then saving again is stable.
    let mut reloaded = geodb::snapshot::load(&a).unwrap();
    let c = geodb::snapshot::save(&mut reloaded).unwrap();
    assert_eq!(a, c);
}

/// Corrupted snapshots fail loudly, never loading partial state.
#[test]
fn corrupted_snapshots_are_rejected() {
    let (mut db, _) = phone_net_db(&Cfg::small()).unwrap();
    let json = geodb::snapshot::save(&mut db).unwrap();

    // Truncated.
    assert!(geodb::snapshot::load(&json[..json.len() / 2]).is_err());
    // Instances re-pointed at a class the schema does not declare.
    let broken = json.replace("\"class\": \"Pole\"", "\"class\": \"Ghost\"");
    assert_ne!(broken, json, "corruption must hit something");
    assert!(geodb::snapshot::load(&broken).is_err());
}

/// Every load failure mode reports a typed cause through
/// `Error::source()` — never a panic, never a flattened string-only
/// error.
#[test]
fn load_failures_carry_typed_source_chains() {
    use std::error::Error as _;

    use geodb::{GeoDbError, SnapshotCause};

    fn cause_of(err: &GeoDbError) -> &SnapshotCause {
        err.source()
            .expect("load errors carry a source")
            .downcast_ref::<SnapshotCause>()
            .expect("the source is a SnapshotCause")
    }

    // Truncated document -> Json cause.
    let (mut db, _) = phone_net_db(&Cfg::small()).unwrap();
    let json = geodb::snapshot::save(&mut db).unwrap();
    let err = geodb::snapshot::load(&json[..json.len() / 2]).unwrap_err();
    assert!(matches!(cause_of(&err), SnapshotCause::Json(_)), "{err}");

    // Wrong format version -> Format cause.
    let bad = json.replace("\"version\": 1", "\"version\": 42");
    let err = geodb::snapshot::load(&bad).unwrap_err();
    assert!(matches!(cause_of(&err), SnapshotCause::Format(_)), "{err}");

    // Missing file -> Io cause, with the path in the display chain.
    let err = geodb::snapshot::load_from_file("/nonexistent/geodb-snap.json").unwrap_err();
    assert!(matches!(cause_of(&err), SnapshotCause::Io(_)), "{err}");
    assert!(err.to_string().contains("geodb-snap.json"));

    // The same chains surface through the store-level loaders.
    let err = geodb::snapshot::load_store("[]").unwrap_err();
    assert!(matches!(cause_of(&err), SnapshotCause::Json(_)), "{err}");
    let store = geodb::store::DbStore::new(geodb::db::Database::new("neg"));
    let err = geodb::snapshot::restore_store(&store, "not json").unwrap_err();
    assert!(matches!(cause_of(&err), SnapshotCause::Json(_)), "{err}");

    // And through WAL recovery of a missing/garbage directory.
    let err = geodb::wal::recover(geodb::WalConfig::new("/nonexistent/waldir")).unwrap_err();
    assert!(matches!(cause_of(&err), SnapshotCause::Io(_)), "{err}");
}
