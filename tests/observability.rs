//! End-to-end observability: the Fig. 6 flow must light up counters in
//! every subsystem, the exporters must produce parseable output, and the
//! structured explanation ring buffer must retain shadowing decisions.

use activegis::{ActiveGis, TelecomConfig, FIG6_PROGRAM};

/// The metrics registry is process-global; tests that touch it (or its
/// enabled switch) serialize on this lock.
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A second customization program whose context (`category planner`)
/// overlaps Fig. 6's (`user juliano application pole_manager`): both
/// match Juliano's sessions, so the less specific one is shadowed.
const PLANNER_PROGRAM: &str = "\
For category planner
  schema phone_net display as default
  class Pole display
";

fn fig6_flow() -> ActiveGis {
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
    gis.customize(FIG6_PROGRAM, "fig6").unwrap();
    let sid = gis.login("juliano", "planner", "pole_manager");
    let windows = gis.browse_schema(sid, "phone_net").unwrap();
    assert_eq!(windows.len(), 2, "Null schema + auto-opened Pole window");
    gis.render(windows[1]).unwrap();
    gis
}

#[test]
fn fig6_flow_populates_every_subsystem() {
    let _g = lock();
    obs::reset();
    obs::set_enabled(true);
    let gis = fig6_flow();
    let snap = gis.metrics();

    for subsystem in ["engine", "geodb", "builder", "render", "dispatcher"] {
        assert!(
            snap.subsystem_active(subsystem),
            "subsystem `{subsystem}` recorded nothing:\n{}",
            snap.to_json()
        );
    }

    // Engine: the schema open dispatches Get_Schema and Get_Class events
    // and the Fig. 6 rules fire.
    assert!(snap.counter("engine.dispatches") >= 2);
    assert!(snap.counter("engine.rules_considered") > 0);
    assert!(snap.counter("engine.rules_matched") > 0);
    assert!(snap.counter("engine.rules_fired") > 0);

    // Geodb: schema + class queries served from a pinned snapshot.
    // Since the shared-storage refactor the read path never touches
    // buffer-pool pages — it pins an immutable epoch instead.
    assert!(snap.counter("geodb.queries") >= 2);
    assert!(snap.counter("geodb.instances_fetched") > 0);
    assert!(snap.counter("db.reads_pinned") > 0);
    assert!(snap.counter("db.epoch") >= 1);

    // Builder and dispatcher: two windows built and registered.
    assert!(snap.counter("builder.windows_built") >= 2);
    assert!(snap.counter("builder.widgets_instantiated") > 0);
    assert!(snap.counter("dispatcher.events") >= 2);
    assert!(snap.counter("dispatcher.windows_opened") >= 2);
    assert!(snap.counter("dispatcher.sessions") >= 1);

    // Latency histograms carry ordered quantiles.
    for span in ["engine.dispatch", "geodb.get_class", "render.ascii"] {
        let h = snap
            .histograms
            .get(span)
            .unwrap_or_else(|| panic!("histogram `{span}` missing"));
        assert!(h.count > 0, "`{span}` never recorded");
        assert!(h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max);
    }

    // Span hierarchy: the builder ran inside the dispatcher's request
    // path, so geodb spans nest under the facade-level calls.
    assert!(snap.spans.contains_key("engine.dispatch"));
    assert!(snap.spans.contains_key("builder.class_window"));
}

#[test]
fn winner_cache_counters_reach_the_metrics_export() {
    let _g = lock();
    obs::reset();
    obs::set_enabled(true);
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
    gis.customize(FIG6_PROGRAM, "fig6").unwrap();
    let sid = gis.login("juliano", "planner", "pole_manager");

    // Cold: every event misses and populates the cache.
    gis.browse_schema(sid, "phone_net").unwrap();
    let snap = gis.metrics();
    assert!(snap.counter("engine.winner_cache_misses") > 0);
    assert_eq!(snap.counter("engine.winner_cache_hits"), 0);

    // Warm: the repeat interaction is answered from the cache.
    gis.browse_schema(sid, "phone_net").unwrap();
    assert!(gis.metrics().counter("engine.winner_cache_hits") > 0);

    // Installing another program mutates the rule set; the next dispatch
    // flushes the cache and records an invalidation.
    gis.customize(PLANNER_PROGRAM, "planner").unwrap();
    gis.browse_schema(sid, "phone_net").unwrap();
    let snap = gis.metrics();
    assert!(snap.counter("engine.winner_cache_invalidations") >= 1);

    // The `:metrics` JSON view carries all three counters, and they agree
    // with the engine's own statistics.
    let v: serde_json::Value = serde_json::from_str(&snap.to_json()).unwrap();
    for name in [
        "engine.winner_cache_hits",
        "engine.winner_cache_misses",
        "engine.winner_cache_invalidations",
    ] {
        assert!(v["counters"][name].as_u64().is_some(), "{name} missing");
    }
    let stats = gis.dispatch_cache_stats();
    assert_eq!(stats.hits, snap.counter("engine.winner_cache_hits"));
    assert_eq!(stats.misses, snap.counter("engine.winner_cache_misses"));
    assert_eq!(
        stats.invalidations,
        snap.counter("engine.winner_cache_invalidations")
    );
}

#[test]
fn flush_deferred_records_span_and_counter() {
    let _g = lock();
    obs::reset();
    obs::set_enabled(true);
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
    gis.dispatcher().engine().flush_deferred().unwrap();
    let snap = gis.metrics();
    // Even an empty flush registers its instrumentation: the span's
    // latency histogram and the flushed-firings counter.
    let h = snap
        .histograms
        .get("engine.flush_deferred")
        .expect("flush span records a histogram");
    assert!(h.count > 0);
    assert_eq!(snap.counter("engine.deferred_flushed"), 0);
}

#[test]
fn exporters_are_parseable() {
    let _g = lock();
    obs::reset();
    obs::set_enabled(true);
    let gis = fig6_flow();
    let snap = gis.metrics();

    // JSON snapshot round-trips and reports quantiles per subsystem.
    let v: serde_json::Value = serde_json::from_str(&snap.to_json()).unwrap();
    assert!(v["counters"]["engine.dispatches"].as_u64().unwrap() >= 2);
    for name in ["engine.dispatch", "geodb.get_schema", "dispatcher.render"] {
        let h = &v["histograms"][name];
        for q in ["p50", "p95", "p99", "max"] {
            assert!(
                h[q].as_f64().is_some(),
                "histograms.{name}.{q} missing in JSON export"
            );
        }
    }

    // Prometheus text: every sample line is `name value` with a numeric
    // value; counters appear as `_total`.
    let text = snap.to_prometheus();
    assert!(text.contains("activegis_engine_dispatches_total"));
    assert!(text.contains("activegis_engine_dispatch_seconds{quantile=\"0.5\"}"));
    let mut samples = 0;
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (name, value) = line.rsplit_once(' ').expect("`name value` pair");
        assert!(!name.is_empty());
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("non-numeric sample: {line}"));
        samples += 1;
    }
    assert!(samples > 10, "suspiciously small export:\n{text}");
}

#[test]
fn shadowing_survives_into_the_structured_explanation() {
    let _g = lock();
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
    gis.customize(FIG6_PROGRAM, "fig6").unwrap();
    gis.customize(PLANNER_PROGRAM, "planner").unwrap();
    let sid = gis.login("juliano", "planner", "pole_manager");
    gis.browse_schema(sid, "phone_net").unwrap();

    let log = gis.explanation_log();
    assert!(!log.is_empty());
    // The Get_Schema trace shows the planner-wide rule losing to the
    // more specific Fig. 6 rule.
    let schema_trace = log
        .records()
        .find(|r| r.trace.entries[0].event.contains("Get_Schema"))
        .expect("Get_Schema trace retained");
    let entry = &schema_trace.trace.entries[0];
    assert!(
        entry.fired.iter().any(|r| r.starts_with("fig6/")),
        "fig6 rule fired: {entry:?}"
    );
    assert!(
        entry.shadowed.iter().any(|r| r.starts_with("planner/")),
        "planner rule shadowed: {entry:?}"
    );

    // The JSON export carries the same structure.
    let v: serde_json::Value = serde_json::from_str(&gis.explanation_json()).unwrap();
    let mut saw_shadowed = false;
    let mut i = 0;
    while !v[i].is_null() {
        let mut j = 0;
        while !v[i]["trace"]["entries"][j].is_null() {
            if v[i]["trace"]["entries"][j]["shadowed"][0]
                .as_str()
                .is_some()
            {
                saw_shadowed = true;
            }
            j += 1;
        }
        i += 1;
    }
    assert!(saw_shadowed, "no shadowed rule in JSON export");
}

#[test]
fn explanation_ring_is_bounded_and_configurable() {
    let _g = lock();
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
    gis.customize(FIG6_PROGRAM, "fig6").unwrap();
    gis.dispatcher().set_explanation_capacity(3);
    let sid = gis.login("juliano", "planner", "pole_manager");
    for _ in 0..4 {
        gis.browse_schema(sid, "phone_net").unwrap();
    }

    let log = gis.explanation_log();
    // Each schema open records two traces (Get_Schema + Get_Class), so
    // the ring evicted well past its capacity.
    assert_eq!(log.len(), 3);
    assert_eq!(log.capacity(), 3);
    assert!(log.total_recorded() >= 8);
    // The retained records are the most recent, consecutively numbered.
    let seqs: Vec<u64> = log.records().map(|r| r.seq).collect();
    assert_eq!(seqs.len(), 3);
    assert_eq!(seqs[2], log.total_recorded() - 1);
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
    // Legacy rendered view stays in lockstep.
    assert_eq!(gis.explanation().len(), 3);
}

#[test]
fn disabling_metrics_makes_hooks_inert() {
    let _g = lock();
    obs::reset();
    ActiveGis::set_metrics_enabled(false);
    let gis = fig6_flow();
    let snap = gis.metrics();
    ActiveGis::set_metrics_enabled(true);
    assert_eq!(snap.counter("engine.dispatches"), 0);
    assert_eq!(snap.counter("geodb.queries"), 0);
    assert_eq!(snap.counter("builder.windows_built"), 0);
    assert!(!snap.subsystem_active("dispatcher"));
    // The explanation pipeline is independent of the metrics switch.
    assert!(!gis.explanation().is_empty());
}
