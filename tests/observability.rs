//! End-to-end observability: the Fig. 6 flow must light up counters in
//! every subsystem, the exporters must produce parseable output, and the
//! structured explanation ring buffer must retain shadowing decisions.

use activegis::{ActiveGis, TelecomConfig, FIG6_PROGRAM};

/// The metrics registry is process-global; tests that touch it (or its
/// enabled switch) serialize on this lock.
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A second customization program whose context (`category planner`)
/// overlaps Fig. 6's (`user juliano application pole_manager`): both
/// match Juliano's sessions, so the less specific one is shadowed.
const PLANNER_PROGRAM: &str = "\
For category planner
  schema phone_net display as default
  class Pole display
";

fn fig6_flow() -> ActiveGis {
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
    gis.customize(FIG6_PROGRAM, "fig6").unwrap();
    let sid = gis.login("juliano", "planner", "pole_manager");
    let windows = gis.browse_schema(sid, "phone_net").unwrap();
    assert_eq!(windows.len(), 2, "Null schema + auto-opened Pole window");
    gis.render(windows[1]).unwrap();
    gis
}

#[test]
fn fig6_flow_populates_every_subsystem() {
    let _g = lock();
    obs::reset();
    obs::set_enabled(true);
    let gis = fig6_flow();
    let snap = gis.metrics();

    for subsystem in ["engine", "geodb", "builder", "render", "dispatcher"] {
        assert!(
            snap.subsystem_active(subsystem),
            "subsystem `{subsystem}` recorded nothing:\n{}",
            snap.to_json()
        );
    }

    // Engine: the schema open dispatches Get_Schema and Get_Class events
    // and the Fig. 6 rules fire.
    assert!(snap.counter("engine.dispatches") >= 2);
    assert!(snap.counter("engine.rules_considered") > 0);
    assert!(snap.counter("engine.rules_matched") > 0);
    assert!(snap.counter("engine.rules_fired") > 0);

    // Geodb: schema + class queries served from a pinned snapshot.
    // Since the shared-storage refactor the read path never touches
    // buffer-pool pages — it pins an immutable epoch instead.
    assert!(snap.counter("geodb.queries") >= 2);
    assert!(snap.counter("geodb.instances_fetched") > 0);
    assert!(snap.counter("db.reads_pinned") > 0);
    assert!(snap.counter("db.epoch") >= 1);

    // Builder and dispatcher: two windows built and registered.
    assert!(snap.counter("builder.windows_built") >= 2);
    assert!(snap.counter("builder.widgets_instantiated") > 0);
    assert!(snap.counter("dispatcher.events") >= 2);
    assert!(snap.counter("dispatcher.windows_opened") >= 2);
    assert!(snap.counter("dispatcher.sessions") >= 1);

    // Latency histograms carry ordered quantiles.
    for span in ["engine.dispatch", "geodb.get_class", "render.ascii"] {
        let h = snap
            .histograms
            .get(span)
            .unwrap_or_else(|| panic!("histogram `{span}` missing"));
        assert!(h.count > 0, "`{span}` never recorded");
        assert!(h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max);
    }

    // Span hierarchy: the builder ran inside the dispatcher's request
    // path, so geodb spans nest under the facade-level calls.
    assert!(snap.spans.contains_key("engine.dispatch"));
    assert!(snap.spans.contains_key("builder.class_window"));
}

#[test]
fn winner_cache_counters_reach_the_metrics_export() {
    let _g = lock();
    obs::reset();
    obs::set_enabled(true);
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
    gis.customize(FIG6_PROGRAM, "fig6").unwrap();
    let sid = gis.login("juliano", "planner", "pole_manager");

    // Cold: every event misses and populates the cache.
    gis.browse_schema(sid, "phone_net").unwrap();
    let snap = gis.metrics();
    assert!(snap.counter("engine.winner_cache_misses") > 0);
    assert_eq!(snap.counter("engine.winner_cache_hits"), 0);

    // Warm: the repeat interaction is answered from the cache.
    gis.browse_schema(sid, "phone_net").unwrap();
    assert!(gis.metrics().counter("engine.winner_cache_hits") > 0);

    // Installing another program mutates the rule set; the next dispatch
    // flushes the cache and records an invalidation.
    gis.customize(PLANNER_PROGRAM, "planner").unwrap();
    gis.browse_schema(sid, "phone_net").unwrap();
    let snap = gis.metrics();
    assert!(snap.counter("engine.winner_cache_invalidations") >= 1);

    // The `:metrics` JSON view carries all three counters, and they agree
    // with the engine's own statistics.
    let v: serde_json::Value = serde_json::from_str(&snap.to_json()).unwrap();
    for name in [
        "engine.winner_cache_hits",
        "engine.winner_cache_misses",
        "engine.winner_cache_invalidations",
    ] {
        assert!(v["counters"][name].as_u64().is_some(), "{name} missing");
    }
    let stats = gis.dispatch_cache_stats();
    assert_eq!(stats.hits, snap.counter("engine.winner_cache_hits"));
    assert_eq!(stats.misses, snap.counter("engine.winner_cache_misses"));
    assert_eq!(
        stats.invalidations,
        snap.counter("engine.winner_cache_invalidations")
    );
}

#[test]
fn flush_deferred_records_span_and_counter() {
    let _g = lock();
    obs::reset();
    obs::set_enabled(true);
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
    gis.dispatcher().engine().flush_deferred().unwrap();
    let snap = gis.metrics();
    // Even an empty flush registers its instrumentation: the span's
    // latency histogram and the flushed-firings counter.
    let h = snap
        .histograms
        .get("engine.flush_deferred")
        .expect("flush span records a histogram");
    assert!(h.count > 0);
    assert_eq!(snap.counter("engine.deferred_flushed"), 0);
}

#[test]
fn exporters_are_parseable() {
    let _g = lock();
    obs::reset();
    obs::set_enabled(true);
    let gis = fig6_flow();
    let snap = gis.metrics();

    // JSON snapshot round-trips and reports quantiles per subsystem.
    let v: serde_json::Value = serde_json::from_str(&snap.to_json()).unwrap();
    assert!(v["counters"]["engine.dispatches"].as_u64().unwrap() >= 2);
    for name in ["engine.dispatch", "geodb.get_schema", "dispatcher.render"] {
        let h = &v["histograms"][name];
        for q in ["p50", "p95", "p99", "max"] {
            assert!(
                h[q].as_f64().is_some(),
                "histograms.{name}.{q} missing in JSON export"
            );
        }
    }

    // Prometheus text: every sample line is `name value` with a numeric
    // value (exemplar suffixes, `… # {trace_id="…"} v`, stripped first);
    // counters appear as `_total`.
    let text = snap.to_prometheus();
    assert!(text.contains("activegis_engine_dispatches_total"));
    assert!(text.contains("activegis_engine_dispatch_seconds{quantile=\"0.5\"}"));
    let mut samples = 0;
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let sample = line.split(" # ").next().unwrap();
        let (name, value) = sample.rsplit_once(' ').expect("`name value` pair");
        assert!(!name.is_empty());
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("non-numeric sample: {line}"));
        samples += 1;
    }
    assert!(samples > 10, "suspiciously small export:\n{text}");
}

#[test]
fn shadowing_survives_into_the_structured_explanation() {
    let _g = lock();
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
    gis.customize(FIG6_PROGRAM, "fig6").unwrap();
    gis.customize(PLANNER_PROGRAM, "planner").unwrap();
    let sid = gis.login("juliano", "planner", "pole_manager");
    gis.browse_schema(sid, "phone_net").unwrap();

    let log = gis.explanation_log();
    assert!(!log.is_empty());
    // The Get_Schema trace shows the planner-wide rule losing to the
    // more specific Fig. 6 rule.
    let schema_trace = log
        .records()
        .find(|r| r.trace.entries[0].event.contains("Get_Schema"))
        .expect("Get_Schema trace retained");
    let entry = &schema_trace.trace.entries[0];
    assert!(
        entry.fired.iter().any(|r| r.starts_with("fig6/")),
        "fig6 rule fired: {entry:?}"
    );
    assert!(
        entry.shadowed.iter().any(|r| r.starts_with("planner/")),
        "planner rule shadowed: {entry:?}"
    );

    // The JSON export carries the same structure.
    let v: serde_json::Value = serde_json::from_str(&gis.explanation_json()).unwrap();
    let mut saw_shadowed = false;
    let mut i = 0;
    while !v[i].is_null() {
        let mut j = 0;
        while !v[i]["trace"]["entries"][j].is_null() {
            if v[i]["trace"]["entries"][j]["shadowed"][0]
                .as_str()
                .is_some()
            {
                saw_shadowed = true;
            }
            j += 1;
        }
        i += 1;
    }
    assert!(saw_shadowed, "no shadowed rule in JSON export");
}

#[test]
fn explanation_ring_is_bounded_and_configurable() {
    let _g = lock();
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
    gis.customize(FIG6_PROGRAM, "fig6").unwrap();
    gis.dispatcher().set_explanation_capacity(3);
    let sid = gis.login("juliano", "planner", "pole_manager");
    for _ in 0..4 {
        gis.browse_schema(sid, "phone_net").unwrap();
    }

    let log = gis.explanation_log();
    // Each schema open records two traces (Get_Schema + Get_Class), so
    // the ring evicted well past its capacity.
    assert_eq!(log.len(), 3);
    assert_eq!(log.capacity(), 3);
    assert!(log.total_recorded() >= 8);
    // The retained records are the most recent, consecutively numbered.
    let seqs: Vec<u64> = log.records().map(|r| r.seq).collect();
    assert_eq!(seqs.len(), 3);
    assert_eq!(seqs[2], log.total_recorded() - 1);
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
    // Legacy rendered view stays in lockstep.
    assert_eq!(gis.explanation().len(), 3);
}

#[test]
fn disabling_metrics_makes_hooks_inert() {
    let _g = lock();
    obs::reset();
    ActiveGis::set_metrics_enabled(false);
    let gis = fig6_flow();
    let snap = gis.metrics();
    ActiveGis::set_metrics_enabled(true);
    assert_eq!(snap.counter("engine.dispatches"), 0);
    assert_eq!(snap.counter("geodb.queries"), 0);
    assert_eq!(snap.counter("builder.windows_built"), 0);
    assert!(!snap.subsystem_active("dispatcher"));
    // The explanation pipeline is independent of the metrics switch.
    assert!(!gis.explanation().is_empty());
}

// ---------------------------------------------------------------------------
// Request traces, sampling, and the SLO engine
// ---------------------------------------------------------------------------

use active::{Engine, EngineConfig, EventPattern, FaultPolicy, Rule, SessionContext};
use activegis::{Customization, SessionServer};
use geodb::query::{DbEvent, DbEventKind};
use geodb::store::DbStore;
use proptest::prelude::*;

fn demo_server(shards: usize, config: EngineConfig) -> SessionServer {
    let engine: Engine<Customization> = Engine::with_config(config);
    let base = engine.rule_base();
    let db = activegis::phone_net_db(&TelecomConfig::small()).unwrap().0;
    SessionServer::start(shards, base, DbStore::new(db))
}

fn get_class() -> DbEvent {
    DbEvent::GetClass {
        schema: "phone_net".into(),
        class: "Pole".into(),
    }
}

/// The tentpole acceptance scenario: one `dispatch_batch` under
/// `trace_sample=1` yields a causal trace tree spanning
/// server→dispatcher→engine→db, cross-linked from the ExplanationLog
/// record and a Prometheus exemplar.
#[test]
fn dispatch_batch_yields_a_causal_trace_tree() {
    let _g = lock();
    obs::reset();
    obs::set_enabled(true);
    obs::set_trace_sampling(1);

    let server = demo_server(1, EngineConfig::default());
    server.install_program(FIG6_PROGRAM, "fig6").unwrap();
    let s = server.open_session(SessionContext::new("juliano", "planner", "pole_manager"));
    let outcomes = server.dispatch_batch(s, vec![get_class()]).unwrap();
    assert_eq!(outcomes.len(), 1);
    assert!(!outcomes[0].customizations.is_empty(), "Fig. 6 rules fired");

    // The reply only arrives after the worker committed the trace.
    let traces = obs::recent_traces(4);
    let trace = traces.first().expect("trace committed before the reply");
    assert!(trace.sampled);
    assert_eq!(trace.shard, 0);

    // ≥4 causally linked spans across all four serving layers.
    assert!(trace.spans.len() >= 4, "spans: {:?}", trace.spans);
    let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
    for required in [
        "server.dispatch_batch",
        "dispatcher.dispatch_db_batch",
        "engine.dispatch_batch",
        "db.pin",
    ] {
        assert!(
            names.contains(&required),
            "missing span {required}: {names:?}"
        );
    }
    let ids: std::collections::BTreeSet<u64> = trace.spans.iter().map(|s| s.id).collect();
    assert_eq!(
        trace.spans.iter().filter(|s| s.parent == 0).count(),
        1,
        "exactly one root span"
    );
    for span in trace.spans.iter().filter(|s| s.parent != 0) {
        assert!(ids.contains(&span.parent), "dangling parent: {span:?}");
    }

    // JSON export carries the whole tree.
    let v: serde_json::Value = serde_json::from_str(&trace.to_json()).unwrap();
    assert_eq!(
        v["spans"][0]["name"].as_str(),
        Some("server.dispatch_batch")
    );

    // Cross-link 1: the ExplanationLog record carries the trace id.
    let record_trace_id = server.with_dispatcher(s, |d| {
        d.explanation_log()
            .records()
            .last()
            .map(|r| r.trace_id)
            .unwrap_or(0)
    });
    assert_eq!(record_trace_id, trace.trace_id, "explanation cross-link");

    // Cross-link 2: the id rides a Prometheus exemplar.
    let prom = obs::snapshot().to_prometheus();
    assert!(
        prom.contains(&format!("trace_id=\"{}\"", trace.trace_id_hex)),
        "exemplar missing from export"
    );
    obs::set_trace_sampling(0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cascade causality: every `engine.cascade` child span names the
    /// rule that raised its event, and every span's parent id exists in
    /// the same trace — for arbitrary Raise-chain lengths and request
    /// counts.
    #[test]
    fn cascade_child_spans_stay_causally_linked(
        chain_len in 1usize..6,
        requests in 1usize..4,
    ) {
        let _g = lock();
        obs::reset();
        obs::set_enabled(true);
        obs::set_trace_sampling(1);

        let mut engine: Engine<Customization> = Engine::new();
        for i in 0..chain_len {
            engine
                .add_rule(Rule {
                    name: format!("chain{i}"),
                    event: EventPattern::External { name: Some(format!("ev{i}")) },
                    context: active::ContextPattern::any(),
                    guard: None,
                    action: std::sync::Arc::new(active::Action::Raise(vec![
                        active::Event::external(format!("ev{}", i + 1)),
                    ])),
                    group: activegis::RuleGroup::Other,
                    coupling: active::Coupling::Immediate,
                    priority: 0,
                    enabled: true,
                })
                .unwrap();
        }
        let ctx = SessionContext::new("u", "c", "a");
        for _ in 0..requests {
            let _root = obs::trace_root("test.request");
            engine.dispatch(active::Event::external("ev0"), &ctx).unwrap();
        }

        let traces = obs::recent_traces(requests);
        prop_assert_eq!(traces.len(), requests);
        for t in traces {
            let ids: std::collections::BTreeSet<u64> = t.spans.iter().map(|s| s.id).collect();
            for span in t.spans.iter().filter(|s| s.parent != 0) {
                prop_assert!(ids.contains(&span.parent), "dangling parent: {:?}", span);
            }
            // One cascade child per raised event, each naming its raiser.
            let cascades: Vec<_> =
                t.spans.iter().filter(|s| s.name == "engine.cascade").collect();
            prop_assert_eq!(cascades.len(), chain_len, "one cascade span per raise");
            for c in &cascades {
                prop_assert!(
                    c.annotations
                        .iter()
                        .any(|a| a.key == "raised_by" && a.value.starts_with("chain")),
                    "cascade span missing raised_by: {:?}",
                    c
                );
            }
        }
        obs::set_trace_sampling(0);
    }

    /// Per-shard trace rings never exceed their configured bound, and
    /// sampling never drops fault traces: with a 1-in-N sampler that
    /// cannot realistically pick anything, degraded interactions are
    /// still retained.
    #[test]
    fn rings_stay_bounded_and_faults_are_never_dropped(
        cap in 1usize..5,
        total in 1usize..12,
    ) {
        let _g = lock();
        obs::reset();
        obs::set_enabled(true);
        obs::set_trace_ring_capacity(cap);

        // Fault traces survive an effectively-zero sampling rate.
        obs::set_trace_sampling(u64::MAX);
        for i in 0..total {
            let _root = obs::trace_root("test.request");
            if i % 2 == 0 {
                obs::trace_mark_fault();
            }
        }
        let retained = obs::recent_traces(64);
        prop_assert_eq!(
            retained.len(),
            total.div_ceil(2).min(cap),
            "every fault trace retained, up to the ring bound"
        );
        prop_assert!(retained.iter().all(|t| t.fault && !t.sampled));

        // Full sampling across shards still respects the bound.
        obs::set_trace_sampling(1);
        for shard in 0..3u64 {
            obs::set_shard(shard);
            for _ in 0..total {
                let _root = obs::trace_root("test.request");
            }
        }
        obs::set_shard(0);
        for (shard, len) in obs::shard_trace_counts() {
            prop_assert!(len <= cap, "shard {} ring over bound: {}", shard, len);
        }
        obs::set_trace_sampling(0);
    }
}

/// A faultsim storm through the real serving stack spikes the SLO burn
/// rate; quarantine ends the storm and the fast window recovers while
/// the slow window still remembers it.
#[test]
fn burn_rate_spikes_during_fault_storm_and_recovers_after_quarantine() {
    let _g = lock();
    obs::reset();
    obs::set_enabled(true);
    faultsim::reset();

    let server = demo_server(
        1,
        EngineConfig {
            fault_policy: FaultPolicy::FailClosed,
            quarantine_threshold: 3,
            ..EngineConfig::default()
        },
    );
    // An integrity rule whose callback trips the armed failpoint.
    {
        let mut writer = server.rule_base().session();
        writer
            .add_rule(Rule::integrity(
                "storm",
                EventPattern::db(DbEventKind::GetClass),
                std::sync::Arc::new(|_, _| Vec::new()),
            ))
            .unwrap();
    }
    let s = server.open_session(SessionContext::new("op", "planner", "pole_manager"));

    let mut slo = obs::slo::SloEngine::new(vec![obs::slo::SloSpec::dispatch_default()]);
    slo.observe(obs::snapshot(), 0.0);

    // Storm: every callback faults until the third consecutive fault
    // quarantines the rule.
    faultsim::arm(
        "engine.callback",
        activegis::Trigger::Always,
        activegis::FaultAction::Error,
    );
    let mut failures = 0;
    for _ in 0..5 {
        if server.dispatch_batch(s, vec![get_class()]).is_err() {
            failures += 1;
        }
    }
    assert_eq!(failures, 3, "quarantine stops the storm after 3 faults");
    slo.observe(obs::snapshot(), 1.0);
    let storm = slo.report();
    assert!(
        storm.slos[0].fast.burn_rate > 1.0 && storm.slos[0].slow.burn_rate > 1.0,
        "storm burns both windows: {}",
        storm.to_json()
    );
    assert!(storm.burning());
    assert!(storm.availability_breached());

    // Recovery: the rule is quarantined, traffic is clean again. The
    // 1s fast window (measured from the post-storm baseline) drains;
    // the 60s slow window still carries the storm.
    for _ in 0..20 {
        server.dispatch_batch(s, vec![get_class()]).unwrap();
    }
    slo.observe(obs::snapshot(), 2.5);
    let recovered = slo.report();
    assert!(
        recovered.slos[0].fast.burn_rate < 1.0,
        "fast window recovered after quarantine: {}",
        recovered.to_json()
    );
    assert!(
        recovered.slos[0].slow.burn_rate > 1.0,
        "slow window remembers the storm"
    );
    assert!(!recovered.burning(), "multi-window alert cleared");
    faultsim::reset();
}

/// Faulting requests are always traced, even when the sampler is
/// effectively off — through the real server path, not just the obs
/// unit API.
#[test]
fn fault_traces_survive_sampling_through_the_server() {
    let _g = lock();
    obs::reset();
    obs::set_enabled(true);
    faultsim::reset();
    obs::set_trace_sampling(u64::MAX);

    let server = demo_server(1, EngineConfig::default());
    {
        let mut writer = server.rule_base().session();
        writer
            .add_rule(Rule::integrity(
                "fragile",
                EventPattern::db(DbEventKind::GetClass),
                std::sync::Arc::new(|_, _| Vec::new()),
            ))
            .unwrap();
    }
    let s = server.open_session(SessionContext::new("op", "planner", "pole_manager"));

    // Clean request: unsampled, dropped.
    server.dispatch_batch(s, vec![get_class()]).unwrap();
    assert!(
        obs::recent_traces(8).is_empty(),
        "clean request not sampled"
    );

    // Faulting request (fail-open: outcome carries the fault record):
    // retained despite the sampler.
    faultsim::arm(
        "engine.callback",
        activegis::Trigger::Nth(1),
        activegis::FaultAction::Error,
    );
    let outcomes = server.dispatch_batch(s, vec![get_class()]).unwrap();
    assert!(!outcomes[0].faults.is_empty(), "fault recorded fail-open");
    let traces = obs::recent_traces(8);
    assert_eq!(traces.len(), 1, "fault trace retained");
    assert!(traces[0].fault && !traces[0].sampled);
    faultsim::reset();
    obs::set_trace_sampling(0);
}
