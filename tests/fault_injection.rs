//! Deterministic fault-injection harness (see `docs/robustness.md`).
//!
//! Drives the whole stack — dispatcher, engine, builder, geodb — under
//! armed failpoints and asserts the robustness contract:
//!
//! 1. **No panic escapes.** Injected panics at any failpoint are
//!    contained by the engine's callback boundary or the dispatcher's
//!    request boundary; a user interaction never unwinds the process.
//! 2. **Fail-open always yields a window.** With customization-path
//!    failpoints armed (`engine.callback`, `engine.cascade`,
//!    `builder.build`) and the default `FailOpen` policy, every
//!    Get_Schema / Get_Class / Get_Value interaction still produces a
//!    rendered window — degraded to the generic default presentation
//!    when necessary, exactly as the paper's always-available generic
//!    interface promises.
//! 3. **Engine state stays consistent.** After any fault schedule the
//!    deferred queue is empty, quarantines can be lifted, and the system
//!    serves clean interactions again once failpoints disarm.
//! 4. **Strategies agree under faults.** The indexed dispatch path and
//!    the linear oracle see the same fault schedule (same seeds, same
//!    hit order) and must produce identical outcomes, faults included.
//!
//! Everything here serializes on one mutex: the failpoint registry and
//! the metrics registry are process-global.

use std::sync::Arc;
use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;

use active::{
    DispatchStrategy, Engine, EngineConfig, Event, EventPattern, FaultPolicy, Rule, SessionContext,
};
use custlang::FIG6_PROGRAM;
use geodb::gen::TelecomConfig;
use geodb::query::DbEventKind;
use gisui::{paper_dispatcher, Dispatcher, Request, Response, SessionId};

/// Serialize tests (global failpoint + metrics registries) and silence
/// the default panic hook: injected panics are expected and would spam
/// the output with backtraces.
fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        std::panic::set_hook(Box::new(|info| {
            // Injected panics are expected noise; real harness failures
            // (proptest case reports, assertion text) still print.
            let msg = info.to_string();
            if msg.contains("proptest") || msg.contains("assert") {
                eprintln!("{msg}");
            }
        }))
    });
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    faultsim::reset();
    guard
}

// ---------------------------------------------------------------------------
// Shared fixtures

const CLASSES: [&str; 2] = ["Pole", "Duct"];

/// A dispatcher over the paper's demo database with the Fig. 6 program
/// installed plus one integrity rule whose callback raises a cascade —
/// so `engine.callback` and `engine.cascade` both have hosts to hit.
fn fault_dispatcher() -> (Dispatcher, Vec<u64>) {
    let mut d = paper_dispatcher(&TelecomConfig::small()).expect("demo db builds");
    d.install_program(FIG6_PROGRAM, "fig6").expect("fig6 ok");
    d.engine()
        .add_rule(Rule::integrity(
            "probe",
            EventPattern::Any,
            Arc::new(|e, _| match e {
                Event::Db(_) => vec![Event::external("audit")],
                _ => vec![],
            }),
        ))
        .expect("probe rule installs");
    let oids: Vec<u64> = d
        .snapshot()
        .get_class("phone_net", "Pole", false)
        .expect("poles exist")
        .iter()
        .map(|i| i.oid.0)
        .collect();
    (d, oids)
}

fn juliano(d: &mut Dispatcher) -> SessionId {
    d.open_session(SessionContext::new("juliano", "planner", "pole_manager"))
}

#[derive(Debug, Clone)]
enum Interaction {
    Schema,
    Class(usize),
    Value(usize),
}

fn request_for(it: &Interaction, oids: &[u64]) -> Request {
    match it {
        Interaction::Schema => Request::OpenSchema {
            schema: "phone_net".into(),
        },
        Interaction::Class(i) => Request::OpenClass {
            schema: "phone_net".into(),
            class: CLASSES[i % CLASSES.len()].into(),
        },
        Interaction::Value(i) => Request::OpenInstance {
            oid: oids[i % oids.len()],
        },
    }
}

fn arb_interaction() -> impl Strategy<Value = Interaction> {
    prop_oneof![
        Just(Interaction::Schema),
        (0usize..2).prop_map(Interaction::Class),
        (0usize..8).prop_map(Interaction::Value),
    ]
}

#[derive(Debug, Clone)]
struct FaultSpec {
    failpoint: usize,
    trigger: faultsim::Trigger,
    panic: bool,
}

impl FaultSpec {
    fn action(&self) -> faultsim::FaultAction {
        if self.panic {
            faultsim::FaultAction::Panic
        } else {
            faultsim::FaultAction::Error
        }
    }

    fn arm(&self, names: &[&str]) {
        faultsim::arm(
            names[self.failpoint % names.len()],
            self.trigger.clone(),
            self.action(),
        );
    }
}

fn arb_trigger() -> impl Strategy<Value = faultsim::Trigger> {
    prop_oneof![
        Just(faultsim::Trigger::Always),
        (1u32..10, any::<u64>()).prop_map(|(p, seed)| faultsim::Trigger::Probability {
            p: p as f64 / 10.0,
            seed,
        }),
        (1u64..5).prop_map(faultsim::Trigger::Nth),
    ]
}

fn arb_fault(n_failpoints: usize) -> impl Strategy<Value = FaultSpec> {
    (0..n_failpoints, arb_trigger(), any::<bool>()).prop_map(|(failpoint, trigger, panic)| {
        FaultSpec {
            failpoint,
            trigger,
            panic,
        }
    })
}

/// Run the interactions through the protocol boundary, requiring a
/// non-empty rendered window from every one.
fn expect_windows(
    d: &mut Dispatcher,
    sid: SessionId,
    interactions: &[Interaction],
    oids: &[u64],
) -> Result<(), TestCaseError> {
    for it in interactions {
        match d.handle_request(sid, request_for(it, oids)) {
            Response::Windows(ws) => {
                prop_assert!(!ws.is_empty(), "no window for {:?}", it);
                // Hidden windows (Fig. 6 hides the Schema window) render
                // empty by design; every visible one must have content.
                for w in ws.iter().filter(|w| w.visible) {
                    prop_assert!(!w.ascii.is_empty(), "unrendered window for {:?}", it);
                }
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "{it:?} produced no window: {other:?}"
                )))
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Property 1+2+3: containment, fail-open window guarantee, recovery

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Customization-path failpoints under the default fail-open policy:
    /// every interaction yields a rendered window, no panic escapes, and
    /// after disarming (and lifting quarantines) the system is clean.
    #[test]
    fn fail_open_always_yields_a_window(
        faults in prop::collection::vec(arb_fault(3), 1..4),
        interactions in prop::collection::vec(arb_interaction(), 1..8),
    ) {
        const NAMES: [&str; 3] = ["engine.callback", "engine.cascade", "builder.build"];
        let _g = serialized();
        let (mut d, oids) = fault_dispatcher();
        let sid = juliano(&mut d);
        for f in &faults {
            f.arm(&NAMES);
        }

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            expect_windows(&mut d, sid, &interactions, &oids)
        }));
        faultsim::reset();
        match outcome {
            Ok(inner) => inner?,
            Err(_) => return Err(TestCaseError::fail("panic escaped the request boundary")),
        }

        // Engine state is consistent: aborts rolled back any deferred
        // work, and with failpoints disarmed + quarantines lifted the
        // full customized interface serves again.
        prop_assert_eq!(d.engine().pending_deferred(), 0);
        let quarantined: Vec<String> = d
            .engine()
            .quarantined()
            .into_iter()
            .map(str::to_string)
            .collect();
        for rule in quarantined {
            d.engine().clear_quarantine(&rule).expect("rule exists");
        }
        let resp = d.handle_request(
            sid,
            Request::OpenClass { schema: "phone_net".into(), class: "Pole".into() },
        );
        match resp {
            Response::Windows(ws) => {
                prop_assert!(!ws.is_empty());
                // Juliano's Fig. 6 customization (the poleWidget slider)
                // is back once the faults clear.
                prop_assert!(ws[0].ascii.contains("O="), "customization restored:\n{}", ws[0].ascii);
            }
            other => return Err(TestCaseError::fail(format!("clean dispatch failed: {other:?}"))),
        }
    }

    /// All four failpoints (database queries included), error and panic
    /// actions, both policies: nothing ever unwinds past the protocol
    /// boundary, and the system recovers after the faults disarm.
    #[test]
    fn no_panic_escapes_any_interaction(
        faults in prop::collection::vec(arb_fault(4), 1..5),
        interactions in prop::collection::vec(arb_interaction(), 1..8),
        fail_closed in any::<bool>(),
    ) {
        const NAMES: [&str; 4] =
            ["engine.callback", "engine.cascade", "builder.build", "geodb.query"];
        let _g = serialized();
        let (mut d, oids) = fault_dispatcher();
        if fail_closed {
            d.engine().set_fault_policy(FaultPolicy::FailClosed);
        }
        let sid = juliano(&mut d);
        for f in &faults {
            f.arm(&NAMES);
        }

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for it in &interactions {
                // Any Response is acceptable here — Error included —
                // as long as nothing unwinds.
                let _ = d.handle_request(sid, request_for(it, &oids));
            }
        }));
        faultsim::reset();
        prop_assert!(outcome.is_ok(), "panic escaped the request boundary");

        // Recovery: disarmed, policy restored, quarantines lifted, the
        // dispatcher serves windows again.
        d.engine().set_fault_policy(FaultPolicy::FailOpen);
        let quarantined: Vec<String> = d
            .engine()
            .quarantined()
            .into_iter()
            .map(str::to_string)
            .collect();
        for rule in quarantined {
            d.engine().clear_quarantine(&rule).expect("rule exists");
        }
        expect_windows(&mut d, sid, &[Interaction::Schema], &oids)?;
    }
}

// ---------------------------------------------------------------------------
// Property 4: linear vs indexed agreement under identical fault schedules

#[derive(Debug, Clone)]
struct AgreementRule {
    cust: bool,
    pattern: usize,
    priority: i32,
    raises: bool,
}

fn arb_agreement_rule() -> impl Strategy<Value = AgreementRule> {
    (any::<bool>(), 0usize..3, -2i32..3, any::<bool>()).prop_map(
        |(cust, pattern, priority, raises)| AgreementRule {
            cust,
            pattern,
            priority,
            raises,
        },
    )
}

fn agreement_engine(strategy: DispatchStrategy, specs: &[AgreementRule]) -> Engine<usize> {
    let mut eng = Engine::with_config(EngineConfig {
        strategy,
        // The generator produces 1..8 rules — under the default hybrid
        // threshold every strategy would collapse to the direct scan.
        // Forcing the tiered path keeps the compiled tables (and the
        // discrimination index) actually under test.
        hybrid_linear_threshold: 0,
        ..Default::default()
    });
    for (i, spec) in specs.iter().enumerate() {
        let event = match spec.pattern {
            0 => EventPattern::db(DbEventKind::GetSchema),
            1 => EventPattern::db(DbEventKind::GetClass),
            _ => EventPattern::Any,
        };
        let rule = if spec.cust {
            Rule::customization(format!("r{i}"), event, active::ContextPattern::any(), i)
                .with_priority(spec.priority)
        } else {
            let raises = spec.raises;
            Rule::integrity(
                format!("r{i}"),
                event,
                Arc::new(move |e, _| {
                    if raises && matches!(e, Event::Db(_)) {
                        vec![Event::external("chain")]
                    } else {
                        vec![]
                    }
                }),
            )
            .with_priority(spec.priority)
        };
        eng.add_rule(rule).expect("unique names");
    }
    eng
}

fn arb_agreement_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        Just(Event::Db(geodb::query::DbEvent::GetSchema {
            schema: "phone_net".into()
        })),
        Just(Event::Db(geodb::query::DbEvent::GetClass {
            schema: "phone_net".into(),
            class: "Pole".into()
        })),
        Just(Event::external("tick")),
    ]
}

/// One strategy's full observable run: per-event outcome (success data or
/// error), rendered to comparable form.
fn agreement_run(
    strategy: DispatchStrategy,
    specs: &[AgreementRule],
    events: &[Event],
    schedule: &[FaultSpec],
) -> Vec<String> {
    const NAMES: [&str; 2] = ["engine.callback", "engine.cascade"];
    faultsim::reset();
    for f in schedule {
        f.arm(&NAMES);
    }
    let mut eng = agreement_engine(strategy, specs);
    let ctx = SessionContext::new("juliano", "planner", "pole_manager");
    let mut log = Vec::new();
    for event in events {
        match eng.dispatch(event.clone(), &ctx) {
            Ok(out) => log.push(format!(
                "ok cust={:?} fired={:?} faults={:?} n={}",
                out.customizations,
                out.fired_names(),
                out.faults,
                out.events_processed
            )),
            Err(e) => log.push(format!("err {e}")),
        }
    }
    log.push(format!("quarantined={:?}", eng.quarantined()));
    log.push(format!("rule_faults={}", eng.rule_faults()));
    faultsim::reset();
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The indexed dispatch path, the compiled tier and the linear
    /// oracle, fed the same seeded fault schedule, produce identical
    /// outcomes — fault records, quarantines and errors included.
    /// Neither the winner cache nor the compiled tables may let the
    /// paths diverge under faults (quarantine trips mid-run included).
    #[test]
    fn strategies_agree_under_identical_fault_schedules(
        specs in prop::collection::vec(arb_agreement_rule(), 1..8),
        events in prop::collection::vec(arb_agreement_event(), 1..12),
        schedule in prop::collection::vec(arb_fault(2), 1..3),
    ) {
        let _g = serialized();
        let indexed = agreement_run(DispatchStrategy::Indexed, &specs, &events, &schedule);
        let linear = agreement_run(DispatchStrategy::Linear, &specs, &events, &schedule);
        let compiled = agreement_run(DispatchStrategy::Compiled, &specs, &events, &schedule);
        prop_assert_eq!(&indexed, &linear);
        prop_assert_eq!(&compiled, &linear);
    }
}

// ---------------------------------------------------------------------------
// Deterministic checks: metrics/explanation visibility, fail-closed, CI sweep

#[test]
fn degradation_is_visible_in_metrics_and_explanation() {
    let _g = serialized();
    obs::reset();
    obs::set_enabled(true);
    let (mut d, _oids) = fault_dispatcher();
    let sid = juliano(&mut d);

    // Customized builds fail; callbacks fault until the probe rule
    // quarantines (default threshold 3).
    faultsim::arm(
        "builder.build",
        faultsim::Trigger::Always,
        faultsim::FaultAction::Error,
    );
    faultsim::arm(
        "engine.callback",
        faultsim::Trigger::Always,
        faultsim::FaultAction::Panic,
    );
    for _ in 0..4 {
        let resp = d.handle_request(
            sid,
            Request::OpenClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            },
        );
        assert!(matches!(resp, Response::Windows(ws) if !ws.is_empty()));
    }
    faultsim::reset();
    obs::set_enabled(false);

    let m = obs::snapshot();
    assert!(
        m.counter("ui.degraded_builds") >= 1,
        "degraded builds counted"
    );
    assert!(m.counter("engine.rule_faults") >= 3, "rule faults counted");
    assert!(
        m.counter("engine.quarantined_rules") >= 1,
        "quarantine counted"
    );
    assert_eq!(d.engine().quarantined(), vec!["probe"]);

    // The degradations are in the explanation stream too.
    let degraded: Vec<_> = d.explanation_log().degradations().collect();
    assert!(
        !degraded.is_empty(),
        "degradation recorded in explanation log"
    );
    assert!(degraded[0].rendered.contains("degraded"));
}

#[test]
fn fail_closed_surfaces_the_fault_to_the_protocol() {
    let _g = serialized();
    let (mut d, _oids) = fault_dispatcher();
    d.engine().set_fault_policy(FaultPolicy::FailClosed);
    let sid = juliano(&mut d);
    faultsim::arm(
        "engine.callback",
        faultsim::Trigger::Always,
        faultsim::FaultAction::Error,
    );
    let resp = d.handle_request(
        sid,
        Request::OpenSchema {
            schema: "phone_net".into(),
        },
    );
    faultsim::reset();
    let Response::Error { message } = resp else {
        panic!("fail-closed must abort, got {resp:?}");
    };
    assert!(
        message.contains("probe"),
        "names the faulty rule: {message}"
    );
    assert!(message.contains("faulted"), "{message}");
}

#[test]
fn transactional_dispatch_after_rule_fault_matches_fresh_engine() {
    // Satellite regression at the UI level: an aborted interaction under
    // fail-closed leaves the engine indistinguishable from one that
    // never saw the fault.
    let _g = serialized();
    let (mut d, _oids) = fault_dispatcher();
    d.engine().set_fault_policy(FaultPolicy::FailClosed);
    let sid = juliano(&mut d);
    faultsim::arm(
        "engine.callback",
        faultsim::Trigger::Nth(1),
        faultsim::FaultAction::Error,
    );
    let resp = d.handle_request(
        sid,
        Request::OpenSchema {
            schema: "phone_net".into(),
        },
    );
    assert!(matches!(resp, Response::Error { .. }));
    faultsim::reset();
    assert_eq!(d.engine().pending_deferred(), 0);

    // A fresh dispatcher that never faulted serves the same windows.
    let (mut fresh, _) = fault_dispatcher();
    fresh.engine().set_fault_policy(FaultPolicy::FailClosed);
    let fresh_sid = juliano(&mut fresh);
    let a = d.handle_request(
        sid,
        Request::OpenSchema {
            schema: "phone_net".into(),
        },
    );
    let b = fresh.handle_request(
        fresh_sid,
        Request::OpenSchema {
            schema: "phone_net".into(),
        },
    );
    let (Response::Windows(wa), Response::Windows(wb)) = (a, b) else {
        panic!("both dispatchers serve windows");
    };
    let render = |ws: &[gisui::WindowDescriptor]| {
        ws.iter()
            .map(|w| format!("{}:{}:{}", w.kind, w.title, w.ascii))
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&wa), render(&wb));
}

/// CI sweep entry point: a fixed seeded probabilistic schedule across
/// every failpoint, seed taken from `FAULT_SEED` (default 1). The CI
/// workflow runs this under three fixed seeds.
#[test]
fn seeded_fault_sweep() {
    let _g = serialized();
    let seed: u64 = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let (mut d, oids) = fault_dispatcher();
    let sid = juliano(&mut d);
    for (i, name) in faultsim::FAILPOINTS.iter().enumerate() {
        // Offset each failpoint's stream so they don't fire in lockstep;
        // database queries only error (a dead database has no interface
        // to degrade to), everything else alternates error/panic.
        let action = if *name == "geodb.query" || i % 2 == 0 {
            faultsim::FaultAction::Error
        } else {
            faultsim::FaultAction::Panic
        };
        faultsim::arm(
            name,
            faultsim::Trigger::Probability {
                p: 0.3,
                seed: seed.wrapping_add(i as u64),
            },
            action,
        );
    }
    let interactions: Vec<Interaction> = (0..20)
        .map(|i| match i % 3 {
            0 => Interaction::Schema,
            1 => Interaction::Class(i),
            _ => Interaction::Value(i),
        })
        .collect();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for it in &interactions {
            let _ = d.handle_request(sid, request_for(it, &oids));
        }
    }));
    faultsim::reset();
    assert!(outcome.is_ok(), "seed {seed}: panic escaped");

    // Recovery after the storm.
    let quarantined: Vec<String> = d
        .engine()
        .quarantined()
        .into_iter()
        .map(str::to_string)
        .collect();
    for rule in quarantined {
        d.engine().clear_quarantine(&rule).unwrap();
    }
    let resp = d.handle_request(
        sid,
        Request::OpenSchema {
            schema: "phone_net".into(),
        },
    );
    assert!(
        matches!(resp, Response::Windows(ws) if !ws.is_empty()),
        "seed {seed}: no recovery"
    );
}

// ---------------------------------------------------------------------------
// Threaded containment: faults in one session never poison another

/// A panicking rule scoped to one victim session, with concurrent
/// bystander sessions on the same rule base: every victim dispatch is
/// contained (fail-open), every bystander dispatch is clean, and the
/// shared quarantine counts are exact — the rule trips once, after
/// precisely `quarantine_threshold` consecutive faults.
#[test]
fn threaded_fault_is_contained_to_the_victim_session() {
    use active::ContextPattern;

    let _g = serialized();
    const BYSTANDERS: usize = 3;
    const VICTIM_DISPATCHES: usize = 10;
    const THRESHOLD: u32 = 3;

    let base = Engine::<usize>::with_config(EngineConfig {
        quarantine_threshold: THRESHOLD,
        ..Default::default()
    })
    .rule_base();
    let mut seed = base.session();
    // The panicking rule matches only the victim's event stream, so the
    // bystanders' clean dispatches never run it (a successful run would
    // reset its consecutive-fault counter and blur the exact counts).
    seed.add_rule(Rule::integrity(
        "boom",
        EventPattern::External {
            name: Some("victim_tick".into()),
        },
        Arc::new(|_, _| panic!("injected rule fault")),
    ))
    .expect("boom installs");
    seed.add_rule(Rule::customization(
        "good",
        EventPattern::Any,
        ContextPattern::any(),
        7usize,
    ))
    .expect("good installs");

    let victim_base = base.clone();
    let victim = std::thread::spawn(move || {
        let mut session = victim_base.session();
        let ctx = SessionContext::new("victim", "planner", "pole_manager");
        let mut faults_seen = 0u32;
        for _ in 0..VICTIM_DISPATCHES {
            let out = session
                .dispatch(Event::external("victim_tick"), &ctx)
                .expect("fail-open");
            // Fail-open still delivers the surviving customization.
            assert_eq!(out.customizations, vec![7usize]);
            for fault in &out.faults {
                assert_eq!(fault.rule, "boom");
                faults_seen += 1;
            }
        }
        faults_seen
    });

    let bystanders: Vec<_> = (0..BYSTANDERS)
        .map(|b| {
            let base = base.clone();
            std::thread::spawn(move || {
                let mut session = base.session();
                let ctx = SessionContext::new(format!("user{b}"), "planner", "pole_manager");
                for _ in 0..50 {
                    let out = session
                        .dispatch(Event::external("tick"), &ctx)
                        .expect("clean dispatch");
                    assert!(
                        out.faults.is_empty(),
                        "bystander saw a fault: {:?}",
                        out.faults
                    );
                    assert_eq!(out.customizations, vec![7usize]);
                }
            })
        })
        .collect();

    let victim_faults = victim.join().expect("victim thread completes");
    for b in bystanders {
        b.join().expect("bystander thread completes");
    }

    // Exact accounting: the victim faulted `THRESHOLD` times, the
    // circuit breaker tripped exactly once, and the shared base shows
    // the quarantine to every session.
    assert_eq!(victim_faults, THRESHOLD);
    assert_eq!(base.rule_faults(), THRESHOLD as u64);
    assert_eq!(base.quarantined_count(), 1);
    let mut check = base.session();
    check.sync();
    assert_eq!(check.quarantined(), vec!["boom"]);
    let health = check.rule_health("boom").expect("boom exists");
    assert_eq!(health.total_faults, THRESHOLD as u64);
    assert!(health.quarantined);

    // Recovery is shared too: lift the quarantine and the victim's
    // context dispatches cleanly again (the callback still panics, so
    // the breaker re-arms from zero — one more contained fault).
    check.clear_quarantine("boom").expect("boom exists");
    let out = check
        .dispatch(
            Event::external("victim_tick"),
            &SessionContext::new("victim", "planner", "pole_manager"),
        )
        .expect("fail-open after recovery");
    assert_eq!(out.faults.len(), 1);
    assert_eq!(base.rule_faults(), THRESHOLD as u64 + 1);
}

/// CI sweep entry point, threaded edition: the `seeded_fault_sweep`
/// schedule (seed from `FAULT_SEED`) over a `SessionServer`, with every
/// interaction fanned out across shard threads. No panic may escape a
/// shard, and after the storm every session serves windows again.
#[test]
fn threaded_fault_sweep() {
    let _g = serialized();
    let seed: u64 = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    const SHARDS: usize = 4;
    const CLIENTS: usize = 8;

    let base = Engine::<custlang::Customization>::new().rule_base();
    let db = geodb::gen::phone_net_db(&TelecomConfig::small())
        .expect("demo db builds")
        .0;
    let server = Arc::new(activegis::SessionServer::start(
        SHARDS,
        base,
        geodb::store::DbStore::new(db),
    ));
    server
        .install_program(FIG6_PROGRAM, "fig6")
        .expect("fig6 installs");
    // A cascading integrity rule gives `engine.callback` and
    // `engine.cascade` hosts to hit on every shard.
    server
        .rule_base()
        .session()
        .add_rule(Rule::integrity(
            "probe",
            EventPattern::Any,
            Arc::new(|e, _| match e {
                Event::Db(_) => vec![Event::external("audit")],
                _ => vec![],
            }),
        ))
        .expect("probe installs");

    // The engine-path failpoints fire on the shard threads themselves;
    // alternating error/panic actions exercise both containment paths.
    for (i, name) in ["engine.callback", "engine.cascade"].iter().enumerate() {
        let action = if i % 2 == 0 {
            faultsim::FaultAction::Error
        } else {
            faultsim::FaultAction::Panic
        };
        faultsim::arm(
            name,
            faultsim::Trigger::Probability {
                p: 0.3,
                seed: seed.wrapping_add(i as u64),
            },
            action,
        );
    }

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let session = server.open_session(SessionContext::new(
                    format!("user{c}"),
                    "planner",
                    "pole_manager",
                ));
                let events: Vec<geodb::query::DbEvent> = (0..25)
                    .map(|i| {
                        if i % 2 == 0 {
                            geodb::query::DbEvent::GetSchema {
                                schema: "phone_net".into(),
                            }
                        } else {
                            geodb::query::DbEvent::GetClass {
                                schema: "phone_net".into(),
                                class: CLASSES[i / 2 % 2].into(),
                            }
                        }
                    })
                    .collect();
                // Fail-open: a faulted rule degrades the outcome, it
                // never errors the batch or kills the shard.
                let outcomes = server
                    .dispatch_batch(session, events)
                    .expect("fail-open batch");
                assert_eq!(outcomes.len(), 25);
                session
            })
        })
        .collect();
    let sessions: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("seed {seed}: client thread survived"))
        .collect();
    faultsim::reset();

    // Recovery after the storm: quarantines lifted, every session —
    // whatever shard it lives on — dispatches cleanly again.
    let mut writer = server.rule_base().session();
    writer.sync();
    let quarantined: Vec<String> = writer.quarantined().iter().map(|s| s.to_string()).collect();
    for rule in &quarantined {
        writer.clear_quarantine(rule).expect("rule exists");
    }
    for session in sessions {
        let out = server
            .dispatch(
                session,
                geodb::query::DbEvent::GetClass {
                    schema: "phone_net".into(),
                    class: "Pole".into(),
                },
            )
            .expect("clean after recovery");
        assert!(out.faults.is_empty(), "seed {seed}: fault after recovery");
    }
}
