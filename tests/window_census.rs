//! Experiment C4: reproduce the scale claim of the paper's reference
//! implementation [14] — "a large gis user interface system (over 10000
//! lines of code and more than 100 distinct windows)" — by generating
//! 100+ structurally distinct windows from one generic builder.

use std::collections::HashSet;

use activegis::{ActiveGis, TelecomConfig};

/// Generate a customization program for one context: each context varies
/// schema mode, per-class presentation and instance-attribute visibility,
/// so windows differ structurally.
fn program_for(i: usize) -> String {
    let mode = ["default", "hierarchy"][i % 2];
    let format = ["pointFormat", "symbolFormat", "tableFormat", "default"][i % 4];
    let control = if i.is_multiple_of(3) {
        "control as poleWidget"
    } else {
        ""
    };
    let hide = if i.is_multiple_of(2) {
        "display attribute pole_location as Null"
    } else {
        "display attribute pole_picture as Null"
    };
    format!(
        "for user user{i} application census \
         schema phone_net display as {mode} \
         class Pole display {control} presentation as {format} \
           instances {hide}"
    )
}

#[test]
fn over_one_hundred_distinct_windows() {
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();

    let mut fingerprints: HashSet<String> = HashSet::new();
    let mut total_windows = 0usize;

    // 40 user contexts × (schema + class + instance windows), plus the
    // four default class windows, quickly exceeds 100 distinct windows.
    for i in 0..40 {
        gis.customize(&program_for(i), &format!("census{i}"))
            .unwrap();
        let sid = gis.login(&format!("user{i}"), "surveyor", "census");
        let opened = gis.browse_schema(sid, "phone_net").unwrap();
        total_windows += opened.len();
        for w in &opened {
            fingerprints.insert(format!(
                "u{i}|{}",
                gis.dispatcher().window(*w).unwrap().built.fingerprint()
            ));
        }
        let class_win = gis.browse_class(sid, "phone_net", "Pole").unwrap();
        total_windows += 1;
        fingerprints.insert(format!(
            "u{i}|{}",
            gis.dispatcher()
                .window(class_win)
                .unwrap()
                .built
                .fingerprint()
        ));

        let poles = gis
            .dispatcher()
            .snapshot()
            .get_class("phone_net", "Pole", false)
            .unwrap();
        let inst = gis.inspect(sid, poles[i % poles.len()].oid).unwrap();
        total_windows += 1;
        fingerprints.insert(format!(
            "u{i}|{}",
            gis.dispatcher().window(inst).unwrap().built.fingerprint()
        ));
    }

    assert!(
        total_windows > 100,
        "built only {total_windows} windows in the census"
    );
    assert!(
        fingerprints.len() > 100,
        "only {} distinct windows",
        fingerprints.len()
    );
}

/// All four default class windows of the phone_net schema render and
/// differ from each other (different classes → different windows).
#[test]
fn every_class_gets_its_own_window() {
    let mut gis = ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap();
    let sid = gis.login("maria", "operator", "browse");
    let mut fingerprints = HashSet::new();
    for class in ["Supplier", "Pole", "Duct", "District"] {
        let w = gis.browse_class(sid, "phone_net", class).unwrap();
        let managed = gis.dispatcher().window(w).unwrap();
        assert!(managed.built.widget_count() > 3);
        fingerprints.insert(managed.built.fingerprint());
    }
    assert_eq!(fingerprints.len(), 4);
}
