//! Rendering stability tests: with a fixed generator seed, the Fig. 4 and
//! Fig. 7 windows must render byte-identically across runs (determinism
//! is what makes the figures reproducible artifacts rather than
//! screenshots), and the SVG twin must stay structurally in sync with the
//! ASCII rendering.

use activegis::{ActiveGis, TelecomConfig, FIG6_PROGRAM};

fn demo() -> ActiveGis {
    ActiveGis::phone_net_demo(&TelecomConfig::small()).unwrap()
}

/// Build the three Fig. 4 windows and return their ASCII.
fn fig4_renders(gis: &mut ActiveGis) -> Vec<String> {
    let sid = gis.login("maria", "operator", "browse");
    let schema = gis.browse_schema(sid, "phone_net").unwrap()[0];
    let class = gis.browse_class(sid, "phone_net", "Pole").unwrap();
    let poles = gis
        .dispatcher()
        .snapshot()
        .get_class("phone_net", "Pole", false)
        .unwrap();
    let inst = gis.inspect(sid, poles[0].oid).unwrap();
    vec![
        gis.render(schema).unwrap(),
        gis.render(class).unwrap(),
        gis.render(inst).unwrap(),
    ]
}

#[test]
fn renders_are_deterministic_across_fresh_systems() {
    let a = fig4_renders(&mut demo());
    let b = fig4_renders(&mut demo());
    assert_eq!(a, b);
    // And non-trivial.
    for art in &a {
        assert!(art.lines().count() > 5);
    }
}

#[test]
fn customized_render_differs_from_default_in_expected_places() {
    let mut gis = demo();
    gis.customize(FIG6_PROGRAM, "fig6").unwrap();

    let guest = gis.login("guest", "visitor", "browse");
    let default_win = gis.browse_class(guest, "phone_net", "Pole").unwrap();
    let default_art = gis.render(default_win).unwrap();

    let juliano = gis.login("juliano", "planner", "pole_manager");
    let custom_win = gis.browse_class(juliano, "phone_net", "Pole").unwrap();
    let custom_art = gis.render(custom_win).unwrap();

    // Same window title and display panel...
    assert!(default_art.contains("Class: Pole"));
    assert!(custom_art.contains("Class: Pole"));
    // ...different control area and symbols.
    assert!(default_art.contains("[ Zoom ]") && !custom_art.contains("[ Zoom ]"));
    assert!(custom_art.contains("O=") && !default_art.contains("O="));
    assert!(default_art.contains('.') && custom_art.contains('o'));
}

#[test]
fn svg_and_ascii_stay_structurally_in_sync() {
    let mut gis = demo();
    let sid = gis.login("maria", "operator", "browse");
    let win = gis.browse_class(sid, "phone_net", "Pole").unwrap();
    let ascii = gis.render(win).unwrap();
    let svg = gis.render_svg(win).unwrap();

    // Every button label visible in ASCII appears as SVG text.
    for label in ["Zoom", "Select", "Close"] {
        assert!(ascii.contains(&format!("[ {label} ]")));
        assert!(svg.contains(label), "{label} missing from SVG");
    }
    // The pole count shown in ASCII matches the number of SVG circles.
    let poles = gis.dispatcher().snapshot().extent_size("phone_net", "Pole");
    let circles = svg.matches("<circle").count();
    assert_eq!(circles, poles);
    assert!(ascii.contains(&format!("instances: {poles}")));
}

#[test]
fn every_window_kind_renders_under_every_builtin_format() {
    let mut gis = demo();
    for (i, fmt) in [
        "default",
        "pointFormat",
        "lineFormat",
        "polygonFormat",
        "tableFormat",
        "symbolFormat",
    ]
    .iter()
    .enumerate()
    {
        let program = format!(
            "for user u{i} application fmt_check \
             schema phone_net display as default \
             class Pole display presentation as {fmt} \
             class Duct display presentation as {fmt} \
             class District display presentation as {fmt}"
        );
        gis.customize(&program, &format!("fmt{i}")).unwrap();
        let sid = gis.login(&format!("u{i}"), "tester", "fmt_check");
        for class in ["Pole", "Duct", "District"] {
            let win = gis.browse_class(sid, "phone_net", class).unwrap();
            let art = gis.render(win).unwrap();
            assert!(
                art.contains(&format!("Class: {class}")),
                "format {fmt} class {class}:\n{art}"
            );
            assert!(!gis.render_svg(win).unwrap().is_empty());
        }
    }
}

#[test]
fn deep_widget_nesting_renders_without_panics() {
    // Panels within panels within panels (the recursive relationship),
    // rendered at every depth.
    use activegis::{Library, WidgetTree};
    let lib = Library::with_kernel();
    let mut tree = WidgetTree::new(&lib, "Window", "w").unwrap();
    let mut parent = tree.root();
    for depth in 0..12 {
        parent = tree
            .add(&lib, parent, "Panel", format!("p{depth}"))
            .unwrap();
    }
    tree.add(&lib, parent, "Button", "leaf").unwrap();
    let art = uilib::render::ascii::render(&tree, &Default::default()).unwrap();
    assert!(art.contains("[  ]") || art.contains('['));
    let svg = uilib::render::svg::render(&tree, &Default::default()).unwrap();
    assert!(svg.matches("<rect").count() >= 13);
}
