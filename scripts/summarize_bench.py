#!/usr/bin/env python3
"""Summarize a `cargo bench --workspace` log into a markdown table.

Usage: python3 scripts/summarize_bench.py bench_output.txt
Parses Criterion "time:" lines (median of the triple) plus the bracketed
series the benches eprintln ([c1]..[c4]); prints markdown to stdout.
"""
import re
import sys


def main(path: str) -> None:
    lines = open(path, encoding="utf-8").read().splitlines()
    rows = []
    pending = None
    time_re = re.compile(
        r"time:\s+\[\S+ \S+ (?P<med>\S+) (?P<unit>\S+) \S+ \S+\]"
    )
    for line in lines:
        m = time_re.search(line)
        if m:
            name = line.split("time:")[0].strip() or pending or "?"
            rows.append((name, f"{m.group('med')} {m.group('unit')}"))
            pending = None
        elif line and not line.startswith(" ") and "time:" not in line:
            # Bench id on its own line (long names wrap).
            if re.match(r"^[A-Za-z0-9_/.:\- ]+$", line) and "/" in line:
                pending = line.strip()

    print("| benchmark | median |")
    print("|---|---|")
    for name, med in rows:
        print(f"| `{name}` | {med} |")

    print()
    for line in lines:
        if line.startswith("[c"):
            print(f"> {line}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt")
