#!/usr/bin/env bash
# Full verification gate: release build, tests, lints, formatting.
# Run from anywhere; operates on the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "All checks passed."
