#!/usr/bin/env bash
# Full verification gate: release build, tests, lints, formatting, and
# the perf/durability smoke gates. Run from anywhere; operates on the
# repository root.
#
#   scripts/check.sh           full gate (what CI runs)
#   scripts/check.sh --quick   inner-loop mode: tests + the gated bench
#                              smokes, skipping clippy/fmt and the
#                              seeded release crash sweep
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
elif [[ -n "${1:-}" ]]; then
  echo "usage: $0 [--quick]" >&2
  exit 2
fi

if [[ "$QUICK" == 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release --workspace
fi

echo "==> cargo test -q"
cargo test -q --workspace

if [[ "$QUICK" == 0 ]]; then
  echo "==> cargo clippy -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings

  echo "==> cargo fmt --check"
  cargo fmt --all --check
fi

echo "==> Dispatch smoke (c1_rule_selection, quick, compiled-tier + batch-lane gates)"
# Fails if the cold compiled walk is slower than the cold index walk at
# >= 1000 rules, or the batch lane is slower per event than the
# per-event loop at batch >= 16; rewrites BENCH_dispatch.json (quick
# rows, incl. the batch and hot_reload sections).
BENCH_QUICK=1 DISPATCH_GATE=1 cargo bench -p bench --bench c1_rule_selection

echo "==> SLO + WAL smoke (c5_throughput, quick)"
# Fails if the clean serving run breaches the availability SLO, any
# durable-write crash + recovery diverges from the acknowledged state,
# or the binary WAL codec loses its >= 2x size win over JSON; writes
# BENCH_throughput.json (tracing + slo + durability + wal_encoding
# sections) and BENCH_slo.json.
BENCH_QUICK=1 SLO_SMOKE=1 WAL_GATE=1 cargo bench -p bench --bench c5_throughput

echo "==> Replication smoke (c7_replication, quick, delta-size + promotion gates)"
# Fails if the average shipped delta frame exceeds 0.5x the full
# snapshot frame, or any killed-primary promotion loses an acknowledged
# durable epoch; writes BENCH_replication.json.
BENCH_QUICK=1 REPLICATION_GATE=1 cargo bench -p bench --bench c7_replication

if [[ "$QUICK" == 0 ]]; then
  echo "==> Crash recovery (seeded chains, release)"
  # The durable write path: WAL replay, torn tails, kill points between
  # append/fsync/publish. CI sweeps the same seeds.
  for seed in 7 1994 271828; do
    CRASH_SEED=$seed cargo test -q --release -p activegis --test crash_recovery
  done

  echo "==> Replication (seeded chains, release)"
  # Byte-identity under storms, bounded staleness, killed-primary
  # promotion read-your-writes. CI sweeps the same seeds.
  for seed in 7 1994 271828; do
    REPL_SEED=$seed cargo test -q --release -p activegis --test replication
  done
fi

echo "All checks passed."
