#!/usr/bin/env bash
# Full verification gate: release build, tests, lints, formatting.
# Run from anywhere; operates on the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> Dispatch smoke (c1_rule_selection, quick, compiled-tier gate)"
# Fails if the cold compiled walk is slower than the cold index walk at
# >= 1000 rules; rewrites BENCH_dispatch.json (quick rows).
BENCH_QUICK=1 DISPATCH_GATE=1 cargo bench -p bench --bench c1_rule_selection

echo "==> SLO + WAL smoke (c5_throughput, quick)"
# Fails if the clean serving run breaches the availability SLO or any
# durable-write crash + recovery diverges from the acknowledged state;
# writes BENCH_throughput.json (tracing + slo + durability sections)
# and BENCH_slo.json.
BENCH_QUICK=1 SLO_SMOKE=1 WAL_GATE=1 cargo bench -p bench --bench c5_throughput

echo "==> Crash recovery (seeded chains, release)"
# The durable write path: WAL replay, torn tails, kill points between
# append/fsync/publish. CI sweeps the same seeds.
for seed in 7 1994 271828; do
  CRASH_SEED=$seed cargo test -q --release -p activegis --test crash_recovery
done

echo "All checks passed."
