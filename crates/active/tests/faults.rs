//! Fault-containment tests for the rule engine.
//!
//! These live in their own test binary (separate process from the
//! crate's unit tests) because `faultsim`'s failpoint registry is
//! process-global: arming a failpoint here must never be visible to
//! unrelated engine tests running in parallel. Within this binary the
//! tests serialize on a mutex for the same reason.

use active::engine::CASCADE_PSEUDO_RULE;
use active::{
    Action, ActiveError, ContextPattern, Coupling, DispatchStrategy, Engine, EngineConfig, Event,
    EventPattern, FaultPolicy, Rule, RuleGroup, SessionContext,
};
use geodb::query::{DbEvent, DbEventKind};
use std::sync::Arc;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serialize tests (global failpoint registry) and silence the default
/// panic hook — injected callback panics are expected here and would
/// otherwise spam the test output with backtraces.
fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| std::panic::set_hook(Box::new(|_| {})));
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    faultsim::reset();
    guard
}

fn get_schema() -> Event {
    Event::Db(DbEvent::GetSchema {
        schema: "phone_net".into(),
    })
}

fn session() -> SessionContext {
    SessionContext::new("juliano", "planner", "pole_manager")
}

fn cust_rule(name: &str, payload: &'static str) -> Rule<&'static str> {
    Rule::customization(
        name,
        EventPattern::db(DbEventKind::GetSchema),
        ContextPattern::any(),
        payload,
    )
}

fn panicking_rule(name: &str) -> Rule<&'static str> {
    Rule::integrity(
        name,
        EventPattern::db(DbEventKind::GetSchema),
        Arc::new(|_, _| panic!("boom in callback")),
    )
}

#[test]
fn fail_open_contains_callback_panic_and_continues() {
    let _g = serialized();
    let mut eng: Engine<&str> = Engine::new();
    eng.add_rule(cust_rule("c", "payload")).unwrap();
    eng.add_rule(panicking_rule("bad")).unwrap();

    let out = eng.dispatch(get_schema(), &session()).unwrap();
    // The panic never escapes; the customization still applies.
    assert_eq!(out.customizations, vec!["payload"]);
    assert_eq!(out.faults.len(), 1);
    assert_eq!(out.faults[0].rule, "bad");
    assert!(out.faults[0].cause.contains("boom in callback"));
    assert_eq!(eng.rule_faults(), 1);
    assert_eq!(eng.rule_health("bad").unwrap().consecutive_faults, 1);
}

#[test]
fn injected_callback_error_is_reported_with_failpoint_name() {
    let _g = serialized();
    let _fp = faultsim::scoped(
        "engine.callback",
        faultsim::Trigger::Always,
        faultsim::FaultAction::Error,
    );
    let mut eng: Engine<&str> = Engine::new();
    eng.add_rule(cust_rule("c", "payload")).unwrap();
    eng.add_rule(Rule::integrity(
        "probe",
        EventPattern::db(DbEventKind::GetSchema),
        Arc::new(|_, _| vec![]),
    ))
    .unwrap();

    let out = eng.dispatch(get_schema(), &session()).unwrap();
    assert_eq!(out.customizations, vec!["payload"]);
    assert_eq!(out.faults.len(), 1);
    assert!(out.faults[0].cause.contains("engine.callback"));
}

#[test]
fn fail_closed_aborts_and_rolls_back_deferred_queue() {
    let _g = serialized();
    let cfg = EngineConfig {
        fault_policy: FaultPolicy::FailClosed,
        ..Default::default()
    };
    let mut eng: Engine<&str> = Engine::with_config(cfg);
    // Higher priority, so its deferred firing is queued before the
    // faulty rule fires — the abort must roll that queueing back.
    eng.add_rule(
        Rule::integrity(
            "audit",
            EventPattern::db(DbEventKind::GetSchema),
            Arc::new(|_, _| vec![]),
        )
        .with_coupling(Coupling::Deferred)
        .with_priority(10),
    )
    .unwrap();
    eng.add_rule(panicking_rule("bad")).unwrap();

    let err = eng.dispatch(get_schema(), &session()).unwrap_err();
    match err {
        ActiveError::RuleFault { rule, depth, cause } => {
            assert_eq!(rule, "bad");
            assert_eq!(depth, 0);
            assert!(cause.contains("boom in callback"));
        }
        other => panic!("expected RuleFault, got {other:?}"),
    }
    // Transactional: the aborted dispatch left no deferred debris.
    assert_eq!(eng.pending_deferred(), 0);
}

#[test]
fn quarantine_trips_after_threshold_and_can_be_cleared() {
    let _g = serialized();
    let cfg = EngineConfig {
        strategy: DispatchStrategy::Indexed,
        ..Default::default()
    };
    let mut eng: Engine<&str> = Engine::with_config(cfg);
    eng.add_rule(cust_rule("c", "payload")).unwrap();
    let calls = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let seen = calls.clone();
    eng.add_rule(Rule::integrity(
        "flaky",
        EventPattern::db(DbEventKind::GetSchema),
        Arc::new(move |_, _| {
            seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            panic!("flaky fault")
        }),
    ))
    .unwrap();

    // Default threshold is 3 consecutive faults.
    for _ in 0..3 {
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["payload"]);
    }
    assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 3);
    assert_eq!(eng.quarantined(), vec!["flaky"]);
    assert!(eng.rule_health("flaky").unwrap().quarantined);
    assert_eq!(eng.rule_faults(), 3);

    // Quarantined: the rule no longer matches; the callback stays cold
    // and the customized interface keeps working.
    let out = eng.dispatch(get_schema(), &session()).unwrap();
    assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 3);
    assert!(out.faults.is_empty());
    assert_eq!(out.customizations, vec!["payload"]);

    eng.clear_quarantine("flaky").unwrap();
    assert!(eng.quarantined().is_empty());
    let out = eng.dispatch(get_schema(), &session()).unwrap();
    assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 4);
    assert_eq!(out.faults.len(), 1);
    assert_eq!(out.customizations, vec!["payload"]);
}

#[test]
fn cascade_failpoint_fail_open_drops_event_fail_closed_aborts() {
    let _g = serialized();
    let raise_class = || Rule::<&'static str> {
        name: "raiser".into(),
        event: EventPattern::db(DbEventKind::GetSchema),
        context: ContextPattern::any(),
        guard: None,
        action: Arc::new(Action::Raise(vec![Event::Db(DbEvent::GetClass {
            schema: "phone_net".into(),
            class: "Pole".into(),
        })])),
        group: RuleGroup::Other,
        coupling: Coupling::Immediate,
        priority: 0,
        enabled: true,
    };
    let class_cust = || {
        Rule::customization(
            "r2",
            EventPattern::db(DbEventKind::GetClass),
            ContextPattern::any(),
            "class-cust",
        )
    };

    {
        let _fp = faultsim::scoped(
            "engine.cascade",
            faultsim::Trigger::Always,
            faultsim::FaultAction::Error,
        );
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(raise_class()).unwrap();
        eng.add_rule(class_cust()).unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        // The cascaded Get_Class event was dropped before matching.
        assert!(out.customizations.is_empty());
        assert_eq!(out.faults.len(), 1);
        assert_eq!(out.faults[0].rule, CASCADE_PSEUDO_RULE);
        assert_eq!(out.faults[0].depth, 1);
    }

    {
        let _fp = faultsim::scoped(
            "engine.cascade",
            faultsim::Trigger::Always,
            faultsim::FaultAction::Error,
        );
        let cfg = EngineConfig {
            fault_policy: FaultPolicy::FailClosed,
            ..Default::default()
        };
        let mut eng: Engine<&str> = Engine::with_config(cfg);
        eng.add_rule(raise_class()).unwrap();
        eng.add_rule(class_cust()).unwrap();
        let err = eng.dispatch(get_schema(), &session()).unwrap_err();
        assert!(
            matches!(err, ActiveError::RuleFault { ref rule, .. } if rule == CASCADE_PSEUDO_RULE)
        );
    }
}

#[test]
fn deferred_fault_is_contained_at_flush() {
    let _g = serialized();
    let mut eng: Engine<&str> = Engine::new();
    eng.add_rule(
        Rule::integrity(
            "deferred_bad",
            EventPattern::db(DbEventKind::GetSchema),
            Arc::new(|_, _| panic!("deferred boom")),
        )
        .with_coupling(Coupling::Deferred),
    )
    .unwrap();

    let out = eng.dispatch(get_schema(), &session()).unwrap();
    assert!(out.faults.is_empty());
    assert_eq!(eng.pending_deferred(), 1);

    let flushed = eng.flush_deferred().unwrap();
    assert_eq!(flushed.faults.len(), 1);
    assert_eq!(flushed.faults[0].rule, "deferred_bad");
    assert!(flushed.faults[0].cause.contains("deferred boom"));
    assert_eq!(eng.rule_faults(), 1);
}

/// Regression (satellite): a mid-cascade `CascadeOverflow` must leave
/// the deferred queue, rules-generation counter and winner cache in a
/// state where the next dispatch behaves exactly like a fresh engine.
#[test]
fn cascade_overflow_leaves_consistent_state() {
    let _g = serialized();
    let build = || {
        let cfg = EngineConfig {
            strategy: DispatchStrategy::Indexed,
            ..Default::default()
        };
        let mut eng: Engine<&str> = Engine::with_config(cfg);
        eng.add_rule(Rule {
            name: "loop".into(),
            event: EventPattern::External {
                name: Some("ping".into()),
            },
            context: ContextPattern::any(),
            guard: None,
            action: Arc::new(Action::Raise(vec![Event::external("ping")])),
            group: RuleGroup::Other,
            coupling: Coupling::Immediate,
            priority: 0,
            enabled: true,
        })
        .unwrap();
        // A deferred rule that fires on every ping: the overflow must
        // roll back every firing it queued.
        eng.add_rule(
            Rule::integrity(
                "audit",
                EventPattern::External {
                    name: Some("ping".into()),
                },
                Arc::new(|_, _| vec![]),
            )
            .with_coupling(Coupling::Deferred),
        )
        .unwrap();
        eng.add_rule(cust_rule("c", "payload")).unwrap();
        eng
    };

    let mut eng = build();
    let generation_before = eng.rules_generation();
    let err = eng
        .dispatch(Event::external("ping"), &session())
        .unwrap_err();
    assert!(matches!(err, ActiveError::CascadeOverflow { .. }));
    assert_eq!(eng.pending_deferred(), 0, "deferred queue not rolled back");
    assert_eq!(eng.rules_generation(), generation_before);

    // The follow-up dispatch must be indistinguishable from the same
    // dispatch on a fresh, never-aborted engine.
    let mut fresh = build();
    let after = eng.dispatch(get_schema(), &session()).unwrap();
    let expected = fresh.dispatch(get_schema(), &session()).unwrap();
    assert_eq!(after.customizations, expected.customizations);
    assert_eq!(after.fired, expected.fired);
    assert_eq!(after.events_processed, expected.events_processed);
    assert_eq!(eng.pending_deferred(), fresh.pending_deferred());
}
