//! Application contexts.
//!
//! The paper restricts rule conditions to "checking a given application
//! context … the tuple `<user class, application domain>`, where user
//! class and application domain belong to well defined partitions created
//! by the application designer", extensible to "other contextual data
//! (e.g., geographic scale, time framework)". A [`SessionContext`] is the
//! concrete environment of a session; a [`ContextPattern`] is the
//! condition part of a rule, matching a set of sessions.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Concrete context of a running session.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SessionContext {
    /// The individual user (e.g. `juliano`).
    pub user: String,
    /// The user category/stereotype the designer assigned (e.g. `planner`).
    pub category: String,
    /// The application domain (e.g. `pole_manager`).
    pub application: String,
    /// Extension dimensions (`scale`, `time`, `region`, …).
    pub extras: BTreeMap<String, String>,
}

impl SessionContext {
    pub fn new(
        user: impl Into<String>,
        category: impl Into<String>,
        application: impl Into<String>,
    ) -> SessionContext {
        SessionContext {
            user: user.into(),
            category: category.into(),
            application: application.into(),
            extras: BTreeMap::new(),
        }
    }

    /// Add an extension dimension (geographic scale, time frame, …).
    pub fn with_extra(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.extras.insert(key.into(), value.into());
        self
    }
}

impl std::fmt::Display for SessionContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "<{}, {}, {}>",
            self.user, self.category, self.application
        )
    }
}

/// The condition part of a customization rule: a partial context.
///
/// An unset field matches anything; a set field must match exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ContextPattern {
    pub user: Option<String>,
    pub category: Option<String>,
    pub application: Option<String>,
    /// Required extension dimensions.
    pub extras: BTreeMap<String, String>,
}

impl ContextPattern {
    /// The pattern matching every session — the "generic users" rule.
    pub fn any() -> ContextPattern {
        ContextPattern::default()
    }

    pub fn for_user(user: impl Into<String>) -> ContextPattern {
        ContextPattern {
            user: Some(user.into()),
            ..Default::default()
        }
    }

    pub fn for_category(category: impl Into<String>) -> ContextPattern {
        ContextPattern {
            category: Some(category.into()),
            ..Default::default()
        }
    }

    pub fn for_application(application: impl Into<String>) -> ContextPattern {
        ContextPattern {
            application: Some(application.into()),
            ..Default::default()
        }
    }

    pub fn user(mut self, user: impl Into<String>) -> Self {
        self.user = Some(user.into());
        self
    }

    pub fn category(mut self, category: impl Into<String>) -> Self {
        self.category = Some(category.into());
        self
    }

    pub fn application(mut self, application: impl Into<String>) -> Self {
        self.application = Some(application.into());
        self
    }

    pub fn extra(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.extras.insert(key.into(), value.into());
        self
    }

    /// Does a session satisfy this pattern?
    pub fn matches(&self, ctx: &SessionContext) -> bool {
        self.user.as_deref().is_none_or(|u| u == ctx.user)
            && self.category.as_deref().is_none_or(|c| c == ctx.category)
            && self
                .application
                .as_deref()
                .is_none_or(|a| a == ctx.application)
            && self
                .extras
                .iter()
                .all(|(k, v)| ctx.extras.get(k) == Some(v))
    }

    /// Specificity score for the paper's conflict resolution: "the highest
    /// priority for the most specific rule, that is, the rule whose
    /// condition (context) part is more restrictive. For instance … a rule
    /// for generic users, for a particular category of users, and for a
    /// particular user within the category."
    ///
    /// `user` dominates `category`, which dominates `application`; each
    /// extension dimension adds one point below those.
    pub fn specificity(&self) -> u32 {
        let mut s = 0;
        if self.user.is_some() {
            s += 100;
        }
        if self.category.is_some() {
            s += 50;
        }
        if self.application.is_some() {
            s += 25;
        }
        s + self.extras.len() as u32
    }
}

impl std::fmt::Display for ContextPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let part = |o: &Option<String>| o.clone().unwrap_or_else(|| "*".into());
        write!(
            f,
            "<{}, {}, {}>",
            part(&self.user),
            part(&self.category),
            part(&self.application)
        )?;
        for (k, v) in &self.extras {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> SessionContext {
        SessionContext::new("juliano", "planner", "pole_manager").with_extra("scale", "1:1000")
    }

    #[test]
    fn any_matches_everything() {
        assert!(ContextPattern::any().matches(&session()));
        assert!(ContextPattern::any().matches(&SessionContext::default()));
    }

    #[test]
    fn bound_fields_must_match() {
        let ctx = session();
        assert!(ContextPattern::for_user("juliano").matches(&ctx));
        assert!(!ContextPattern::for_user("claudia").matches(&ctx));
        assert!(ContextPattern::for_category("planner")
            .application("pole_manager")
            .matches(&ctx));
        assert!(!ContextPattern::for_category("planner")
            .application("env_monitor")
            .matches(&ctx));
    }

    #[test]
    fn extras_must_match() {
        let ctx = session();
        assert!(ContextPattern::any().extra("scale", "1:1000").matches(&ctx));
        assert!(!ContextPattern::any().extra("scale", "1:500").matches(&ctx));
        assert!(!ContextPattern::any().extra("time", "1997").matches(&ctx));
    }

    #[test]
    fn specificity_orders_generic_category_user() {
        let generic = ContextPattern::any();
        let app = ContextPattern::for_application("pole_manager");
        let cat = ContextPattern::for_category("planner").application("pole_manager");
        let user = ContextPattern::for_user("juliano").application("pole_manager");
        let full = ContextPattern::for_user("juliano")
            .category("planner")
            .application("pole_manager");
        assert!(generic.specificity() < app.specificity());
        assert!(app.specificity() < cat.specificity());
        assert!(cat.specificity() < user.specificity());
        assert!(user.specificity() < full.specificity());
    }

    #[test]
    fn user_dominates_category_and_extras() {
        let by_user = ContextPattern::for_user("juliano");
        let by_cat_and_app = ContextPattern::for_category("planner")
            .application("pole_manager")
            .extra("scale", "1:1000");
        assert!(by_user.specificity() > by_cat_and_app.specificity());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            ContextPattern::for_user("juliano").to_string(),
            "<juliano, *, *>"
        );
        assert_eq!(session().to_string(), "<juliano, planner, pole_manager>");
    }
}
