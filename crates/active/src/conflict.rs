//! Static rule-set analysis.
//!
//! The paper notes "conflicts can appear with the use of an active
//! mechanism, since rules can trigger other conflicting rules", and argues
//! its customization rules are conflict-free because their actions only
//! fetch presentations. This module checks that argument mechanically:
//! it reports *ambiguities* (two equally specific customization rules that
//! can match the same event in the same context) and *potential cycles*
//! in the raise-graph of non-customization rules.

use std::collections::{HashMap, HashSet};

use crate::event::EventPattern;
use crate::rule::{Action, Rule, RuleGroup};

/// A detected problem in a rule set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// Two customization rules with overlapping events, overlapping
    /// contexts and identical specificity+priority: selection between
    /// them falls back to registration order, which is fragile.
    Ambiguity { a: String, b: String },
    /// A chain of Raise actions that can revisit a rule.
    PossibleCycle { path: Vec<String> },
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::Ambiguity { a, b } => {
                write!(f, "ambiguous customization rules `{a}` and `{b}`")
            }
            Finding::PossibleCycle { path } => {
                write!(f, "possible rule cycle: {}", path.join(" -> "))
            }
        }
    }
}

/// Can two event patterns match a common event? (Conservative: errs on
/// the side of overlap.)
fn events_overlap(a: &EventPattern, b: &EventPattern) -> bool {
    use EventPattern::*;
    match (a, b) {
        (Any, _) | (_, Any) => true,
        (
            Db {
                kind: k1,
                schema: s1,
                class: c1,
            },
            Db {
                kind: k2,
                schema: s2,
                class: c2,
            },
        ) => {
            let opt_overlap = |x: &Option<String>, y: &Option<String>| match (x, y) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            };
            (match (k1, k2) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }) && opt_overlap(s1, s2)
                && opt_overlap(c1, c2)
        }
        (
            Interface {
                name: n1,
                source_prefix: p1,
            },
            Interface {
                name: n2,
                source_prefix: p2,
            },
        ) => {
            (match (n1, n2) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }) && match (p1, p2) {
                (Some(a), Some(b)) => a.starts_with(b.as_str()) || b.starts_with(a.as_str()),
                _ => true,
            }
        }
        (External { name: n1 }, External { name: n2 }) => match (n1, n2) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        },
        _ => false,
    }
}

/// Can two context patterns match a common session?
fn contexts_overlap<P>(a: &Rule<P>, b: &Rule<P>) -> bool {
    let opt = |x: &Option<String>, y: &Option<String>| match (x, y) {
        (Some(a), Some(b)) => a == b,
        _ => true,
    };
    opt(&a.context.user, &b.context.user)
        && opt(&a.context.category, &b.context.category)
        && opt(&a.context.application, &b.context.application)
        && a.context
            .extras
            .iter()
            .all(|(k, v)| b.context.extras.get(k).is_none_or(|w| w == v))
}

/// Which event kinds an action can raise (descriptions of raised events).
fn raised_events<P>(action: &Action<P>) -> Vec<crate::event::Event> {
    match action {
        Action::Raise(es) => es.clone(),
        Action::Compound(actions) => actions.iter().flat_map(raised_events).collect(),
        // Callbacks may raise anything; treated as opaque (not analyzable).
        _ => Vec::new(),
    }
}

/// Analyze a rule set.
pub fn analyze<P>(rules: &[Rule<P>]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // 1. Ambiguities among customization rules.
    let cust: Vec<&Rule<P>> = rules
        .iter()
        .filter(|r| r.group == RuleGroup::Customization && r.enabled)
        .collect();
    for i in 0..cust.len() {
        for j in (i + 1)..cust.len() {
            let (a, b) = (cust[i], cust[j]);
            if a.specificity() == b.specificity()
                && a.priority == b.priority
                && events_overlap(&a.event, &b.event)
                && contexts_overlap(a, b)
            {
                findings.push(Finding::Ambiguity {
                    a: a.name.clone(),
                    b: b.name.clone(),
                });
            }
        }
    }

    // 2. Cycles in the raise-graph: edge r -> s when r raises an event
    //    that s's pattern matches.
    let mut edges: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, r) in rules.iter().enumerate() {
        for ev in raised_events(&r.action) {
            for (j, s) in rules.iter().enumerate() {
                if s.enabled && s.event.matches(&ev) {
                    edges.entry(i).or_default().push(j);
                }
            }
        }
    }
    // DFS cycle detection.
    fn dfs<P>(
        node: usize,
        edges: &HashMap<usize, Vec<usize>>,
        rules: &[Rule<P>],
        stack: &mut Vec<usize>,
        on_stack: &mut HashSet<usize>,
        done: &mut HashSet<usize>,
        findings: &mut Vec<Finding>,
    ) {
        if done.contains(&node) {
            return;
        }
        stack.push(node);
        on_stack.insert(node);
        for &next in edges.get(&node).map(|v| v.as_slice()).unwrap_or(&[]) {
            if on_stack.contains(&next) {
                let start = stack.iter().position(|&n| n == next).unwrap_or(0);
                let mut path: Vec<String> = stack[start..]
                    .iter()
                    .map(|&n| rules[n].name.clone())
                    .collect();
                path.push(rules[next].name.clone());
                findings.push(Finding::PossibleCycle { path });
            } else {
                dfs(next, edges, rules, stack, on_stack, done, findings);
            }
        }
        stack.pop();
        on_stack.remove(&node);
        done.insert(node);
    }
    let mut done = HashSet::new();
    for i in 0..rules.len() {
        dfs(
            i,
            &edges,
            rules,
            &mut Vec::new(),
            &mut HashSet::new(),
            &mut done,
            &mut findings,
        );
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextPattern;
    use crate::event::Event;
    use geodb::query::DbEventKind;
    use std::sync::Arc;

    fn cust(name: &str, event: EventPattern, ctx: ContextPattern) -> Rule<&'static str> {
        Rule::customization(name, event, ctx, "p")
    }

    #[test]
    fn detects_ambiguous_twins() {
        let rules = vec![
            cust(
                "a",
                EventPattern::db(DbEventKind::GetSchema),
                ContextPattern::for_user("juliano"),
            ),
            cust(
                "b",
                EventPattern::db(DbEventKind::GetSchema),
                ContextPattern::for_user("juliano"),
            ),
        ];
        let findings = analyze(&rules);
        assert_eq!(findings.len(), 1);
        assert!(matches!(&findings[0], Finding::Ambiguity { a, b } if a == "a" && b == "b"));
    }

    #[test]
    fn different_specificity_is_not_ambiguous() {
        let rules = vec![
            cust(
                "generic",
                EventPattern::db(DbEventKind::GetSchema),
                ContextPattern::any(),
            ),
            cust(
                "specific",
                EventPattern::db(DbEventKind::GetSchema),
                ContextPattern::for_user("juliano"),
            ),
        ];
        assert!(analyze(&rules).is_empty());
    }

    #[test]
    fn disjoint_contexts_are_not_ambiguous() {
        let rules = vec![
            cust(
                "a",
                EventPattern::db(DbEventKind::GetSchema),
                ContextPattern::for_user("juliano"),
            ),
            cust(
                "b",
                EventPattern::db(DbEventKind::GetSchema),
                ContextPattern::for_user("claudia"),
            ),
        ];
        assert!(analyze(&rules).is_empty());
    }

    #[test]
    fn priority_disambiguates() {
        let rules = vec![
            cust(
                "a",
                EventPattern::db(DbEventKind::GetSchema),
                ContextPattern::any(),
            )
            .with_priority(1),
            cust(
                "b",
                EventPattern::db(DbEventKind::GetSchema),
                ContextPattern::any(),
            )
            .with_priority(2),
        ];
        assert!(analyze(&rules).is_empty());
    }

    #[test]
    fn detects_raise_cycles() {
        let ping_pong: Vec<Rule<&str>> = vec![
            Rule {
                name: "ping".into(),
                event: EventPattern::External {
                    name: Some("a".into()),
                },
                context: ContextPattern::any(),
                guard: None,
                action: Arc::new(Action::Raise(vec![Event::external("b")])),
                group: RuleGroup::Other,
                coupling: crate::rule::Coupling::Immediate,
                priority: 0,
                enabled: true,
            },
            Rule {
                name: "pong".into(),
                event: EventPattern::External {
                    name: Some("b".into()),
                },
                context: ContextPattern::any(),
                guard: None,
                action: Arc::new(Action::Raise(vec![Event::external("a")])),
                group: RuleGroup::Other,
                coupling: crate::rule::Coupling::Immediate,
                priority: 0,
                enabled: true,
            },
        ];
        let findings = analyze(&ping_pong);
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::PossibleCycle { .. })));
    }

    #[test]
    fn linear_chains_are_fine() {
        let chain: Vec<Rule<&str>> = vec![
            Rule {
                name: "first".into(),
                event: EventPattern::External {
                    name: Some("a".into()),
                },
                context: ContextPattern::any(),
                guard: None,
                action: Arc::new(Action::Raise(vec![Event::external("b")])),
                group: RuleGroup::Other,
                coupling: crate::rule::Coupling::Immediate,
                priority: 0,
                enabled: true,
            },
            cust(
                "second",
                EventPattern::External {
                    name: Some("b".into()),
                },
                ContextPattern::any(),
            ),
        ];
        assert!(analyze(&chain).is_empty());
    }

    #[test]
    fn paper_claim_customization_rules_cannot_cycle() {
        // "the action of a rule is limited to getting a customization for
        // an interface object" — Customize actions raise nothing, so any
        // pure-customization rule set is cycle-free by construction.
        let rules: Vec<Rule<&str>> = (0..20)
            .map(|i| {
                cust(
                    &format!("r{i}"),
                    EventPattern::db(DbEventKind::GetClass),
                    ContextPattern::for_user(format!("u{i}")),
                )
            })
            .collect();
        let findings = analyze(&rules);
        assert!(!findings
            .iter()
            .any(|f| matches!(f, Finding::PossibleCycle { .. })));
    }
}
