//! The rule engine: registration, selection, execution and cascading.
//!
//! Execution model (paper Section 3.3): "it is possible to have a set of
//! customization rules activated by an event, one for each context. In our
//! execution model, only one rule is selected for execution — the one
//! which has the highest priority. We define the highest priority for the
//! most specific rule." Non-customization rules (integrity maintenance
//! etc.) all fire, in priority order. Actions may raise further events;
//! cascades are bounded by a configurable depth.

use std::collections::{HashMap, VecDeque};

use crate::context::SessionContext;
use crate::event::Event;
use crate::rule::{Action, Coupling, Rule, RuleGroup};
use crate::trace::{Trace, TraceEntry};

/// How customization rules are selected when several match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// The paper's policy: only the single most specific rule fires.
    MostSpecific,
    /// Ablation baseline: every matching customization rule fires.
    FireAll,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    pub selection: SelectionPolicy,
    /// Maximum cascade depth before the engine aborts the dispatch.
    pub max_cascade_depth: usize,
    /// Record traces (disable in tight benchmark loops).
    pub tracing: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            selection: SelectionPolicy::MostSpecific,
            max_cascade_depth: 16,
            tracing: true,
        }
    }
}

/// Errors from rule registration and dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActiveError {
    DuplicateRule(String),
    UnknownRule(String),
    /// A cascade exceeded `max_cascade_depth` — almost always a rule cycle.
    CascadeOverflow {
        depth: usize,
        event: String,
    },
}

impl std::fmt::Display for ActiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActiveError::DuplicateRule(n) => write!(f, "duplicate rule `{n}`"),
            ActiveError::UnknownRule(n) => write!(f, "unknown rule `{n}`"),
            ActiveError::CascadeOverflow { depth, event } => {
                write!(
                    f,
                    "cascade overflow at depth {depth} on {event} (rule cycle?)"
                )
            }
        }
    }
}

impl std::error::Error for ActiveError {}

/// Everything a dispatch produced.
#[derive(Debug, Clone)]
pub struct Outcome<P> {
    /// Customization payloads, in firing order.
    pub customizations: Vec<P>,
    /// Names of every rule that fired.
    pub fired: Vec<String>,
    /// Total events processed (1 + cascaded).
    pub events_processed: usize,
    /// The execution trace (empty when tracing is off).
    pub trace: Trace,
}

impl<P> Outcome<P> {
    /// The single selected customization, if any (the common case under
    /// `MostSpecific`).
    pub fn customization(&self) -> Option<&P> {
        self.customizations.first()
    }
}

/// The active mechanism.
pub struct Engine<P> {
    rules: Vec<Rule<P>>,
    by_name: HashMap<String, usize>,
    config: EngineConfig,
    /// Monotonic registration counter used as the final tiebreaker.
    dispatch_count: u64,
    /// Firings queued by rules with deferred coupling.
    deferred: Vec<(String, Action<P>, Event, SessionContext)>,
}

impl<P: Clone> Default for Engine<P> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<P: Clone> Engine<P> {
    pub fn new() -> Engine<P> {
        Engine::with_config(EngineConfig::default())
    }

    pub fn with_config(config: EngineConfig) -> Engine<P> {
        Engine {
            rules: Vec::new(),
            by_name: HashMap::new(),
            config,
            dispatch_count: 0,
            deferred: Vec::new(),
        }
    }

    pub fn config(&self) -> EngineConfig {
        self.config
    }

    pub fn set_selection(&mut self, policy: SelectionPolicy) {
        self.config.selection = policy;
    }

    /// Number of dispatches served (telemetry for benches).
    pub fn dispatches(&self) -> u64 {
        self.dispatch_count
    }

    // -- rule management ----------------------------------------------------

    /// Register a rule; names must be unique.
    pub fn add_rule(&mut self, rule: Rule<P>) -> Result<(), ActiveError> {
        if self.by_name.contains_key(&rule.name) {
            return Err(ActiveError::DuplicateRule(rule.name.clone()));
        }
        self.by_name.insert(rule.name.clone(), self.rules.len());
        self.rules.push(rule);
        Ok(())
    }

    /// Register many rules (e.g. the output of the customization compiler).
    pub fn add_rules(
        &mut self,
        rules: impl IntoIterator<Item = Rule<P>>,
    ) -> Result<(), ActiveError> {
        for r in rules {
            self.add_rule(r)?;
        }
        Ok(())
    }

    /// Remove a rule by name.
    pub fn remove_rule(&mut self, name: &str) -> Result<Rule<P>, ActiveError> {
        let idx = *self
            .by_name
            .get(name)
            .ok_or_else(|| ActiveError::UnknownRule(name.to_string()))?;
        let rule = self.rules.remove(idx);
        self.by_name.remove(name);
        // Reindex.
        for (i, r) in self.rules.iter().enumerate() {
            self.by_name.insert(r.name.clone(), i);
        }
        Ok(rule)
    }

    /// Enable or disable a rule in place.
    pub fn set_enabled(&mut self, name: &str, enabled: bool) -> Result<(), ActiveError> {
        let idx = *self
            .by_name
            .get(name)
            .ok_or_else(|| ActiveError::UnknownRule(name.to_string()))?;
        self.rules[idx].enabled = enabled;
        Ok(())
    }

    pub fn rule(&self, name: &str) -> Option<&Rule<P>> {
        self.by_name.get(name).map(|&i| &self.rules[i])
    }

    pub fn rules(&self) -> &[Rule<P>] {
        &self.rules
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Drop every rule whose name starts with `prefix`; returns how many
    /// were removed. (Recompiling a customization program replaces its
    /// rule family this way.)
    pub fn remove_rules_with_prefix(&mut self, prefix: &str) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| !r.name.starts_with(prefix));
        self.by_name.clear();
        for (i, r) in self.rules.iter().enumerate() {
            self.by_name.insert(r.name.clone(), i);
        }
        before - self.rules.len()
    }

    // -- dispatch -----------------------------------------------------------

    /// Feed one event through the rule set for a session context.
    pub fn dispatch(
        &mut self,
        event: Event,
        ctx: &SessionContext,
    ) -> Result<Outcome<P>, ActiveError> {
        let _span = obs::span("engine.dispatch");
        self.dispatch_count += 1;
        // Per-dispatch tallies, flushed to the metrics registry once at
        // the end so the hot loop costs plain integer adds.
        let mut m_considered = 0u64;
        let mut m_matched = 0u64;
        let mut m_fired = 0u64;
        let mut m_shadowed = 0u64;
        let mut m_max_depth = 0usize;
        let mut outcome = Outcome {
            customizations: Vec::new(),
            fired: Vec::new(),
            events_processed: 0,
            trace: Trace::default(),
        };
        let mut queue: VecDeque<(usize, Event)> = VecDeque::new();
        queue.push_back((0, event));

        while let Some((depth, event)) = queue.pop_front() {
            if depth > self.config.max_cascade_depth {
                return Err(ActiveError::CascadeOverflow {
                    depth,
                    event: event.describe(),
                });
            }
            outcome.events_processed += 1;
            m_considered += self.rules.len() as u64;
            m_max_depth = m_max_depth.max(depth);

            // Collect matching rule indexes.
            let matched: Vec<usize> = self
                .rules
                .iter()
                .enumerate()
                .filter(|(_, r)| r.matches(&event, ctx))
                .map(|(i, _)| i)
                .collect();

            // Partition by group.
            let (cust, other): (Vec<usize>, Vec<usize>) = matched
                .iter()
                .partition(|&&i| self.rules[i].group == RuleGroup::Customization);

            // Customization selection.
            let mut to_fire: Vec<usize> = Vec::new();
            let mut shadowed: Vec<usize> = Vec::new();
            match self.config.selection {
                SelectionPolicy::MostSpecific => {
                    if let Some(&winner) = cust.iter().max_by_key(|&&i| {
                        let r = &self.rules[i];
                        // Specificity, then designer priority, then
                        // registration order (later wins: redefinitions
                        // override).
                        (r.specificity(), r.priority, i)
                    }) {
                        to_fire.push(winner);
                        shadowed.extend(cust.iter().copied().filter(|&i| i != winner));
                    }
                }
                SelectionPolicy::FireAll => to_fire.extend(cust.iter().copied()),
            }
            // Non-customization rules all fire, highest priority first.
            let mut others = other;
            others.sort_by_key(|&i| (-self.rules[i].priority, i));
            to_fire.extend(others);

            m_matched += matched.len() as u64;
            m_shadowed += shadowed.len() as u64;
            m_fired += to_fire.len() as u64;

            // Execute (or queue, for deferred-coupling rules).
            let mut fired_names = Vec::with_capacity(to_fire.len());
            for i in to_fire {
                let action = self.rules[i].action.clone();
                let name = self.rules[i].name.clone();
                let coupling = self.rules[i].coupling;
                fired_names.push(name.clone());
                match coupling {
                    Coupling::Immediate => Self::run_action(
                        &action,
                        &event,
                        ctx,
                        depth,
                        &mut queue,
                        &mut outcome.customizations,
                    ),
                    Coupling::Deferred => {
                        self.deferred
                            .push((name, action, event.clone(), ctx.clone()));
                    }
                }
            }

            if self.config.tracing {
                outcome.trace.entries.push(TraceEntry {
                    depth,
                    event: event.describe(),
                    matched: matched
                        .iter()
                        .map(|&i| self.rules[i].name.clone())
                        .collect(),
                    fired: fired_names.clone(),
                    shadowed: shadowed
                        .iter()
                        .map(|&i| self.rules[i].name.clone())
                        .collect(),
                });
            }
            outcome.fired.extend(fired_names);
        }

        if obs::enabled() {
            obs::counter_add("engine.dispatches", 1);
            obs::counter_add("engine.rules_considered", m_considered);
            obs::counter_add("engine.rules_matched", m_matched);
            obs::counter_add("engine.rules_fired", m_fired);
            obs::counter_add("engine.rules_shadowed", m_shadowed);
            obs::record_value("engine.cascade_depth", m_max_depth as u64);
            obs::record_value("engine.deferred_queue_depth", self.deferred.len() as u64);
        }
        Ok(outcome)
    }

    /// Number of deferred firings awaiting [`Self::flush_deferred`].
    pub fn pending_deferred(&self) -> usize {
        self.deferred.len()
    }

    /// Drop queued deferred firings without running them (rollback).
    pub fn clear_deferred(&mut self) {
        self.deferred.clear();
    }

    /// Execute every queued deferred firing (the "end of transaction"
    /// point). Events raised by deferred actions dispatch normally —
    /// immediate rules run inline, deferred ones re-queue.
    pub fn flush_deferred(&mut self) -> Result<Outcome<P>, ActiveError> {
        let mut outcome = Outcome {
            customizations: Vec::new(),
            fired: Vec::new(),
            events_processed: 0,
            trace: Trace::default(),
        };
        for (name, action, event, ctx) in std::mem::take(&mut self.deferred) {
            outcome.fired.push(name);
            let mut queue: VecDeque<(usize, Event)> = VecDeque::new();
            Self::run_action(
                &action,
                &event,
                &ctx,
                0,
                &mut queue,
                &mut outcome.customizations,
            );
            while let Some((_, raised)) = queue.pop_front() {
                let sub = self.dispatch(raised, &ctx)?;
                outcome.customizations.extend(sub.customizations);
                outcome.fired.extend(sub.fired);
                outcome.events_processed += sub.events_processed;
                outcome.trace.entries.extend(sub.trace.entries);
            }
        }
        Ok(outcome)
    }

    fn run_action(
        action: &Action<P>,
        event: &Event,
        ctx: &SessionContext,
        depth: usize,
        queue: &mut VecDeque<(usize, Event)>,
        customizations: &mut Vec<P>,
    ) {
        match action {
            Action::Customize(p) => customizations.push(p.clone()),
            Action::Callback(f) => {
                for e in f(event, ctx) {
                    queue.push_back((depth + 1, e));
                }
            }
            Action::Raise(events) => {
                for e in events {
                    queue.push_back((depth + 1, e.clone()));
                }
            }
            Action::Compound(actions) => {
                for a in actions {
                    Self::run_action(a, event, ctx, depth, queue, customizations);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextPattern;
    use crate::event::EventPattern;
    use geodb::query::{DbEvent, DbEventKind};
    use std::rc::Rc;

    fn get_schema() -> Event {
        Event::Db(DbEvent::GetSchema {
            schema: "phone_net".into(),
        })
    }

    fn session() -> SessionContext {
        SessionContext::new("juliano", "planner", "pole_manager")
    }

    fn cust(name: &str, ctx: ContextPattern, payload: &'static str) -> Rule<&'static str> {
        Rule::customization(name, EventPattern::db(DbEventKind::GetSchema), ctx, payload)
    }

    #[test]
    fn most_specific_rule_wins() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("generic", ContextPattern::any(), "generic"))
            .unwrap();
        eng.add_rule(cust(
            "by_cat",
            ContextPattern::for_category("planner"),
            "category",
        ))
        .unwrap();
        eng.add_rule(cust("by_user", ContextPattern::for_user("juliano"), "user"))
            .unwrap();

        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["user"]);
        assert_eq!(out.fired, vec!["by_user"]);
        // The shadowed rules are visible in the trace.
        assert_eq!(out.trace.entries[0].shadowed.len(), 2);

        // A session outside the specific contexts falls back to generic.
        let anon = SessionContext::new("guest", "visitor", "browser");
        let out = eng.dispatch(get_schema(), &anon).unwrap();
        assert_eq!(out.customizations, vec!["generic"]);
    }

    #[test]
    fn fire_all_ablation_fires_everything() {
        let mut eng: Engine<&str> = Engine::with_config(EngineConfig {
            selection: SelectionPolicy::FireAll,
            ..Default::default()
        });
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();
        eng.add_rule(cust("b", ContextPattern::for_user("juliano"), "b"))
            .unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations.len(), 2);
    }

    #[test]
    fn priority_breaks_specificity_ties() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("low", ContextPattern::for_user("juliano"), "low").with_priority(1))
            .unwrap();
        eng.add_rule(cust("high", ContextPattern::for_user("juliano"), "high").with_priority(9))
            .unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["high"]);
    }

    #[test]
    fn later_registration_overrides_equal_rules() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("v1", ContextPattern::for_user("juliano"), "old"))
            .unwrap();
        eng.add_rule(cust("v2", ContextPattern::for_user("juliano"), "new"))
            .unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["new"]);
    }

    #[test]
    fn integrity_rules_all_fire_alongside_customization() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("c", ContextPattern::any(), "payload"))
            .unwrap();
        let hits = Rc::new(std::cell::RefCell::new(0));
        for name in ["i1", "i2"] {
            let hits = hits.clone();
            eng.add_rule(Rule::integrity(
                name,
                EventPattern::db(DbEventKind::GetSchema),
                Rc::new(move |_, _| {
                    *hits.borrow_mut() += 1;
                    vec![]
                }),
            ))
            .unwrap();
        }
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(out.customizations, vec!["payload"]);
        assert_eq!(out.fired.len(), 3);
    }

    #[test]
    fn raise_cascades_and_counts_events() {
        let mut eng: Engine<&str> = Engine::new();
        // Get_Schema raises Get_Class, like the paper's R1 -> Get_Class(Pole).
        eng.add_rule(
            Rule::customization(
                "r1",
                EventPattern::db(DbEventKind::GetSchema),
                ContextPattern::any(),
                "schema-cust",
            )
            .with_priority(0),
        )
        .unwrap();
        eng.add_rule(Rule {
            name: "raiser".into(),
            event: EventPattern::db(DbEventKind::GetSchema),
            context: ContextPattern::any(),
            guard: None,
            action: Action::Raise(vec![Event::Db(DbEvent::GetClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            })]),
            group: RuleGroup::Other,
            coupling: crate::rule::Coupling::Immediate,
            priority: 0,
            enabled: true,
        })
        .unwrap();
        eng.add_rule(Rule::customization(
            "r2",
            EventPattern::db(DbEventKind::GetClass),
            ContextPattern::any(),
            "class-cust",
        ))
        .unwrap();

        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.events_processed, 2);
        assert_eq!(out.customizations, vec!["schema-cust", "class-cust"]);
        assert!(out.trace.fired("r2"));
        assert_eq!(out.trace.entries[1].depth, 1);
    }

    #[test]
    fn cascade_cycle_is_detected() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(Rule {
            name: "loop".into(),
            event: EventPattern::External {
                name: Some("ping".into()),
            },
            context: ContextPattern::any(),
            guard: None,
            action: Action::Raise(vec![Event::external("ping")]),
            group: RuleGroup::Other,
            coupling: crate::rule::Coupling::Immediate,
            priority: 0,
            enabled: true,
        })
        .unwrap();
        let err = eng
            .dispatch(Event::external("ping"), &session())
            .unwrap_err();
        assert!(matches!(err, ActiveError::CascadeOverflow { .. }));
    }

    #[test]
    fn rule_management() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();
        assert!(matches!(
            eng.add_rule(cust("a", ContextPattern::any(), "dup")),
            Err(ActiveError::DuplicateRule(_))
        ));
        eng.set_enabled("a", false).unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert!(out.customizations.is_empty());
        eng.set_enabled("a", true).unwrap();
        assert!(eng.rule("a").is_some());
        eng.remove_rule("a").unwrap();
        assert!(eng.is_empty());
        assert!(eng.remove_rule("a").is_err());
    }

    #[test]
    fn prefix_removal_replaces_rule_families() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("prog1/r1", ContextPattern::any(), "x"))
            .unwrap();
        eng.add_rule(cust("prog1/r2", ContextPattern::any(), "y"))
            .unwrap();
        eng.add_rule(cust("prog2/r1", ContextPattern::any(), "z"))
            .unwrap();
        assert_eq!(eng.remove_rules_with_prefix("prog1/"), 2);
        assert_eq!(eng.len(), 1);
        assert!(eng.rule("prog2/r1").is_some());
        // Index is still consistent.
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["z"]);
    }

    #[test]
    fn no_matching_rule_yields_empty_outcome() {
        let mut eng: Engine<&str> = Engine::new();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert!(out.customizations.is_empty());
        assert!(out.customization().is_none());
        assert_eq!(out.events_processed, 1);
    }

    #[test]
    fn tracing_can_be_disabled() {
        let mut eng: Engine<&str> = Engine::with_config(EngineConfig {
            tracing: false,
            ..Default::default()
        });
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert!(out.trace.entries.is_empty());
        assert_eq!(out.customizations, vec!["a"]);
    }
}

#[cfg(test)]
mod coupling_tests {
    use super::*;
    use crate::context::ContextPattern;
    use crate::event::EventPattern;
    use crate::rule::Coupling;
    use geodb::query::{DbEvent, DbEventKind};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn insert_event(n: u64) -> Event {
        Event::Db(DbEvent::Insert {
            schema: "s".into(),
            class: "C".into(),
            oid: geodb::instance::Oid(n),
        })
    }

    fn ctx() -> SessionContext {
        SessionContext::new("editor", "ops", "entry")
    }

    #[test]
    fn deferred_rules_queue_until_flush() {
        let mut eng: Engine<&str> = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        eng.add_rule(
            Rule::integrity(
                "batch_check",
                EventPattern::db(DbEventKind::Insert),
                Rc::new(move |e, _| {
                    log2.borrow_mut().push(e.describe());
                    vec![]
                }),
            )
            .with_coupling(Coupling::Deferred),
        )
        .unwrap();

        // Three inserts: rule matches (and is reported fired) but the
        // callback has not run yet.
        for i in 0..3 {
            let out = eng.dispatch(insert_event(i), &ctx()).unwrap();
            assert_eq!(out.fired.len(), 1);
        }
        assert!(log.borrow().is_empty());
        assert_eq!(eng.pending_deferred(), 3);

        // Flush = "end of transaction": all three checks run.
        let out = eng.flush_deferred().unwrap();
        assert_eq!(out.fired.len(), 3);
        assert_eq!(log.borrow().len(), 3);
        assert_eq!(eng.pending_deferred(), 0);
        // Flushing again is a no-op.
        assert!(eng.flush_deferred().unwrap().fired.is_empty());
    }

    #[test]
    fn clear_deferred_discards_queued_work() {
        let mut eng: Engine<&str> = Engine::new();
        let hits = Rc::new(RefCell::new(0));
        let hits2 = hits.clone();
        eng.add_rule(
            Rule::integrity(
                "check",
                EventPattern::db(DbEventKind::Insert),
                Rc::new(move |_, _| {
                    *hits2.borrow_mut() += 1;
                    vec![]
                }),
            )
            .with_coupling(Coupling::Deferred),
        )
        .unwrap();
        eng.dispatch(insert_event(1), &ctx()).unwrap();
        assert_eq!(eng.pending_deferred(), 1);
        eng.clear_deferred();
        eng.flush_deferred().unwrap();
        assert_eq!(*hits.borrow(), 0);
    }

    #[test]
    fn deferred_raises_dispatch_on_flush() {
        let mut eng: Engine<&str> = Engine::new();
        // Deferred rule raises an external event; an immediate
        // customization rule answers it.
        eng.add_rule(Rule {
            name: "deferred_raiser".into(),
            event: EventPattern::db(DbEventKind::Insert),
            context: ContextPattern::any(),
            guard: None,
            action: Action::Raise(vec![Event::external("recheck")]),
            group: RuleGroup::Other,
            coupling: Coupling::Deferred,
            priority: 0,
            enabled: true,
        })
        .unwrap();
        eng.add_rule(Rule::customization(
            "answer",
            EventPattern::External {
                name: Some("recheck".into()),
            },
            ContextPattern::any(),
            "payload",
        ))
        .unwrap();

        let out = eng.dispatch(insert_event(1), &ctx()).unwrap();
        assert!(out.customizations.is_empty());
        let out = eng.flush_deferred().unwrap();
        assert_eq!(out.customizations, vec!["payload"]);
        assert!(out.fired.contains(&"answer".to_string()));
    }

    #[test]
    fn immediate_is_the_default_coupling() {
        let r: Rule<&str> = Rule::customization("r", EventPattern::Any, ContextPattern::any(), "p");
        assert_eq!(r.coupling, Coupling::Immediate);
    }
}
