//! The rule engine: registration, selection, execution and cascading.
//!
//! Execution model (paper Section 3.3): "it is possible to have a set of
//! customization rules activated by an event, one for each context. In our
//! execution model, only one rule is selected for execution — the one
//! which has the highest priority. We define the highest priority for the
//! most specific rule." Non-customization rules (integrity maintenance
//! etc.) all fire, in priority order. Actions may raise further events;
//! cascades are bounded by a configurable depth.
//!
//! Dispatch runs one of two strategies (see [`DispatchStrategy`]):
//!
//! * **Indexed** (the default): a discrimination index buckets rule
//!   indices by event-pattern discriminant (per [`DbEventKind`],
//!   interface/external by name, wildcard), so matching consults only the
//!   buckets that can possibly match; a winner cache keyed on
//!   `(event discriminant, user, category, application)` turns repeat
//!   interactions — the same user clicking through the same windows,
//!   paper Figs. 4–7 — into a hash lookup. The cache is invalidated by a
//!   generation counter on any rule mutation and is bypassed entirely
//!   while any enabled customization rule carries a guard or extension
//!   dimensions (those must re-evaluate every time).
//! * **Linear**: the original scan over every registered rule, kept as
//!   the differential-testing oracle.
//!
//! Both strategies produce identical [`Outcome`]s; `tests` and the
//! `dispatch_differential` property suite enforce this.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use geodb::query::DbEventKind;

use crate::context::SessionContext;
use crate::event::{Event, EventPattern};
use crate::rule::{Action, Coupling, Rule, RuleGroup};
use crate::trace::{Trace, TraceEntry};

/// How customization rules are selected when several match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// The paper's policy: only the single most specific rule fires.
    MostSpecific,
    /// Ablation baseline: every matching customization rule fires.
    FireAll,
}

/// How dispatch finds the matching rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchStrategy {
    /// Discrimination index + winner cache (the default).
    #[default]
    Indexed,
    /// Scan every registered rule — the differential-testing oracle.
    Linear,
}

/// What the engine does when a rule's action faults (panics or trips an
/// injected failpoint) during dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Contain the fault: record it, skip the faulting rule, and keep
    /// the cascade going (the default — customization must never take
    /// the generic interface down with it).
    #[default]
    FailOpen,
    /// Abort the dispatch with [`ActiveError::RuleFault`]. The abort is
    /// transactional: deferred firings queued by the aborted dispatch
    /// are rolled back.
    FailClosed,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    pub selection: SelectionPolicy,
    /// How matching rules are found per event.
    pub strategy: DispatchStrategy,
    /// Maximum cascade depth before the engine aborts the dispatch.
    pub max_cascade_depth: usize,
    /// Record traces (disable in tight benchmark loops).
    pub tracing: bool,
    /// What a rule fault does to the dispatch in progress.
    pub fault_policy: FaultPolicy,
    /// Consecutive faults before a rule is quarantined (circuit-broken:
    /// skipped by matching until [`Engine::clear_quarantine`]). `0`
    /// disables quarantining.
    pub quarantine_threshold: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            selection: SelectionPolicy::MostSpecific,
            strategy: DispatchStrategy::Indexed,
            max_cascade_depth: 16,
            tracing: true,
            fault_policy: FaultPolicy::FailOpen,
            quarantine_threshold: 3,
        }
    }
}

/// The pseudo-rule name faults are attributed to when the
/// `engine.cascade` failpoint trips while dequeuing a cascaded event
/// (there is no single rule to blame — any fired rule may have raised
/// it).
pub const CASCADE_PSEUDO_RULE: &str = "<cascade>";

/// Errors from rule registration and dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActiveError {
    DuplicateRule(String),
    UnknownRule(String),
    /// A cascade exceeded `max_cascade_depth` — almost always a rule cycle.
    CascadeOverflow {
        depth: usize,
        event: String,
    },
    /// A rule's action panicked or tripped an injected failpoint and the
    /// engine runs [`FaultPolicy::FailClosed`].
    RuleFault {
        rule: String,
        depth: usize,
        cause: String,
    },
}

impl std::fmt::Display for ActiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActiveError::DuplicateRule(n) => write!(f, "duplicate rule `{n}`"),
            ActiveError::UnknownRule(n) => write!(f, "unknown rule `{n}`"),
            ActiveError::CascadeOverflow { depth, event } => {
                write!(
                    f,
                    "cascade overflow at depth {depth} on {event} (rule cycle?)"
                )
            }
            ActiveError::RuleFault { rule, depth, cause } => {
                write!(f, "rule `{rule}` faulted at depth {depth}: {cause}")
            }
        }
    }
}

impl std::error::Error for ActiveError {}

/// One contained rule fault, reported in [`Outcome::faults`] under
/// [`FaultPolicy::FailOpen`] (under `FailClosed` the first fault aborts
/// the dispatch instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The faulting rule, or [`CASCADE_PSEUDO_RULE`].
    pub rule: String,
    /// Cascade depth at which the fault occurred.
    pub depth: usize,
    /// Panic message or injected-fault description.
    pub cause: String,
}

/// Per-rule fault bookkeeping for the circuit breaker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleHealth {
    /// Faults since the rule last executed cleanly.
    pub consecutive_faults: u32,
    /// Faults over the rule's lifetime.
    pub total_faults: u64,
    /// Quarantined rules are skipped by matching until
    /// [`Engine::clear_quarantine`] restores them.
    pub quarantined: bool,
}

/// Extract a printable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Everything a dispatch produced.
#[derive(Debug, Clone)]
pub struct Outcome<P> {
    /// Customization payloads, in firing order.
    pub customizations: Vec<P>,
    /// Names of every rule that fired (interned — cloning is a pointer
    /// bump; see [`Outcome::fired_names`] for a `&str` view).
    pub fired: Vec<Rc<str>>,
    /// Total events processed (1 + cascaded).
    pub events_processed: usize,
    /// The execution trace (empty when tracing is off).
    pub trace: Trace,
    /// Rule faults contained by [`FaultPolicy::FailOpen`], in order of
    /// occurrence (always empty under `FailClosed` — the first fault
    /// aborts).
    pub faults: Vec<FaultRecord>,
}

impl<P> Outcome<P> {
    /// The single selected customization, if any (the common case under
    /// `MostSpecific`).
    pub fn customization(&self) -> Option<&P> {
        self.customizations.first()
    }

    /// The fired rule names as plain string slices.
    pub fn fired_names(&self) -> Vec<&str> {
        self.fired.iter().map(|n| &**n).collect()
    }

    fn empty() -> Outcome<P> {
        Outcome {
            customizations: Vec::new(),
            fired: Vec::new(),
            events_processed: 0,
            trace: Trace::default(),
            faults: Vec::new(),
        }
    }
}

/// Winner-cache statistics (see `:metrics` and `docs/dispatch.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Dispatched events answered from the cache.
    pub hits: u64,
    /// Cacheable events that had to run customization matching.
    pub misses: u64,
    /// Times a rule mutation flushed a non-empty cache.
    pub invalidations: u64,
    /// Entries currently cached.
    pub entries: usize,
}

// ---------------------------------------------------------------------------
// Discrimination index
// ---------------------------------------------------------------------------

/// Rule indices bucketed by event-pattern discriminant. An event only
/// consults the buckets that can possibly match it, so wildcard-free rule
/// populations dispatch in time proportional to the matching candidates,
/// not the rule count.
#[derive(Debug, Default)]
struct Buckets {
    db_by_kind: HashMap<DbEventKind, Vec<usize>>,
    /// `Db` patterns with `kind: None` — match any database event.
    db_any: Vec<usize>,
    iface_by_name: HashMap<String, Vec<usize>>,
    /// `Interface` patterns with `name: None` (e.g. source-prefix only).
    iface_any: Vec<usize>,
    ext_by_name: HashMap<String, Vec<usize>>,
    ext_any: Vec<usize>,
    /// `EventPattern::Any` — consulted for every event.
    wildcard: Vec<usize>,
}

impl Buckets {
    fn insert(&mut self, idx: usize, pattern: &EventPattern) {
        match pattern {
            EventPattern::Any => self.wildcard.push(idx),
            EventPattern::Db { kind: Some(k), .. } => {
                self.db_by_kind.entry(*k).or_default().push(idx)
            }
            EventPattern::Db { kind: None, .. } => self.db_any.push(idx),
            EventPattern::Interface { name: Some(n), .. } => {
                self.iface_by_name.entry(n.clone()).or_default().push(idx)
            }
            EventPattern::Interface { name: None, .. } => self.iface_any.push(idx),
            EventPattern::External { name: Some(n) } => {
                self.ext_by_name.entry(n.clone()).or_default().push(idx)
            }
            EventPattern::External { name: None } => self.ext_any.push(idx),
        }
    }

    /// Append every candidate index for `event` (unsorted across buckets;
    /// each bucket is internally ascending).
    fn collect(&self, event: &Event, out: &mut Vec<usize>) {
        match event {
            Event::Db(e) => {
                if let Some(b) = self.db_by_kind.get(&e.kind()) {
                    out.extend_from_slice(b);
                }
                out.extend_from_slice(&self.db_any);
            }
            Event::Interface { name, .. } => {
                if let Some(b) = self.iface_by_name.get(name) {
                    out.extend_from_slice(b);
                }
                out.extend_from_slice(&self.iface_any);
            }
            Event::External { name } => {
                if let Some(b) = self.ext_by_name.get(name) {
                    out.extend_from_slice(b);
                }
                out.extend_from_slice(&self.ext_any);
            }
        }
        out.extend_from_slice(&self.wildcard);
    }

    fn buckets_mut(&mut self) -> impl Iterator<Item = &mut Vec<usize>> {
        self.db_by_kind
            .values_mut()
            .chain(self.iface_by_name.values_mut())
            .chain(self.ext_by_name.values_mut())
            .chain([
                &mut self.db_any,
                &mut self.iface_any,
                &mut self.ext_any,
                &mut self.wildcard,
            ])
    }

    /// Drop `removed` and shift every later index down by one.
    fn remove_index(&mut self, removed: usize) {
        for b in self.buckets_mut() {
            b.retain_mut(|v| {
                if *v == removed {
                    return false;
                }
                if *v > removed {
                    *v -= 1;
                }
                true
            });
        }
    }

    /// Drop a sorted batch of removed indices and remap the survivors.
    fn remap_removed(&mut self, removed: &[usize]) {
        for b in self.buckets_mut() {
            b.retain_mut(|v| match removed.binary_search(v) {
                Ok(_) => false,
                Err(shift) => {
                    *v -= shift;
                    true
                }
            });
        }
    }
}

#[derive(Debug, Default)]
struct RuleIndex {
    cust: Buckets,
    other: Buckets,
    /// Enabled customization rules the winner cache cannot represent
    /// (guard or extension-dimension conditions). While non-zero the
    /// cache is bypassed entirely.
    uncacheable_cust: usize,
}

impl RuleIndex {
    fn insert(&mut self, idx: usize, group: RuleGroup, pattern: &EventPattern) {
        if group == RuleGroup::Customization {
            self.cust.insert(idx, pattern);
        } else {
            self.other.insert(idx, pattern);
        }
    }

    fn remove_index(&mut self, removed: usize) {
        self.cust.remove_index(removed);
        self.other.remove_index(removed);
    }

    fn remap_removed(&mut self, removed: &[usize]) {
        self.cust.remap_removed(removed);
        self.other.remap_removed(removed);
    }
}

/// A customization rule whose match cannot be keyed by the winner cache:
/// guards see arbitrary state, and extension dimensions are outside the
/// cache key. Such rules must re-evaluate on every dispatch.
fn rule_uncacheable<P>(r: &Rule<P>) -> bool {
    r.group == RuleGroup::Customization
        && r.enabled
        && (r.guard.is_some() || !r.context.extras.is_empty())
}

// ---------------------------------------------------------------------------
// Winner cache
// ---------------------------------------------------------------------------

/// The event fields that rule patterns can observe, owned for storage in
/// a cache slot. Two events with equal keys match exactly the same
/// pattern set.
#[derive(Debug, Clone, PartialEq)]
enum EventKey {
    Db {
        kind: DbEventKind,
        schema: String,
        class: Option<String>,
    },
    Interface {
        name: String,
        source: String,
    },
    External {
        name: String,
    },
}

impl EventKey {
    fn of(event: &Event) -> EventKey {
        match event {
            Event::Db(e) => EventKey::Db {
                kind: e.kind(),
                schema: e.schema().to_string(),
                class: e.class().map(str::to_string),
            },
            Event::Interface { name, source } => EventKey::Interface {
                name: name.clone(),
                source: source.clone(),
            },
            Event::External { name } => EventKey::External { name: name.clone() },
        }
    }

    /// Borrow-compare against a live event (no allocation on the hit path).
    fn matches(&self, event: &Event) -> bool {
        match (self, event) {
            (
                EventKey::Db {
                    kind,
                    schema,
                    class,
                },
                Event::Db(e),
            ) => {
                *kind == e.kind() && schema.as_str() == e.schema() && class.as_deref() == e.class()
            }
            (
                EventKey::Interface { name, source },
                Event::Interface {
                    name: en,
                    source: es,
                },
            ) => name == en && source == es,
            (EventKey::External { name }, Event::External { name: en }) => name == en,
            _ => false,
        }
    }
}

/// Hash of the cache key `(event discriminant, user, category,
/// application)`, computed without allocating.
fn cache_key_hash(event: &Event, ctx: &SessionContext) -> u64 {
    let mut h = DefaultHasher::new();
    match event {
        Event::Db(e) => {
            0u8.hash(&mut h);
            e.kind().hash(&mut h);
            e.schema().hash(&mut h);
            e.class().hash(&mut h);
        }
        Event::Interface { name, source } => {
            1u8.hash(&mut h);
            name.hash(&mut h);
            source.hash(&mut h);
        }
        Event::External { name } => {
            2u8.hash(&mut h);
            name.hash(&mut h);
        }
    }
    ctx.user.hash(&mut h);
    ctx.category.hash(&mut h);
    ctx.application.hash(&mut h);
    h.finish()
}

/// A cached customization-matching result. Selection is cached in a
/// policy-independent form: the full matched set (ascending registration
/// order, what `FireAll` needs) plus the most-specific winner.
#[derive(Debug)]
struct CacheSlot {
    event: EventKey,
    user: String,
    category: String,
    application: String,
    matched_cust: Vec<usize>,
    winner: Option<usize>,
}

impl CacheSlot {
    fn matches(&self, event: &Event, ctx: &SessionContext) -> bool {
        self.user == ctx.user
            && self.category == ctx.category
            && self.application == ctx.application
            && self.event.matches(event)
    }
}

/// Slots the winner cache holds before it flushes itself wholesale.
const WINNER_CACHE_CAPACITY: usize = 8192;

#[derive(Debug, Default)]
struct WinnerCache {
    slots: HashMap<u64, Vec<CacheSlot>>,
    len: usize,
    /// `rules_generation` the contents were computed under.
    generation: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl WinnerCache {
    fn lookup(&self, hash: u64, event: &Event, ctx: &SessionContext) -> Option<&CacheSlot> {
        self.slots
            .get(&hash)?
            .iter()
            .find(|s| s.matches(event, ctx))
    }

    fn insert(&mut self, hash: u64, slot: CacheSlot) {
        if self.len >= WINNER_CACHE_CAPACITY {
            self.slots.clear();
            self.len = 0;
        }
        self.slots.entry(hash).or_default().push(slot);
        self.len += 1;
    }
}

/// Reusable per-dispatch buffers. Taken out of the engine for the
/// duration of a dispatch and put back afterwards, so the hot loop
/// allocates nothing once the buffers have warmed up.
#[derive(Debug, Default)]
struct Scratch {
    queue: VecDeque<(usize, Event)>,
    candidates: Vec<usize>,
    matched_cust: Vec<usize>,
    matched_other: Vec<usize>,
    to_fire: Vec<usize>,
    shadowed: Vec<usize>,
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// A rule firing queued for [`Engine::flush_deferred`]: the rule's
/// interned name, its action, and the triggering event and context.
type DeferredFiring<P> = (Rc<str>, Rc<Action<P>>, Event, SessionContext);

/// The active mechanism.
pub struct Engine<P> {
    rules: Vec<Rule<P>>,
    /// Interned rule names, parallel to `rules`; firing clones a pointer.
    names: Vec<Rc<str>>,
    by_name: HashMap<String, usize>,
    config: EngineConfig,
    /// Dispatches served (telemetry for benches).
    dispatch_count: u64,
    /// Bumped on every rule mutation; the winner cache invalidates
    /// lazily when its generation falls behind.
    rules_generation: u64,
    index: RuleIndex,
    cache: WinnerCache,
    /// Firings queued by rules with deferred coupling.
    deferred: Vec<DeferredFiring<P>>,
    scratch: Scratch,
    /// Per-rule fault bookkeeping, parallel to `rules`.
    health: Vec<RuleHealth>,
    /// Rule faults contained or surfaced over the engine's lifetime.
    rule_fault_count: u64,
    /// Rules currently quarantined.
    quarantined_count: usize,
}

impl<P: Clone> Default for Engine<P> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<P: Clone> Engine<P> {
    pub fn new() -> Engine<P> {
        Engine::with_config(EngineConfig::default())
    }

    pub fn with_config(config: EngineConfig) -> Engine<P> {
        Engine {
            rules: Vec::new(),
            names: Vec::new(),
            by_name: HashMap::new(),
            config,
            dispatch_count: 0,
            rules_generation: 0,
            index: RuleIndex::default(),
            cache: WinnerCache::default(),
            deferred: Vec::new(),
            scratch: Scratch::default(),
            health: Vec::new(),
            rule_fault_count: 0,
            quarantined_count: 0,
        }
    }

    pub fn config(&self) -> EngineConfig {
        self.config
    }

    pub fn set_selection(&mut self, policy: SelectionPolicy) {
        self.config.selection = policy;
    }

    pub fn strategy(&self) -> DispatchStrategy {
        self.config.strategy
    }

    pub fn set_strategy(&mut self, strategy: DispatchStrategy) {
        self.config.strategy = strategy;
    }

    pub fn fault_policy(&self) -> FaultPolicy {
        self.config.fault_policy
    }

    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.config.fault_policy = policy;
    }

    /// Rule faults contained or surfaced since the engine was built
    /// (including `engine.cascade` pseudo-rule faults).
    pub fn rule_faults(&self) -> u64 {
        self.rule_fault_count
    }

    /// Names of every quarantined rule, in registration order.
    pub fn quarantined(&self) -> Vec<&str> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, h)| h.quarantined)
            .map(|(i, _)| &*self.names[i])
            .collect()
    }

    /// Fault bookkeeping for one rule.
    pub fn rule_health(&self, name: &str) -> Option<RuleHealth> {
        self.by_name.get(name).map(|&i| self.health[i])
    }

    /// Lift a rule's quarantine and reset its fault counters. The rule
    /// participates in matching again from the next dispatch.
    pub fn clear_quarantine(&mut self, name: &str) -> Result<(), ActiveError> {
        let idx = *self
            .by_name
            .get(name)
            .ok_or_else(|| ActiveError::UnknownRule(name.to_string()))?;
        if self.health[idx].quarantined {
            self.quarantined_count -= 1;
        }
        self.health[idx] = RuleHealth::default();
        self.rules_generation += 1;
        Ok(())
    }

    /// Number of dispatches served (telemetry for benches).
    pub fn dispatches(&self) -> u64 {
        self.dispatch_count
    }

    /// Generation counter bumped on every rule mutation.
    pub fn rules_generation(&self) -> u64 {
        self.rules_generation
    }

    /// Winner-cache counters and current size.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache.hits,
            misses: self.cache.misses,
            invalidations: self.cache.invalidations,
            entries: self.cache.len,
        }
    }

    // -- rule management ----------------------------------------------------

    /// Register a rule; names must be unique.
    pub fn add_rule(&mut self, rule: Rule<P>) -> Result<(), ActiveError> {
        if self.by_name.contains_key(&rule.name) {
            return Err(ActiveError::DuplicateRule(rule.name.clone()));
        }
        let idx = self.rules.len();
        self.by_name.insert(rule.name.clone(), idx);
        self.names.push(Rc::from(rule.name.as_str()));
        self.index.insert(idx, rule.group, &rule.event);
        if rule_uncacheable(&rule) {
            self.index.uncacheable_cust += 1;
        }
        self.rules.push(rule);
        self.health.push(RuleHealth::default());
        self.rules_generation += 1;
        Ok(())
    }

    /// Register many rules (e.g. the output of the customization compiler).
    pub fn add_rules(
        &mut self,
        rules: impl IntoIterator<Item = Rule<P>>,
    ) -> Result<(), ActiveError> {
        for r in rules {
            self.add_rule(r)?;
        }
        Ok(())
    }

    /// Remove a rule by name. Later rules shift down one slot; the name
    /// map and index buckets are adjusted in place (no rebuild).
    pub fn remove_rule(&mut self, name: &str) -> Result<Rule<P>, ActiveError> {
        let idx = self
            .by_name
            .remove(name)
            .ok_or_else(|| ActiveError::UnknownRule(name.to_string()))?;
        let rule = self.rules.remove(idx);
        self.names.remove(idx);
        if self.health.remove(idx).quarantined {
            self.quarantined_count -= 1;
        }
        if rule_uncacheable(&rule) {
            self.index.uncacheable_cust -= 1;
        }
        self.index.remove_index(idx);
        for v in self.by_name.values_mut() {
            if *v > idx {
                *v -= 1;
            }
        }
        self.rules_generation += 1;
        Ok(rule)
    }

    /// Enable or disable a rule in place.
    pub fn set_enabled(&mut self, name: &str, enabled: bool) -> Result<(), ActiveError> {
        let idx = *self
            .by_name
            .get(name)
            .ok_or_else(|| ActiveError::UnknownRule(name.to_string()))?;
        let was = rule_uncacheable(&self.rules[idx]);
        self.rules[idx].enabled = enabled;
        let now = rule_uncacheable(&self.rules[idx]);
        if now && !was {
            self.index.uncacheable_cust += 1;
        } else if was && !now {
            self.index.uncacheable_cust -= 1;
        }
        self.rules_generation += 1;
        Ok(())
    }

    pub fn rule(&self, name: &str) -> Option<&Rule<P>> {
        self.by_name.get(name).map(|&i| &self.rules[i])
    }

    pub fn rules(&self) -> &[Rule<P>] {
        &self.rules
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Drop every rule whose name starts with `prefix`; returns how many
    /// were removed. (Recompiling a customization program replaces its
    /// rule family this way.) Surviving entries are remapped in place.
    pub fn remove_rules_with_prefix(&mut self, prefix: &str) -> usize {
        let removed: Vec<usize> = self
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.name.starts_with(prefix))
            .map(|(i, _)| i)
            .collect();
        if removed.is_empty() {
            return 0;
        }
        for &i in &removed {
            if rule_uncacheable(&self.rules[i]) {
                self.index.uncacheable_cust -= 1;
            }
        }
        for &i in &removed {
            if self.health[i].quarantined {
                self.quarantined_count -= 1;
            }
        }
        self.rules.retain(|r| !r.name.starts_with(prefix));
        let mut i = 0;
        self.names.retain(|_| {
            let keep = removed.binary_search(&i).is_err();
            i += 1;
            keep
        });
        let mut i = 0;
        self.health.retain(|_| {
            let keep = removed.binary_search(&i).is_err();
            i += 1;
            keep
        });
        self.by_name.retain(|n, _| !n.starts_with(prefix));
        for v in self.by_name.values_mut() {
            *v -= removed.partition_point(|&r| r < *v);
        }
        self.index.remap_removed(&removed);
        self.rules_generation += 1;
        removed.len()
    }

    // -- dispatch -----------------------------------------------------------

    /// Feed one event through the rule set for a session context.
    ///
    /// Dispatch is transactional with respect to the deferred queue: an
    /// aborted dispatch (`CascadeOverflow`, or `RuleFault` under
    /// [`FaultPolicy::FailClosed`]) rolls back every deferred firing it
    /// queued, so no partial transaction state survives the error.
    pub fn dispatch(
        &mut self,
        event: Event,
        ctx: &SessionContext,
    ) -> Result<Outcome<P>, ActiveError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let deferred_mark = self.deferred.len();
        let result = self.dispatch_inner(event, ctx, &mut scratch);
        self.scratch = scratch;
        if result.is_err() {
            self.deferred.truncate(deferred_mark);
        }
        result
    }

    /// Record a fault against rule `idx`; returns `true` if this fault
    /// tripped the circuit breaker (quarantined the rule).
    fn note_fault(&mut self, idx: usize) -> bool {
        self.rule_fault_count += 1;
        if obs::enabled() {
            obs::counter_add("engine.rule_faults", 1);
        }
        let threshold = self.config.quarantine_threshold;
        let h = &mut self.health[idx];
        h.total_faults += 1;
        h.consecutive_faults += 1;
        if threshold == 0 || h.quarantined || h.consecutive_faults < threshold {
            return false;
        }
        h.quarantined = true;
        self.quarantined_count += 1;
        if obs::enabled() {
            obs::counter_add("engine.quarantined_rules", 1);
        }
        // Quarantine is a rule mutation. Flush the winner cache eagerly
        // (not lazily at the next dispatch) so no stale slot naming the
        // quarantined rule can answer later events of this same cascade.
        self.rules_generation += 1;
        if self.cache.len > 0 {
            self.cache.slots.clear();
            self.cache.len = 0;
            self.cache.invalidations += 1;
        }
        self.cache.generation = self.rules_generation;
        true
    }

    /// Record a fault not attributable to one rule (the `engine.cascade`
    /// failpoint).
    fn note_anonymous_fault(&mut self) {
        self.rule_fault_count += 1;
        if obs::enabled() {
            obs::counter_add("engine.rule_faults", 1);
        }
    }

    fn dispatch_inner(
        &mut self,
        event: Event,
        ctx: &SessionContext,
        s: &mut Scratch,
    ) -> Result<Outcome<P>, ActiveError> {
        let _span = obs::span("engine.dispatch");
        self.dispatch_count += 1;
        // Per-dispatch tallies, flushed to the metrics registry once at
        // the end so the hot loop costs plain integer adds.
        let mut m_considered = 0u64;
        let mut m_matched = 0u64;
        let mut m_fired = 0u64;
        let mut m_shadowed = 0u64;
        let mut m_hits = 0u64;
        let mut m_misses = 0u64;
        let mut m_max_depth = 0usize;

        let indexed = self.config.strategy == DispatchStrategy::Indexed;
        // The cache is only sound while every enabled customization rule
        // is a pure function of the cache key.
        let cache_ok = indexed && self.index.uncacheable_cust == 0;
        if cache_ok && self.cache.generation != self.rules_generation {
            if self.cache.len > 0 {
                self.cache.slots.clear();
                self.cache.len = 0;
                self.cache.invalidations += 1;
                if obs::enabled() {
                    obs::counter_add("engine.winner_cache_invalidations", 1);
                }
            }
            self.cache.generation = self.rules_generation;
        }

        let mut outcome = Outcome::empty();
        s.queue.clear();
        s.queue.push_back((0, event));

        while let Some((depth, event)) = s.queue.pop_front() {
            if depth > self.config.max_cascade_depth {
                return Err(ActiveError::CascadeOverflow {
                    depth,
                    event: event.describe(),
                });
            }
            outcome.events_processed += 1;
            m_max_depth = m_max_depth.max(depth);

            // Cascade-step failpoint: a fault in the cascade machinery
            // itself, not attributable to any one rule. Fail-open drops
            // the cascaded event; fail-closed aborts the dispatch.
            if depth > 0 && faultsim::any_armed() {
                let fired = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    faultsim::fire("engine.cascade")
                }));
                let cause = match fired {
                    Ok(Ok(())) => None,
                    Ok(Err(fault)) => Some(fault.to_string()),
                    Err(payload) => Some(panic_message(&*payload)),
                };
                if let Some(cause) = cause {
                    self.note_anonymous_fault();
                    outcome.faults.push(FaultRecord {
                        rule: CASCADE_PSEUDO_RULE.to_string(),
                        depth,
                        cause: cause.clone(),
                    });
                    match self.config.fault_policy {
                        FaultPolicy::FailOpen => continue,
                        FaultPolicy::FailClosed => {
                            return Err(ActiveError::RuleFault {
                                rule: CASCADE_PSEUDO_RULE.to_string(),
                                depth,
                                cause,
                            });
                        }
                    }
                }
            }

            s.matched_cust.clear();
            s.matched_other.clear();
            // `Some(winner)` when the cache answered customization
            // matching for this event; the winner itself may be `None`
            // (negative results are cached too).
            let mut cached_winner: Option<Option<usize>> = None;
            let mut hash = None;

            if indexed {
                if cache_ok {
                    let h = cache_key_hash(&event, ctx);
                    hash = Some(h);
                    if let Some(slot) = self.cache.lookup(h, &event, ctx) {
                        s.matched_cust.extend_from_slice(&slot.matched_cust);
                        cached_winner = Some(slot.winner);
                        m_hits += 1;
                    } else {
                        m_misses += 1;
                    }
                }
                if cached_winner.is_none() {
                    s.candidates.clear();
                    self.index.cust.collect(&event, &mut s.candidates);
                    // Ascending registration order, like the linear scan.
                    s.candidates.sort_unstable();
                    m_considered += s.candidates.len() as u64;
                    for &i in &s.candidates {
                        if !self.health[i].quarantined && self.rules[i].matches(&event, ctx) {
                            s.matched_cust.push(i);
                        }
                    }
                }
                s.candidates.clear();
                self.index.other.collect(&event, &mut s.candidates);
                s.candidates.sort_unstable();
                m_considered += s.candidates.len() as u64;
                for &i in &s.candidates {
                    if !self.health[i].quarantined && self.rules[i].matches(&event, ctx) {
                        s.matched_other.push(i);
                    }
                }
            } else {
                m_considered += self.rules.len() as u64;
                for (i, r) in self.rules.iter().enumerate() {
                    if !self.health[i].quarantined && r.matches(&event, ctx) {
                        if r.group == RuleGroup::Customization {
                            s.matched_cust.push(i);
                        } else {
                            s.matched_other.push(i);
                        }
                    }
                }
            }

            // Customization selection: specificity, then designer
            // priority, then registration order (later wins:
            // redefinitions override).
            let winner = match cached_winner {
                Some(w) => w,
                None => {
                    let rules = &self.rules;
                    let w = s.matched_cust.iter().copied().max_by_key(|&i| {
                        let r = &rules[i];
                        (r.specificity(), r.priority, i)
                    });
                    if let Some(h) = hash {
                        self.cache.insert(
                            h,
                            CacheSlot {
                                event: EventKey::of(&event),
                                user: ctx.user.clone(),
                                category: ctx.category.clone(),
                                application: ctx.application.clone(),
                                matched_cust: s.matched_cust.clone(),
                                winner: w,
                            },
                        );
                    }
                    w
                }
            };

            s.to_fire.clear();
            s.shadowed.clear();
            match self.config.selection {
                SelectionPolicy::MostSpecific => {
                    if let Some(w) = winner {
                        s.to_fire.push(w);
                        s.shadowed
                            .extend(s.matched_cust.iter().copied().filter(|&i| i != w));
                    }
                }
                SelectionPolicy::FireAll => s.to_fire.extend_from_slice(&s.matched_cust),
            }
            // Non-customization rules all fire, highest priority first.
            let cust_fired = s.to_fire.len();
            s.to_fire.extend_from_slice(&s.matched_other);
            let rules = &self.rules;
            s.to_fire[cust_fired..].sort_by_key(|&i| (std::cmp::Reverse(rules[i].priority), i));

            m_matched += (s.matched_cust.len() + s.matched_other.len()) as u64;
            m_shadowed += s.shadowed.len() as u64;
            m_fired += s.to_fire.len() as u64;

            // Execute (or queue, for deferred-coupling rules). Indexed by
            // position because actions push into `s.queue`.
            let fired_start = outcome.fired.len();
            for k in 0..s.to_fire.len() {
                let i = s.to_fire[k];
                outcome.fired.push(Rc::clone(&self.names[i]));
                match self.rules[i].coupling {
                    Coupling::Immediate => {
                        let result = Self::run_action(
                            &self.rules[i].action,
                            &event,
                            ctx,
                            depth,
                            &mut s.queue,
                            &mut outcome.customizations,
                        );
                        match result {
                            Ok(()) => self.health[i].consecutive_faults = 0,
                            Err(cause) => {
                                outcome.faults.push(FaultRecord {
                                    rule: self.rules[i].name.clone(),
                                    depth,
                                    cause: cause.clone(),
                                });
                                self.note_fault(i);
                                if self.config.fault_policy == FaultPolicy::FailClosed {
                                    return Err(ActiveError::RuleFault {
                                        rule: self.rules[i].name.clone(),
                                        depth,
                                        cause,
                                    });
                                }
                            }
                        }
                    }
                    Coupling::Deferred => self.deferred.push((
                        Rc::clone(&self.names[i]),
                        Rc::clone(&self.rules[i].action),
                        event.clone(),
                        ctx.clone(),
                    )),
                }
            }

            if self.config.tracing {
                // Merge the two ascending matched lists back into
                // registration order, as the linear scan reports them.
                let mut matched = Vec::with_capacity(s.matched_cust.len() + s.matched_other.len());
                let (mut a, mut b) = (0, 0);
                while a < s.matched_cust.len() || b < s.matched_other.len() {
                    let i = if b == s.matched_other.len()
                        || (a < s.matched_cust.len() && s.matched_cust[a] < s.matched_other[b])
                    {
                        a += 1;
                        s.matched_cust[a - 1]
                    } else {
                        b += 1;
                        s.matched_other[b - 1]
                    };
                    matched.push(self.rules[i].name.clone());
                }
                outcome.trace.entries.push(TraceEntry {
                    depth,
                    event: event.describe(),
                    matched,
                    fired: outcome.fired[fired_start..]
                        .iter()
                        .map(|n| n.to_string())
                        .collect(),
                    shadowed: s
                        .shadowed
                        .iter()
                        .map(|&i| self.rules[i].name.clone())
                        .collect(),
                });
            }
        }

        self.cache.hits += m_hits;
        self.cache.misses += m_misses;
        if obs::enabled() {
            obs::counter_add("engine.dispatches", 1);
            obs::counter_add("engine.rules_considered", m_considered);
            obs::counter_add("engine.rules_matched", m_matched);
            obs::counter_add("engine.rules_fired", m_fired);
            obs::counter_add("engine.rules_shadowed", m_shadowed);
            obs::counter_add("engine.winner_cache_hits", m_hits);
            obs::counter_add("engine.winner_cache_misses", m_misses);
            obs::record_value("engine.cascade_depth", m_max_depth as u64);
            obs::record_value("engine.deferred_queue_depth", self.deferred.len() as u64);
        }
        Ok(outcome)
    }

    /// Number of deferred firings awaiting [`Self::flush_deferred`].
    pub fn pending_deferred(&self) -> usize {
        self.deferred.len()
    }

    /// Drop queued deferred firings without running them (rollback).
    pub fn clear_deferred(&mut self) {
        self.deferred.clear();
    }

    /// Execute every queued deferred firing (the "end of transaction"
    /// point). Events raised by deferred actions dispatch normally —
    /// immediate rules run inline, deferred ones re-queue.
    pub fn flush_deferred(&mut self) -> Result<Outcome<P>, ActiveError> {
        let _span = obs::span("engine.flush_deferred");
        let drained = std::mem::take(&mut self.deferred);
        if obs::enabled() {
            obs::counter_add("engine.deferred_flushed", drained.len() as u64);
        }
        let mut outcome = Outcome::empty();
        for (name, action, event, ctx) in drained {
            outcome.fired.push(Rc::clone(&name));
            let mut queue: VecDeque<(usize, Event)> = VecDeque::new();
            if let Err(cause) = Self::run_action(
                &action,
                &event,
                &ctx,
                0,
                &mut queue,
                &mut outcome.customizations,
            ) {
                outcome.faults.push(FaultRecord {
                    rule: name.to_string(),
                    depth: 0,
                    cause: cause.clone(),
                });
                // The rule may have been removed since it was deferred.
                if let Some(&idx) = self.by_name.get(&*name) {
                    self.note_fault(idx);
                } else {
                    self.note_anonymous_fault();
                }
                if self.config.fault_policy == FaultPolicy::FailClosed {
                    return Err(ActiveError::RuleFault {
                        rule: name.to_string(),
                        depth: 0,
                        cause,
                    });
                }
                continue;
            }
            if let Some(&idx) = self.by_name.get(&*name) {
                self.health[idx].consecutive_faults = 0;
            }
            while let Some((_, raised)) = queue.pop_front() {
                let sub = self.dispatch(raised, &ctx)?;
                outcome.customizations.extend(sub.customizations);
                outcome.fired.extend(sub.fired);
                outcome.events_processed += sub.events_processed;
                outcome.trace.entries.extend(sub.trace.entries);
            }
        }
        Ok(outcome)
    }

    /// Run one action. Callbacks are the only fallible arm: they are
    /// executed behind a panic boundary (a panicking callback becomes an
    /// `Err`, never unwinds into the engine) and consult the
    /// `engine.callback` failpoint first. `Err` carries a human-readable
    /// cause; the caller decides between fail-open and fail-closed.
    fn run_action(
        action: &Action<P>,
        event: &Event,
        ctx: &SessionContext,
        depth: usize,
        queue: &mut VecDeque<(usize, Event)>,
        customizations: &mut Vec<P>,
    ) -> Result<(), String> {
        match action {
            Action::Customize(p) => {
                customizations.push(p.clone());
                Ok(())
            }
            Action::Callback(f) => {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    faultsim::fire("engine.callback").map(|()| f(event, ctx))
                }));
                match result {
                    Ok(Ok(events)) => {
                        for e in events {
                            queue.push_back((depth + 1, e));
                        }
                        Ok(())
                    }
                    Ok(Err(fault)) => Err(fault.to_string()),
                    Err(payload) => Err(panic_message(&*payload)),
                }
            }
            Action::Raise(events) => {
                for e in events {
                    queue.push_back((depth + 1, e.clone()));
                }
                Ok(())
            }
            Action::Compound(actions) => {
                for a in actions {
                    Self::run_action(a, event, ctx, depth, queue, customizations)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextPattern;
    use geodb::query::DbEvent;
    use std::rc::Rc;

    fn get_schema() -> Event {
        Event::Db(DbEvent::GetSchema {
            schema: "phone_net".into(),
        })
    }

    fn session() -> SessionContext {
        SessionContext::new("juliano", "planner", "pole_manager")
    }

    fn cust(name: &str, ctx: ContextPattern, payload: &'static str) -> Rule<&'static str> {
        Rule::customization(name, EventPattern::db(DbEventKind::GetSchema), ctx, payload)
    }

    #[test]
    fn most_specific_rule_wins() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("generic", ContextPattern::any(), "generic"))
            .unwrap();
        eng.add_rule(cust(
            "by_cat",
            ContextPattern::for_category("planner"),
            "category",
        ))
        .unwrap();
        eng.add_rule(cust("by_user", ContextPattern::for_user("juliano"), "user"))
            .unwrap();

        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["user"]);
        assert_eq!(out.fired_names(), vec!["by_user"]);
        // The shadowed rules are visible in the trace.
        assert_eq!(out.trace.entries[0].shadowed.len(), 2);

        // A session outside the specific contexts falls back to generic.
        let anon = SessionContext::new("guest", "visitor", "browser");
        let out = eng.dispatch(get_schema(), &anon).unwrap();
        assert_eq!(out.customizations, vec!["generic"]);
    }

    #[test]
    fn fire_all_ablation_fires_everything() {
        let mut eng: Engine<&str> = Engine::with_config(EngineConfig {
            selection: SelectionPolicy::FireAll,
            ..Default::default()
        });
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();
        eng.add_rule(cust("b", ContextPattern::for_user("juliano"), "b"))
            .unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations.len(), 2);
        // Repeat from the cache: `FireAll` still gets the full set.
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations.len(), 2);
        assert_eq!(eng.cache_stats().hits, 1);
    }

    #[test]
    fn priority_breaks_specificity_ties() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("low", ContextPattern::for_user("juliano"), "low").with_priority(1))
            .unwrap();
        eng.add_rule(cust("high", ContextPattern::for_user("juliano"), "high").with_priority(9))
            .unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["high"]);
    }

    #[test]
    fn later_registration_overrides_equal_rules() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("v1", ContextPattern::for_user("juliano"), "old"))
            .unwrap();
        eng.add_rule(cust("v2", ContextPattern::for_user("juliano"), "new"))
            .unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["new"]);
    }

    #[test]
    fn integrity_rules_all_fire_alongside_customization() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("c", ContextPattern::any(), "payload"))
            .unwrap();
        let hits = Rc::new(std::cell::RefCell::new(0));
        for name in ["i1", "i2"] {
            let hits = hits.clone();
            eng.add_rule(Rule::integrity(
                name,
                EventPattern::db(DbEventKind::GetSchema),
                Rc::new(move |_, _| {
                    *hits.borrow_mut() += 1;
                    vec![]
                }),
            ))
            .unwrap();
        }
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(out.customizations, vec!["payload"]);
        assert_eq!(out.fired.len(), 3);
    }

    #[test]
    fn raise_cascades_and_counts_events() {
        let mut eng: Engine<&str> = Engine::new();
        // Get_Schema raises Get_Class, like the paper's R1 -> Get_Class(Pole).
        eng.add_rule(
            Rule::customization(
                "r1",
                EventPattern::db(DbEventKind::GetSchema),
                ContextPattern::any(),
                "schema-cust",
            )
            .with_priority(0),
        )
        .unwrap();
        eng.add_rule(Rule {
            name: "raiser".into(),
            event: EventPattern::db(DbEventKind::GetSchema),
            context: ContextPattern::any(),
            guard: None,
            action: Rc::new(Action::Raise(vec![Event::Db(DbEvent::GetClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            })])),
            group: RuleGroup::Other,
            coupling: crate::rule::Coupling::Immediate,
            priority: 0,
            enabled: true,
        })
        .unwrap();
        eng.add_rule(Rule::customization(
            "r2",
            EventPattern::db(DbEventKind::GetClass),
            ContextPattern::any(),
            "class-cust",
        ))
        .unwrap();

        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.events_processed, 2);
        assert_eq!(out.customizations, vec!["schema-cust", "class-cust"]);
        assert!(out.trace.fired("r2"));
        assert_eq!(out.trace.entries[1].depth, 1);
    }

    #[test]
    fn cascade_cycle_is_detected() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(Rule {
            name: "loop".into(),
            event: EventPattern::External {
                name: Some("ping".into()),
            },
            context: ContextPattern::any(),
            guard: None,
            action: Rc::new(Action::Raise(vec![Event::external("ping")])),
            group: RuleGroup::Other,
            coupling: crate::rule::Coupling::Immediate,
            priority: 0,
            enabled: true,
        })
        .unwrap();
        let err = eng
            .dispatch(Event::external("ping"), &session())
            .unwrap_err();
        assert!(matches!(err, ActiveError::CascadeOverflow { .. }));
        // The aborted dispatch leaves no debris: the next one is clean.
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.events_processed, 1);
    }

    #[test]
    fn rule_management() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();
        assert!(matches!(
            eng.add_rule(cust("a", ContextPattern::any(), "dup")),
            Err(ActiveError::DuplicateRule(_))
        ));
        eng.set_enabled("a", false).unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert!(out.customizations.is_empty());
        eng.set_enabled("a", true).unwrap();
        assert!(eng.rule("a").is_some());
        eng.remove_rule("a").unwrap();
        assert!(eng.is_empty());
        assert!(eng.remove_rule("a").is_err());
    }

    #[test]
    fn prefix_removal_replaces_rule_families() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("prog1/r1", ContextPattern::any(), "x"))
            .unwrap();
        eng.add_rule(cust("prog1/r2", ContextPattern::any(), "y"))
            .unwrap();
        eng.add_rule(cust("prog2/r1", ContextPattern::any(), "z"))
            .unwrap();
        assert_eq!(eng.remove_rules_with_prefix("prog1/"), 2);
        assert_eq!(eng.len(), 1);
        assert!(eng.rule("prog2/r1").is_some());
        // Index is still consistent.
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["z"]);
    }

    #[test]
    fn removal_keeps_name_map_and_buckets_consistent() {
        // Regression: removals used to rebuild `by_name` from scratch;
        // the in-place remap must leave every surviving name resolving
        // to its own rule, across single and batch removal, for every
        // bucket family.
        let mut eng: Engine<&str> = Engine::new();
        let mk = |name: &str, event: EventPattern| {
            Rule::customization(name, event, ContextPattern::any(), "p")
        };
        eng.add_rule(mk(
            "db/get_schema",
            EventPattern::db(DbEventKind::GetSchema),
        ))
        .unwrap();
        eng.add_rule(mk("wild/any", EventPattern::Any)).unwrap();
        eng.add_rule(mk(
            "ext/tick",
            EventPattern::External {
                name: Some("tick".into()),
            },
        ))
        .unwrap();
        eng.add_rule(mk("db/get_class", EventPattern::db(DbEventKind::GetClass)))
            .unwrap();
        eng.add_rule(mk(
            "iface/click",
            EventPattern::Interface {
                name: Some("click".into()),
                source_prefix: None,
            },
        ))
        .unwrap();
        eng.add_rule(mk("ext/any", EventPattern::External { name: None }))
            .unwrap();

        eng.remove_rule("wild/any").unwrap();
        eng.remove_rule("db/get_schema").unwrap();
        assert_eq!(eng.remove_rules_with_prefix("ext/"), 2);

        // Every survivor's name still maps to the rule bearing it.
        assert_eq!(eng.len(), 2);
        for name in ["db/get_class", "iface/click"] {
            assert_eq!(eng.rule(name).unwrap().name, name);
        }
        // And the buckets still dispatch the right rules.
        let out = eng
            .dispatch(
                Event::Db(DbEvent::GetClass {
                    schema: "s".into(),
                    class: "C".into(),
                }),
                &session(),
            )
            .unwrap();
        assert_eq!(out.fired_names(), vec!["db/get_class"]);
        let out = eng
            .dispatch(Event::interface("click", "w/b1"), &session())
            .unwrap();
        assert_eq!(out.fired_names(), vec!["iface/click"]);
        let out = eng.dispatch(Event::external("tick"), &session()).unwrap();
        assert!(out.fired.is_empty());
    }

    #[test]
    fn winner_cache_counts_hits_misses_and_invalidations() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();

        eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(eng.cache_stats().hits, 0);
        assert_eq!(eng.cache_stats().misses, 1);
        assert_eq!(eng.cache_stats().entries, 1);

        eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(eng.cache_stats().hits, 1);
        assert_eq!(eng.cache_stats().misses, 1);

        // Negative results are cached too.
        let stranger = SessionContext::new("x", "y", "z");
        eng.dispatch(Event::external("nope"), &stranger).unwrap();
        eng.dispatch(Event::external("nope"), &stranger).unwrap();
        assert_eq!(eng.cache_stats().hits, 2);

        // Any rule mutation flushes the cache on the next dispatch.
        eng.add_rule(cust("b", ContextPattern::for_user("juliano"), "b"))
            .unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["b"]);
        let stats = eng.cache_stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn guarded_rules_bypass_the_cache() {
        let flag = Rc::new(std::cell::Cell::new(true));
        let f = flag.clone();
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(
            cust("guarded", ContextPattern::any(), "guarded")
                .with_guard(Rc::new(move |_, _| f.get())),
        )
        .unwrap();

        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["guarded"]);
        // Flip the guard's state: a cached winner would go stale here.
        flag.set(false);
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert!(out.customizations.is_empty());
        let stats = eng.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn extras_bearing_rules_bypass_the_cache() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust(
            "scaled",
            ContextPattern::any().extra("scale", "1:1000"),
            "coarse",
        ))
        .unwrap();
        // Same <user, category, application> triple, different extras —
        // the cache key cannot tell these sessions apart.
        let zoomed = session().with_extra("scale", "1:1000");
        let out = eng.dispatch(get_schema(), &zoomed).unwrap();
        assert_eq!(out.customizations, vec!["coarse"]);
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert!(out.customizations.is_empty());
        assert_eq!(eng.cache_stats().entries, 0);
    }

    #[test]
    fn linear_strategy_skips_the_cache() {
        let mut eng: Engine<&str> = Engine::with_config(EngineConfig {
            strategy: DispatchStrategy::Linear,
            ..Default::default()
        });
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();
        eng.dispatch(get_schema(), &session()).unwrap();
        eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(eng.cache_stats(), CacheStats::default());
        assert_eq!(eng.strategy(), DispatchStrategy::Linear);
    }

    #[test]
    fn indexed_and_linear_agree_on_a_mixed_rule_set() {
        let build = |strategy: DispatchStrategy| {
            let mut eng: Engine<&str> = Engine::with_config(EngineConfig {
                strategy,
                ..Default::default()
            });
            eng.add_rule(cust("generic", ContextPattern::any(), "generic"))
                .unwrap();
            eng.add_rule(cust("by_user", ContextPattern::for_user("juliano"), "user"))
                .unwrap();
            eng.add_rule(Rule::customization(
                "wild",
                EventPattern::Any,
                ContextPattern::for_category("planner"),
                "wild",
            ))
            .unwrap();
            eng.add_rule(
                Rule::customization(
                    "ext",
                    EventPattern::External {
                        name: Some("refresh".into()),
                    },
                    ContextPattern::any(),
                    "ext",
                )
                .with_priority(3),
            )
            .unwrap();
            eng.add_rule(
                Rule::integrity("audit", EventPattern::Any, Rc::new(|_, _| vec![]))
                    .with_priority(-1),
            )
            .unwrap();
            eng
        };
        let mut indexed = build(DispatchStrategy::Indexed);
        let mut linear = build(DispatchStrategy::Linear);

        let events = [
            get_schema(),
            Event::external("refresh"),
            Event::interface("click", "schema_window/list"),
            Event::Db(DbEvent::GetClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            }),
        ];
        for event in &events {
            for ctx in [session(), SessionContext::new("guest", "visitor", "x")] {
                // Twice per pair so the second round hits the cache.
                for _ in 0..2 {
                    let a = indexed.dispatch(event.clone(), &ctx).unwrap();
                    let b = linear.dispatch(event.clone(), &ctx).unwrap();
                    assert_eq!(a.customizations, b.customizations);
                    assert_eq!(a.fired_names(), b.fired_names());
                    assert_eq!(a.events_processed, b.events_processed);
                    assert_eq!(a.trace.entries.len(), b.trace.entries.len());
                    for (ta, tb) in a.trace.entries.iter().zip(&b.trace.entries) {
                        assert_eq!(ta.matched, tb.matched);
                        assert_eq!(ta.fired, tb.fired);
                        assert_eq!(ta.shadowed, tb.shadowed);
                    }
                }
            }
        }
        assert!(indexed.cache_stats().hits > 0);
    }

    #[test]
    fn no_matching_rule_yields_empty_outcome() {
        let mut eng: Engine<&str> = Engine::new();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert!(out.customizations.is_empty());
        assert!(out.customization().is_none());
        assert_eq!(out.events_processed, 1);
    }

    #[test]
    fn tracing_can_be_disabled() {
        let mut eng: Engine<&str> = Engine::with_config(EngineConfig {
            tracing: false,
            ..Default::default()
        });
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert!(out.trace.entries.is_empty());
        assert_eq!(out.customizations, vec!["a"]);
    }
}

#[cfg(test)]
mod coupling_tests {
    use super::*;
    use crate::context::ContextPattern;
    use crate::rule::Coupling;
    use geodb::query::DbEvent;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn insert_event(n: u64) -> Event {
        Event::Db(DbEvent::Insert {
            schema: "s".into(),
            class: "C".into(),
            oid: geodb::instance::Oid(n),
        })
    }

    fn ctx() -> SessionContext {
        SessionContext::new("editor", "ops", "entry")
    }

    #[test]
    fn deferred_rules_queue_until_flush() {
        let mut eng: Engine<&str> = Engine::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let log2 = log.clone();
        eng.add_rule(
            Rule::integrity(
                "batch_check",
                EventPattern::db(DbEventKind::Insert),
                Rc::new(move |e, _| {
                    log2.borrow_mut().push(e.describe());
                    vec![]
                }),
            )
            .with_coupling(Coupling::Deferred),
        )
        .unwrap();

        // Three inserts: rule matches (and is reported fired) but the
        // callback has not run yet.
        for i in 0..3 {
            let out = eng.dispatch(insert_event(i), &ctx()).unwrap();
            assert_eq!(out.fired.len(), 1);
        }
        assert!(log.borrow().is_empty());
        assert_eq!(eng.pending_deferred(), 3);

        // Flush = "end of transaction": all three checks run.
        let out = eng.flush_deferred().unwrap();
        assert_eq!(out.fired.len(), 3);
        assert_eq!(log.borrow().len(), 3);
        assert_eq!(eng.pending_deferred(), 0);
        // Flushing again is a no-op.
        assert!(eng.flush_deferred().unwrap().fired.is_empty());
    }

    #[test]
    fn clear_deferred_discards_queued_work() {
        let mut eng: Engine<&str> = Engine::new();
        let hits = Rc::new(RefCell::new(0));
        let hits2 = hits.clone();
        eng.add_rule(
            Rule::integrity(
                "check",
                EventPattern::db(DbEventKind::Insert),
                Rc::new(move |_, _| {
                    *hits2.borrow_mut() += 1;
                    vec![]
                }),
            )
            .with_coupling(Coupling::Deferred),
        )
        .unwrap();
        eng.dispatch(insert_event(1), &ctx()).unwrap();
        assert_eq!(eng.pending_deferred(), 1);
        eng.clear_deferred();
        eng.flush_deferred().unwrap();
        assert_eq!(*hits.borrow(), 0);
    }

    #[test]
    fn deferred_raises_dispatch_on_flush() {
        let mut eng: Engine<&str> = Engine::new();
        // Deferred rule raises an external event; an immediate
        // customization rule answers it.
        eng.add_rule(Rule {
            name: "deferred_raiser".into(),
            event: EventPattern::db(DbEventKind::Insert),
            context: ContextPattern::any(),
            guard: None,
            action: Rc::new(Action::Raise(vec![Event::external("recheck")])),
            group: RuleGroup::Other,
            coupling: Coupling::Deferred,
            priority: 0,
            enabled: true,
        })
        .unwrap();
        eng.add_rule(Rule::customization(
            "answer",
            EventPattern::External {
                name: Some("recheck".into()),
            },
            ContextPattern::any(),
            "payload",
        ))
        .unwrap();

        let out = eng.dispatch(insert_event(1), &ctx()).unwrap();
        assert!(out.customizations.is_empty());
        let out = eng.flush_deferred().unwrap();
        assert_eq!(out.customizations, vec!["payload"]);
        assert!(out.fired_names().contains(&"answer"));
    }

    #[test]
    fn immediate_is_the_default_coupling() {
        let r: Rule<&str> = Rule::customization("r", EventPattern::Any, ContextPattern::any(), "p");
        assert_eq!(r.coupling, Coupling::Immediate);
    }
}
