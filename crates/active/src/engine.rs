//! The rule engine: registration, selection, execution and cascading.
//!
//! Execution model (paper Section 3.3): "it is possible to have a set of
//! customization rules activated by an event, one for each context. In our
//! execution model, only one rule is selected for execution — the one
//! which has the highest priority. We define the highest priority for the
//! most specific rule." Non-customization rules (integrity maintenance
//! etc.) all fire, in priority order. Actions may raise further events;
//! cascades are bounded by a configurable depth.
//!
//! Dispatch runs one of two strategies (see [`DispatchStrategy`]):
//!
//! * **Indexed** (the default): a discrimination index buckets rule
//!   indices by event-pattern discriminant (per [`DbEventKind`],
//!   interface/external by name, wildcard), so matching consults only the
//!   buckets that can possibly match; a winner cache keyed on
//!   `(event discriminant, user, category, application)` turns repeat
//!   interactions — the same user clicking through the same windows,
//!   paper Figs. 4–7 — into a hash lookup. Below
//!   [`EngineConfig::hybrid_linear_threshold`] rules the index is skipped
//!   and matching scans the rule vector directly (the index only pays
//!   for itself once there is something to prune), but the winner cache
//!   stays on. The cache is bounded
//!   ([`EngineConfig::winner_cache_capacity`], two-segment generational
//!   eviction), invalidated by the rule-base epoch on any rule mutation,
//!   and bypassed entirely while any enabled customization rule carries
//!   a guard or extension dimensions (those must re-evaluate every time).
//! * **Linear**: the original scan over every registered rule, kept as
//!   the differential-testing oracle.
//!
//! Both strategies produce identical [`Outcome`]s; `tests` and the
//! `dispatch_differential` property suite enforce this.
//!
//! # Concurrency model
//!
//! Since the concurrent-serving work (`docs/scaling.md`) the engine is a
//! *session handle* over a shared, immutable [`RuleBase`]. Rule data
//! (rules, interned names, discrimination index) lives in a
//! generation-tagged snapshot published copy-on-write behind
//! `Mutex<Arc<RuleSnapshot>>` plus an atomic epoch. Readers keep a cached
//! `Arc` to the snapshot and re-check the epoch with one atomic load per
//! dispatch — the steady-state read path takes no lock and performs no
//! atomic refcount traffic. Mutations lock, clone the snapshot only when
//! another session still holds it (`Arc::make_mut`), and bump the epoch.
//! Everything mutable per dispatch — scratch buffers, the deferred queue,
//! the winner cache — is private to the handle, so distinct sessions
//! dispatch fully in parallel. Fault health lives in shared atomic cells
//! so quarantine decisions are global and exactly counted.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use geodb::query::DbEventKind;

use crate::compiled::{compile, patch, CompileStats, CompiledRules, Delta, EventIds, RuleLite};
use crate::context::SessionContext;
use crate::event::{Event, EventPattern};
use crate::rule::{Action, Coupling, Rule, RuleGroup};
use crate::trace::{Trace, TraceEntry};

/// How customization rules are selected when several match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// The paper's policy: only the single most specific rule fires.
    MostSpecific,
    /// Ablation baseline: every matching customization rule fires.
    FireAll,
}

/// How dispatch finds the matching rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchStrategy {
    /// Discrimination index + winner cache (the default). Small rule
    /// populations (≤ [`EngineConfig::hybrid_linear_threshold`]) are
    /// scanned directly instead of through the index — the hybrid that
    /// keeps cold dispatch no slower than [`DispatchStrategy::Linear`].
    #[default]
    Indexed,
    /// Scan every registered rule — the differential-testing oracle.
    Linear,
    /// Flat decision tables compiled once per published snapshot
    /// generation (see the `compiled` module): dense per-kind jump
    /// tables, interned contexts packed into a `u64` cache key, and
    /// pre-resolved specificity order so a cold most-specific dispatch
    /// stops at the first matching candidate. Falls back to the direct
    /// scan below [`EngineConfig::hybrid_linear_threshold`] like
    /// [`DispatchStrategy::Indexed`] does.
    Compiled,
}

/// What the engine does when a rule's action faults (panics or trips an
/// injected failpoint) during dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Contain the fault: record it, skip the faulting rule, and keep
    /// the cascade going (the default — customization must never take
    /// the generic interface down with it).
    #[default]
    FailOpen,
    /// Abort the dispatch with [`ActiveError::RuleFault`]. The abort is
    /// transactional: deferred firings queued by the aborted dispatch
    /// are rolled back.
    FailClosed,
}

/// Engine configuration. Per session handle: two sessions of the same
/// [`RuleBase`] may run different strategies, selection policies or
/// fault policies over the identical rule snapshot.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    pub selection: SelectionPolicy,
    /// How matching rules are found per event.
    pub strategy: DispatchStrategy,
    /// Maximum cascade depth before the engine aborts the dispatch.
    pub max_cascade_depth: usize,
    /// Record traces (disable in tight benchmark loops).
    pub tracing: bool,
    /// What a rule fault does to the dispatch in progress.
    pub fault_policy: FaultPolicy,
    /// Consecutive faults before a rule is quarantined (circuit-broken:
    /// skipped by matching until [`Engine::clear_quarantine`]). `0`
    /// disables quarantining.
    pub quarantine_threshold: u32,
    /// Rule populations at or below this size are matched by scanning
    /// the rule vector directly under [`DispatchStrategy::Indexed`]
    /// (the winner cache stays active). `0` forces the discrimination
    /// index for every population size.
    pub hybrid_linear_threshold: usize,
    /// Winner-cache entries retained before generational eviction kicks
    /// in (see [`CacheStats::evictions`]).
    pub winner_cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            selection: SelectionPolicy::MostSpecific,
            strategy: DispatchStrategy::Indexed,
            max_cascade_depth: 16,
            tracing: true,
            fault_policy: FaultPolicy::FailOpen,
            quarantine_threshold: 3,
            hybrid_linear_threshold: 16,
            winner_cache_capacity: 8192,
        }
    }
}

/// The pseudo-rule name faults are attributed to when the
/// `engine.cascade` failpoint trips while dequeuing a cascaded event
/// (there is no single rule to blame — any fired rule may have raised
/// it).
pub const CASCADE_PSEUDO_RULE: &str = "<cascade>";

/// Errors from rule registration and dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActiveError {
    DuplicateRule(String),
    UnknownRule(String),
    /// A cascade exceeded `max_cascade_depth` — almost always a rule cycle.
    CascadeOverflow {
        depth: usize,
        event: String,
    },
    /// A rule's action panicked or tripped an injected failpoint and the
    /// engine runs [`FaultPolicy::FailClosed`].
    RuleFault {
        rule: String,
        depth: usize,
        cause: String,
    },
}

impl std::fmt::Display for ActiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActiveError::DuplicateRule(n) => write!(f, "duplicate rule `{n}`"),
            ActiveError::UnknownRule(n) => write!(f, "unknown rule `{n}`"),
            ActiveError::CascadeOverflow { depth, event } => {
                write!(
                    f,
                    "cascade overflow at depth {depth} on {event} (rule cycle?)"
                )
            }
            ActiveError::RuleFault { rule, depth, cause } => {
                write!(f, "rule `{rule}` faulted at depth {depth}: {cause}")
            }
        }
    }
}

impl std::error::Error for ActiveError {}

/// One contained rule fault, reported in [`Outcome::faults`] under
/// [`FaultPolicy::FailOpen`] (under `FailClosed` the first fault aborts
/// the dispatch instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The faulting rule, or [`CASCADE_PSEUDO_RULE`].
    pub rule: String,
    /// Cascade depth at which the fault occurred.
    pub depth: usize,
    /// Panic message or injected-fault description.
    pub cause: String,
}

/// Per-rule fault bookkeeping for the circuit breaker (a point-in-time
/// view of the shared health cell).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleHealth {
    /// Faults since the rule last executed cleanly.
    pub consecutive_faults: u32,
    /// Faults over the rule's lifetime.
    pub total_faults: u64,
    /// Quarantined rules are skipped by matching until
    /// [`Engine::clear_quarantine`] restores them.
    pub quarantined: bool,
}

/// Shared, atomically-updated fault state for one rule. The cells live in
/// `Arc`s that survive copy-on-write snapshot clones, so every session
/// observes the same counters and quarantine transitions happen exactly
/// once (compare-and-swap) no matter how many sessions fault the rule
/// concurrently.
#[derive(Debug, Default)]
struct HealthCell {
    consecutive: AtomicU32,
    total: AtomicU64,
    quarantined: AtomicBool,
}

impl HealthCell {
    fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Relaxed)
    }

    fn view(&self) -> RuleHealth {
        RuleHealth {
            consecutive_faults: self.consecutive.load(Ordering::Relaxed),
            total_faults: self.total.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

/// Extract a printable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Everything a dispatch produced.
#[derive(Debug, Clone)]
pub struct Outcome<P> {
    /// Customization payloads, in firing order.
    pub customizations: Vec<P>,
    /// Names of every rule that fired (interned — cloning is a pointer
    /// bump; see [`Outcome::fired_names`] for a `&str` view).
    pub fired: Vec<Arc<str>>,
    /// Total events processed (1 + cascaded).
    pub events_processed: usize,
    /// The execution trace (empty when tracing is off).
    pub trace: Trace,
    /// Rule faults contained by [`FaultPolicy::FailOpen`], in order of
    /// occurrence (always empty under `FailClosed` — the first fault
    /// aborts).
    pub faults: Vec<FaultRecord>,
}

impl<P> Outcome<P> {
    /// The single selected customization, if any (the common case under
    /// `MostSpecific`).
    pub fn customization(&self) -> Option<&P> {
        self.customizations.first()
    }

    /// The fired rule names as plain string slices.
    pub fn fired_names(&self) -> Vec<&str> {
        self.fired.iter().map(|n| &**n).collect()
    }

    fn empty() -> Outcome<P> {
        Outcome {
            customizations: Vec::new(),
            fired: Vec::new(),
            events_processed: 0,
            trace: Trace::default(),
            faults: Vec::new(),
        }
    }
}

/// Winner-cache statistics (see `:metrics` and `docs/dispatch.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Dispatched events answered from the cache.
    pub hits: u64,
    /// Cacheable events that had to run customization matching.
    pub misses: u64,
    /// Times a rule mutation flushed a non-empty cache.
    pub invalidations: u64,
    /// Entries dropped by the capacity bound (generational eviction).
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
}

// ---------------------------------------------------------------------------
// Discrimination index
// ---------------------------------------------------------------------------

/// Rule indices bucketed by event-pattern discriminant. An event only
/// consults the buckets that can possibly match it, so wildcard-free rule
/// populations dispatch in time proportional to the matching candidates,
/// not the rule count.
#[derive(Debug, Default, Clone)]
struct Buckets {
    db_by_kind: HashMap<DbEventKind, Vec<usize>>,
    /// `Db` patterns with `kind: None` — match any database event.
    db_any: Vec<usize>,
    iface_by_name: HashMap<String, Vec<usize>>,
    /// `Interface` patterns with `name: None` (e.g. source-prefix only).
    iface_any: Vec<usize>,
    ext_by_name: HashMap<String, Vec<usize>>,
    ext_any: Vec<usize>,
    /// `EventPattern::Any` — consulted for every event.
    wildcard: Vec<usize>,
}

/// Visit the union of up to three ascending, disjoint index runs in
/// ascending order — the allocation-free replacement for the old
/// collect-into-scratch-then-sort candidate path, which dominated
/// cold-dispatch cost (`BENCH_dispatch.json` regression).
fn merge_runs(a: &[usize], b: &[usize], c: &[usize], f: &mut impl FnMut(usize)) {
    // Overwhelmingly common: at most one run is non-empty.
    match (a.is_empty(), b.is_empty(), c.is_empty()) {
        (false, true, true) => return a.iter().for_each(|&i| f(i)),
        (true, false, true) => return b.iter().for_each(|&i| f(i)),
        (true, true, false) => return c.iter().for_each(|&i| f(i)),
        (true, true, true) => return,
        _ => {}
    }
    let (mut ia, mut ib, mut ic) = (0, 0, 0);
    loop {
        let na = a.get(ia).copied().unwrap_or(usize::MAX);
        let nb = b.get(ib).copied().unwrap_or(usize::MAX);
        let nc = c.get(ic).copied().unwrap_or(usize::MAX);
        let m = na.min(nb).min(nc);
        if m == usize::MAX {
            return;
        }
        if m == na {
            ia += 1;
        } else if m == nb {
            ib += 1;
        } else {
            ic += 1;
        }
        f(m);
    }
}

impl Buckets {
    fn insert(&mut self, idx: usize, pattern: &EventPattern) {
        match pattern {
            EventPattern::Any => self.wildcard.push(idx),
            EventPattern::Db { kind: Some(k), .. } => {
                self.db_by_kind.entry(*k).or_default().push(idx)
            }
            EventPattern::Db { kind: None, .. } => self.db_any.push(idx),
            EventPattern::Interface { name: Some(n), .. } => {
                self.iface_by_name.entry(n.clone()).or_default().push(idx)
            }
            EventPattern::Interface { name: None, .. } => self.iface_any.push(idx),
            EventPattern::External { name: Some(n) } => {
                self.ext_by_name.entry(n.clone()).or_default().push(idx)
            }
            EventPattern::External { name: None } => self.ext_any.push(idx),
        }
    }

    /// Visit every candidate index for `event` in ascending registration
    /// order (the order the linear scan uses), without allocating.
    fn for_each_candidate(&self, event: &Event, f: &mut impl FnMut(usize)) {
        let empty: &[usize] = &[];
        let (keyed, any): (&[usize], &[usize]) = match event {
            Event::Db(e) => (
                self.db_by_kind.get(&e.kind()).map_or(empty, |v| v),
                &self.db_any,
            ),
            Event::Interface { name, .. } => (
                self.iface_by_name.get(name).map_or(empty, |v| v),
                &self.iface_any,
            ),
            Event::External { name } => (
                self.ext_by_name.get(name).map_or(empty, |v| v),
                &self.ext_any,
            ),
        };
        merge_runs(keyed, any, &self.wildcard, f);
    }

    fn buckets_mut(&mut self) -> impl Iterator<Item = &mut Vec<usize>> {
        self.db_by_kind
            .values_mut()
            .chain(self.iface_by_name.values_mut())
            .chain(self.ext_by_name.values_mut())
            .chain([
                &mut self.db_any,
                &mut self.iface_any,
                &mut self.ext_any,
                &mut self.wildcard,
            ])
    }

    /// Drop `removed` and shift every later index down by one.
    fn remove_index(&mut self, removed: usize) {
        for b in self.buckets_mut() {
            b.retain_mut(|v| {
                if *v == removed {
                    return false;
                }
                if *v > removed {
                    *v -= 1;
                }
                true
            });
        }
    }

    /// Drop a sorted batch of removed indices and remap the survivors.
    fn remap_removed(&mut self, removed: &[usize]) {
        for b in self.buckets_mut() {
            b.retain_mut(|v| match removed.binary_search(v) {
                Ok(_) => false,
                Err(shift) => {
                    *v -= shift;
                    true
                }
            });
        }
    }
}

#[derive(Debug, Default, Clone)]
struct RuleIndex {
    cust: Buckets,
    other: Buckets,
    /// Enabled customization rules the winner cache cannot represent
    /// (guard or extension-dimension conditions). While non-zero the
    /// cache is bypassed entirely.
    uncacheable_cust: usize,
}

impl RuleIndex {
    fn insert(&mut self, idx: usize, group: RuleGroup, pattern: &EventPattern) {
        if group == RuleGroup::Customization {
            self.cust.insert(idx, pattern);
        } else {
            self.other.insert(idx, pattern);
        }
    }

    fn remove_index(&mut self, removed: usize) {
        self.cust.remove_index(removed);
        self.other.remove_index(removed);
    }

    fn remap_removed(&mut self, removed: &[usize]) {
        self.cust.remap_removed(removed);
        self.other.remap_removed(removed);
    }
}

/// A customization rule whose match cannot be keyed by the winner cache:
/// guards see arbitrary state, and extension dimensions are outside the
/// cache key. Such rules must re-evaluate on every dispatch.
fn rule_uncacheable<P>(r: &Rule<P>) -> bool {
    r.group == RuleGroup::Customization && r.enabled && r.needs_interpreted_match()
}

// ---------------------------------------------------------------------------
// Winner cache
// ---------------------------------------------------------------------------

/// The event fields that rule patterns can observe, owned for storage in
/// a cache slot. Two events with equal keys match exactly the same
/// pattern set.
#[derive(Debug, Clone, PartialEq)]
enum EventKey {
    Db {
        kind: DbEventKind,
        schema: String,
        class: Option<String>,
    },
    Interface {
        name: String,
        source: String,
    },
    External {
        name: String,
    },
}

impl EventKey {
    fn of(event: &Event) -> EventKey {
        match event {
            Event::Db(e) => EventKey::Db {
                kind: e.kind(),
                schema: e.schema().to_string(),
                class: e.class().map(str::to_string),
            },
            Event::Interface { name, source } => EventKey::Interface {
                name: name.clone(),
                source: source.clone(),
            },
            Event::External { name } => EventKey::External { name: name.clone() },
        }
    }

    /// Borrow-compare against a live event (no allocation on the hit path).
    fn matches(&self, event: &Event) -> bool {
        match (self, event) {
            (
                EventKey::Db {
                    kind,
                    schema,
                    class,
                },
                Event::Db(e),
            ) => {
                *kind == e.kind() && schema.as_str() == e.schema() && class.as_deref() == e.class()
            }
            (
                EventKey::Interface { name, source },
                Event::Interface {
                    name: en,
                    source: es,
                },
            ) => name == en && source == es,
            (EventKey::External { name }, Event::External { name: en }) => name == en,
            _ => false,
        }
    }
}

/// Hash of the cache key `(event discriminant, user, category,
/// application)`, computed without allocating.
fn cache_key_hash(event: &Event, ctx: &SessionContext) -> u64 {
    let mut h = DefaultHasher::new();
    match event {
        Event::Db(e) => {
            0u8.hash(&mut h);
            e.kind().hash(&mut h);
            e.schema().hash(&mut h);
            e.class().hash(&mut h);
        }
        Event::Interface { name, source } => {
            1u8.hash(&mut h);
            name.hash(&mut h);
            source.hash(&mut h);
        }
        Event::External { name } => {
            2u8.hash(&mut h);
            name.hash(&mut h);
        }
    }
    ctx.user.hash(&mut h);
    ctx.category.hash(&mut h);
    ctx.application.hash(&mut h);
    h.finish()
}

/// A cached customization-matching result. Selection is cached in a
/// policy-independent form: the full matched set (ascending registration
/// order, what `FireAll` needs) plus the most-specific winner.
#[derive(Debug)]
struct CacheSlot {
    event: EventKey,
    user: String,
    category: String,
    application: String,
    matched_cust: Vec<usize>,
    winner: Option<usize>,
}

impl CacheSlot {
    fn matches(&self, event: &Event, ctx: &SessionContext) -> bool {
        self.user == ctx.user
            && self.category == ctx.category
            && self.application == ctx.application
            && self.event.matches(event)
    }
}

/// Bounded winner cache: two generational segments (`hot`, `cold`).
/// Inserts land in `hot`; when `hot` reaches half the configured
/// capacity the `cold` segment is discarded (counted in `evictions`)
/// and `hot` is demoted wholesale — a scan-resistant approximation of
/// LRU that costs O(1) per insert and never holds more than
/// `winner_cache_capacity` entries. Lookups probe `hot` then `cold`,
/// promoting cold hits back into `hot`, so a working set that fits in
/// capacity keeps hitting across demotions. Millions of distinct
/// `(event, user, category, application)` contexts therefore recycle a
/// fixed footprint instead of growing without bound.
#[derive(Debug, Default)]
struct WinnerCache {
    hot: HashMap<u64, Vec<CacheSlot>>,
    cold: HashMap<u64, Vec<CacheSlot>>,
    /// Packed-key segments used by the compiled tier: the key is the
    /// interned `(event discriminant, packed context)` pair, exact by
    /// construction — no slot verification, no string storage.
    phot: HashMap<(u64, u64), PackedSlot>,
    pcold: HashMap<(u64, u64), PackedSlot>,
    hot_len: usize,
    cold_len: usize,
    /// Rule-base epoch the contents were computed under.
    generation: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
    evictions: u64,
}

impl WinnerCache {
    fn len(&self) -> usize {
        self.hot_len + self.cold_len
    }

    fn flush(&mut self) {
        self.hot.clear();
        self.cold.clear();
        self.phot.clear();
        self.pcold.clear();
        self.hot_len = 0;
        self.cold_len = 0;
    }

    fn lookup(&mut self, hash: u64, event: &Event, ctx: &SessionContext) -> Option<&CacheSlot> {
        let hot_pos = self
            .hot
            .get(&hash)
            .and_then(|v| v.iter().position(|s| s.matches(event, ctx)));
        if let Some(pos) = hot_pos {
            return self.hot.get(&hash).map(|v| &v[pos]);
        }
        // Cold hit: promote the slot into the hot segment so the live
        // working set survives the next demotion.
        let slot = {
            let v = self.cold.get_mut(&hash)?;
            let pos = v.iter().position(|s| s.matches(event, ctx))?;
            let s = v.swap_remove(pos);
            if v.is_empty() {
                self.cold.remove(&hash);
            }
            s
        };
        self.cold_len -= 1;
        self.hot_len += 1;
        let v = self.hot.entry(hash).or_default();
        v.push(slot);
        v.last()
    }

    fn insert(&mut self, hash: u64, slot: CacheSlot, capacity: usize) {
        self.demote_if_full(capacity);
        self.hot.entry(hash).or_default().push(slot);
        self.hot_len += 1;
    }

    /// Generational demotion shared by both key spaces: `hot_len` /
    /// `cold_len` count string- and packed-keyed slots together, so one
    /// demotion rotates both segment pairs and the configured capacity
    /// bounds the combined footprint.
    fn demote_if_full(&mut self, capacity: usize) {
        let segment = (capacity / 2).max(1);
        if self.hot_len >= segment {
            let dropped = self.cold_len;
            self.cold = std::mem::take(&mut self.hot);
            self.pcold = std::mem::take(&mut self.phot);
            self.cold_len = std::mem::replace(&mut self.hot_len, 0);
            self.evictions += dropped as u64;
        }
    }

    fn lookup_packed(&mut self, key: (u64, u64)) -> Option<&PackedSlot> {
        if self.phot.contains_key(&key) {
            return self.phot.get(&key);
        }
        let slot = self.pcold.remove(&key)?;
        self.cold_len -= 1;
        self.hot_len += 1;
        Some(self.phot.entry(key).or_insert(slot))
    }

    fn insert_packed(&mut self, key: (u64, u64), slot: PackedSlot, capacity: usize) {
        self.demote_if_full(capacity);
        if self.phot.insert(key, slot).is_none() {
            self.hot_len += 1;
        }
    }
}

/// A packed-key cached matching result (compiled tier): same payload as
/// [`CacheSlot`] minus the verification strings — the interned key is
/// collision-free while [`CompiledRules::cacheable`] holds.
#[derive(Debug)]
struct PackedSlot {
    matched_cust: Vec<usize>,
    winner: Option<usize>,
}

/// Reusable per-dispatch buffers. Private to the session handle, so the
/// hot loop allocates nothing once the buffers have warmed up — and no
/// other session ever contends on them.
#[derive(Debug, Default)]
struct Scratch {
    queue: VecDeque<QueuedEvent>,
    matched_cust: Vec<usize>,
    matched_other: Vec<usize>,
    to_fire: Vec<usize>,
    shadowed: Vec<usize>,
}

// ---------------------------------------------------------------------------
// Shared rule base and published snapshots
// ---------------------------------------------------------------------------

/// A rule firing queued for [`Engine::flush_deferred`]: the rule's
/// interned name, its action, and the triggering event and context.
type DeferredFiring<P> = (Arc<str>, Arc<Action<P>>, Event, SessionContext);

/// One cascade-queue entry: depth, the event, and the interned name of
/// the rule whose action raised it (`None` for the root event). The
/// raiser is what lets a request trace link each cascade step back to
/// its cause.
type QueuedEvent = (usize, Event, Option<Arc<str>>);

/// The immutable rule data a dispatch reads: rules, interned names, the
/// name map, the discrimination index and the shared health cells.
/// Published copy-on-write — a snapshot is never mutated after another
/// session can observe it.
struct RuleSnapshot<P> {
    rules: Vec<Rule<P>>,
    /// Interned rule names, parallel to `rules`; firing clones a pointer.
    names: Vec<Arc<str>>,
    by_name: HashMap<String, usize>,
    index: RuleIndex,
    /// Shared fault-health cells, parallel to `rules`. The `Arc`s
    /// survive copy-on-write clones, so every session sees the same
    /// counters.
    health: Vec<Arc<HealthCell>>,
    /// Epoch at which this snapshot was published.
    generation: u64,
}

impl<P> RuleSnapshot<P> {
    fn empty() -> RuleSnapshot<P> {
        RuleSnapshot {
            rules: Vec::new(),
            names: Vec::new(),
            by_name: HashMap::new(),
            index: RuleIndex::default(),
            health: Vec::new(),
            generation: 0,
        }
    }
}

impl<P: Clone> Clone for RuleSnapshot<P> {
    fn clone(&self) -> Self {
        RuleSnapshot {
            rules: self.rules.clone(),
            names: self.names.clone(),
            by_name: self.by_name.clone(),
            index: self.index.clone(),
            health: self.health.clone(),
            generation: self.generation,
        }
    }
}

impl<P: Clone> RuleSnapshot<P> {
    fn add(&mut self, rule: Rule<P>) -> Result<(), ActiveError> {
        if self.by_name.contains_key(&rule.name) {
            return Err(ActiveError::DuplicateRule(rule.name.clone()));
        }
        let idx = self.rules.len();
        self.by_name.insert(rule.name.clone(), idx);
        self.names.push(Arc::from(rule.name.as_str()));
        self.index.insert(idx, rule.group, &rule.event);
        if rule_uncacheable(&rule) {
            self.index.uncacheable_cust += 1;
        }
        self.rules.push(rule);
        self.health.push(Arc::new(HealthCell::default()));
        Ok(())
    }

    fn remove(&mut self, name: &str, quarantined: &AtomicUsize) -> Result<Rule<P>, ActiveError> {
        let idx = self
            .by_name
            .remove(name)
            .ok_or_else(|| ActiveError::UnknownRule(name.to_string()))?;
        let rule = self.rules.remove(idx);
        self.names.remove(idx);
        if self.health.remove(idx).is_quarantined() {
            quarantined.fetch_sub(1, Ordering::Relaxed);
        }
        if rule_uncacheable(&rule) {
            self.index.uncacheable_cust -= 1;
        }
        self.index.remove_index(idx);
        for v in self.by_name.values_mut() {
            if *v > idx {
                *v -= 1;
            }
        }
        Ok(rule)
    }

    fn set_enabled(&mut self, name: &str, enabled: bool) -> Result<(), ActiveError> {
        let idx = *self
            .by_name
            .get(name)
            .ok_or_else(|| ActiveError::UnknownRule(name.to_string()))?;
        let was = rule_uncacheable(&self.rules[idx]);
        self.rules[idx].enabled = enabled;
        let now = rule_uncacheable(&self.rules[idx]);
        if now && !was {
            self.index.uncacheable_cust += 1;
        } else if was && !now {
            self.index.uncacheable_cust -= 1;
        }
        Ok(())
    }

    fn remove_prefix(&mut self, prefix: &str, quarantined: &AtomicUsize) -> usize {
        let removed: Vec<usize> = self
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.name.starts_with(prefix))
            .map(|(i, _)| i)
            .collect();
        if removed.is_empty() {
            return 0;
        }
        for &i in &removed {
            if rule_uncacheable(&self.rules[i]) {
                self.index.uncacheable_cust -= 1;
            }
        }
        for &i in &removed {
            if self.health[i].is_quarantined() {
                quarantined.fetch_sub(1, Ordering::Relaxed);
            }
        }
        self.rules.retain(|r| !r.name.starts_with(prefix));
        let mut i = 0;
        self.names.retain(|_| {
            let keep = removed.binary_search(&i).is_err();
            i += 1;
            keep
        });
        let mut i = 0;
        self.health.retain(|_| {
            let keep = removed.binary_search(&i).is_err();
            i += 1;
            keep
        });
        self.by_name.retain(|n, _| !n.starts_with(prefix));
        for v in self.by_name.values_mut() {
            *v -= removed.partition_point(|&r| r < *v);
        }
        self.index.remap_removed(&removed);
        removed.len()
    }
}

/// State shared by every session handle of one rule base.
struct EngineShared<P> {
    /// The current snapshot. Writers lock, mutate copy-on-write
    /// (`Arc::make_mut` — in place when no reader still holds the old
    /// `Arc`), and bump `epoch` before unlocking.
    published: Mutex<Arc<RuleSnapshot<P>>>,
    /// Monotonic rule-base epoch: bumped by every rule mutation and by
    /// quarantine transitions (which invalidate winner caches without
    /// republishing the snapshot). Readers compare against their cached
    /// value — one atomic load per dispatch in the steady state.
    epoch: AtomicU64,
    /// A permanently-empty snapshot handles park their `Arc` on while
    /// mutating, so the published refcount can drop to one and
    /// `Arc::make_mut` avoids the deep clone.
    empty: Arc<RuleSnapshot<P>>,
    /// Dispatches served across every session (telemetry).
    dispatch_count: AtomicU64,
    /// Rule faults contained or surfaced across every session.
    rule_fault_count: AtomicU64,
    /// Rules currently quarantined (exact: transitions use
    /// compare-and-swap on the health cells).
    quarantined_count: AtomicUsize,
    /// The compiled-tier artifact for the current snapshot *content*
    /// generation, built lazily (or via [`RuleBase::precompile`]) and
    /// shared by every `Compiled` session. Keyed on
    /// `RuleSnapshot::generation`, not the epoch: quarantine flips bump
    /// the epoch only, and compiled tables are quarantine-agnostic
    /// (health is re-checked per candidate at dispatch).
    compiled: Mutex<Option<Arc<CompiledRules>>>,
    /// Recent snapshot deltas, so `ensure_compiled` can patch the
    /// standing artifact across single-rule mutations instead of
    /// recompiling (`compiled::patch`).
    patches: Mutex<PatchLog>,
}

/// Bounded log of snapshot deltas awaiting incremental application to
/// the compiled artifact. Entries chain `from_generation →
/// to_generation` in mutation order; [`PatchLog::chain`] extracts the
/// contiguous run between two generations, or `None` when part of the
/// run was evicted. The cap is deliberate: a bulk install floods the
/// log past it, breaking the chain — exactly the mutations that
/// *should* take the full-compile path.
#[derive(Default)]
struct PatchLog {
    deltas: VecDeque<(u64, u64, Delta)>,
}

const PATCH_LOG_CAP: usize = 32;

impl PatchLog {
    fn record(&mut self, from: u64, to: u64, delta: Delta) {
        if self.deltas.len() >= PATCH_LOG_CAP {
            self.deltas.pop_front();
        }
        self.deltas.push_back((from, to, delta));
    }

    fn chain(&self, from: u64, to: u64) -> Option<Vec<Delta>> {
        let mut cur = from;
        let mut out = Vec::new();
        for (f, t, d) in &self.deltas {
            if *t <= from {
                continue;
            }
            if *f != cur {
                return None;
            }
            out.push(d.clone());
            cur = *t;
            if cur == to {
                return Some(out);
            }
        }
        None
    }

    /// Deltas at or below `upto` can never be needed again once an
    /// artifact for that generation exists.
    fn prune(&mut self, upto: u64) {
        self.deltas.retain(|(_, t, _)| *t > upto);
    }
}

impl<P> EngineShared<P> {
    fn new() -> EngineShared<P> {
        let empty = Arc::new(RuleSnapshot::empty());
        EngineShared {
            published: Mutex::new(Arc::clone(&empty)),
            epoch: AtomicU64::new(0),
            empty,
            dispatch_count: AtomicU64::new(0),
            rule_fault_count: AtomicU64::new(0),
            quarantined_count: AtomicUsize::new(0),
            compiled: Mutex::new(None),
            patches: Mutex::new(PatchLog::default()),
        }
    }
}

/// Fetch (or build) the compiled artifact for `snap`'s content
/// generation. The compile itself runs at most once per generation per
/// base — concurrent sessions serialize on the artifact lock, and
/// whoever arrives first pays the (measured, reported) compile cost;
/// everyone else clones an `Arc`.
fn ensure_compiled<P>(shared: &EngineShared<P>, snap: &RuleSnapshot<P>) -> Arc<CompiledRules> {
    let mut slot = shared.compiled.lock().unwrap();
    if let Some(c) = slot.as_ref() {
        if c.generation == snap.generation {
            return Arc::clone(c);
        }
        // Single-rule mutations recorded a delta chain: splice it into
        // the standing artifact (`compiled::patch`) instead of paying a
        // full recompile. Falls through on any unpatchable delta.
        let chain = shared
            .patches
            .lock()
            .unwrap()
            .chain(c.generation, snap.generation);
        if let Some(chain) = chain {
            let t0 = std::time::Instant::now();
            if let Some(mut patched) = patch(c, &chain, snap.generation) {
                let ns = t0.elapsed().as_nanos() as u64;
                patched.stats.compile_ns = ns;
                if obs::enabled() {
                    obs::counter_add("engine.compile_patches", 1);
                    obs::record_nanos("engine.patch_latency", ns);
                }
                let built = Arc::new(patched);
                *slot = Some(Arc::clone(&built));
                shared.patches.lock().unwrap().prune(snap.generation);
                return built;
            }
        }
    }
    let t0 = std::time::Instant::now();
    let mut built = compile(&snap.rules, snap.generation);
    let ns = t0.elapsed().as_nanos() as u64;
    built.stats.compile_ns = ns;
    if obs::enabled() {
        obs::counter_add("engine.compiles", 1);
        obs::record_nanos("engine.compile_latency", ns);
    }
    let built = Arc::new(built);
    *slot = Some(Arc::clone(&built));
    shared.patches.lock().unwrap().prune(snap.generation);
    built
}

/// A cloneable, `Send + Sync` handle to a shared rule base. Each call to
/// [`RuleBase::session`] yields an independent [`Engine`] handle — same
/// rules, private winner cache / scratch / deferred queue — that can be
/// moved to another thread and dispatched in parallel with every other
/// session.
pub struct RuleBase<P> {
    shared: Arc<EngineShared<P>>,
    config: EngineConfig,
}

impl<P> Clone for RuleBase<P> {
    fn clone(&self) -> Self {
        RuleBase {
            shared: Arc::clone(&self.shared),
            config: self.config,
        }
    }
}

impl<P: Clone> Default for RuleBase<P> {
    fn default() -> Self {
        RuleBase::new()
    }
}

impl<P: Clone> RuleBase<P> {
    pub fn new() -> RuleBase<P> {
        RuleBase::with_config(EngineConfig::default())
    }

    pub fn with_config(config: EngineConfig) -> RuleBase<P> {
        RuleBase {
            shared: Arc::new(EngineShared::new()),
            config,
        }
    }

    /// Open a new session handle with the base's default configuration.
    pub fn session(&self) -> Engine<P> {
        Engine::from_shared(Arc::clone(&self.shared), self.config)
    }

    /// Open a session with its own configuration (strategy, selection,
    /// fault policy… are all per session).
    pub fn session_with(&self, config: EngineConfig) -> Engine<P> {
        Engine::from_shared(Arc::clone(&self.shared), config)
    }

    /// Current rule-base epoch (bumped by every mutation and quarantine
    /// transition).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Dispatches served across every session of this base.
    pub fn total_dispatches(&self) -> u64 {
        self.shared.dispatch_count.load(Ordering::Relaxed)
    }

    /// Rule faults contained or surfaced across every session.
    pub fn rule_faults(&self) -> u64 {
        self.shared.rule_fault_count.load(Ordering::Relaxed)
    }

    /// Rules currently quarantined across the base.
    pub fn quarantined_count(&self) -> usize {
        self.shared.quarantined_count.load(Ordering::Relaxed)
    }

    /// The configuration sessions opened via [`RuleBase::session`] get.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Compile the current snapshot eagerly (idempotent per content
    /// generation). Call after a batch of rule mutations to take the
    /// one-time compile cost here instead of on the first compiled
    /// dispatch that follows the epoch flip.
    pub fn precompile(&self) -> CompileStats {
        let snap = Arc::clone(&self.shared.published.lock().unwrap());
        ensure_compiled(&self.shared, &snap).stats
    }

    /// Stats of the most recent compile, if any session (or
    /// [`RuleBase::precompile`]) has compiled yet.
    pub fn compiled_stats(&self) -> Option<CompileStats> {
        self.shared
            .compiled
            .lock()
            .unwrap()
            .as_ref()
            .map(|c| c.stats)
    }

    /// Drop the cached compiled artifact: the next compiled dispatch
    /// (or [`RuleBase::precompile`]) pays a full compile, never an
    /// incremental patch. Reclaims artifact memory on an idle base;
    /// benchmarks also use it to compare full-compile cost against the
    /// patch path.
    pub fn invalidate_compiled(&self) {
        *self.shared.compiled.lock().unwrap() = None;
    }
}

/// Per-session mutable state: nothing in here is ever observed by
/// another session.
struct SessionState<P> {
    cache: WinnerCache,
    /// Firings queued by rules with deferred coupling.
    deferred: Vec<DeferredFiring<P>>,
    scratch: Scratch,
    /// Dispatches served by this handle.
    dispatch_count: u64,
    /// Session memo of the shared compiled artifact, refreshed when the
    /// snapshot's content generation moves — steady-state compiled
    /// dispatch touches no lock.
    compiled: Option<Arc<CompiledRules>>,
}

impl<P> Default for SessionState<P> {
    fn default() -> Self {
        SessionState {
            cache: WinnerCache::default(),
            deferred: Vec::new(),
            scratch: Scratch::default(),
            dispatch_count: 0,
            compiled: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Engine (session handle)
// ---------------------------------------------------------------------------

/// The active mechanism: a session handle over a shared [`RuleBase`].
///
/// A freshly constructed `Engine` owns a brand-new rule base; additional
/// sessions over the same rules come from [`Engine::session`] /
/// [`Engine::rule_base`]. All rule-management and dispatch methods keep
/// their single-threaded signatures — a lone handle behaves exactly like
/// the historical single-threaded engine.
pub struct Engine<P> {
    shared: Arc<EngineShared<P>>,
    /// Cached snapshot; revalidated against `shared.epoch` with one
    /// atomic load per dispatch (no lock, no refcount traffic while the
    /// rule base is quiescent).
    snap: Arc<RuleSnapshot<P>>,
    /// `shared.epoch` value `snap` was cached at.
    snap_epoch: u64,
    /// Refresh `snap` automatically at each dispatch (default). Turn
    /// off to pin a snapshot for deterministic comparisons, then call
    /// [`Engine::sync`] / [`Engine::sync_with`] explicitly.
    auto_sync: bool,
    config: EngineConfig,
    state: SessionState<P>,
}

impl<P: Clone> Default for Engine<P> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<P: Clone> Engine<P> {
    pub fn new() -> Engine<P> {
        Engine::with_config(EngineConfig::default())
    }

    pub fn with_config(config: EngineConfig) -> Engine<P> {
        Engine::from_shared(Arc::new(EngineShared::new()), config)
    }

    fn from_shared(shared: Arc<EngineShared<P>>, config: EngineConfig) -> Engine<P> {
        let snap = Arc::clone(&shared.published.lock().unwrap());
        let snap_epoch = shared.epoch.load(Ordering::Acquire);
        Engine {
            shared,
            snap,
            snap_epoch,
            auto_sync: true,
            config,
            state: SessionState::default(),
        }
    }

    /// A cloneable handle to this engine's shared rule base; hand it to
    /// other threads and open [`RuleBase::session`]s there.
    pub fn rule_base(&self) -> RuleBase<P> {
        RuleBase {
            shared: Arc::clone(&self.shared),
            config: self.config,
        }
    }

    /// Open another session over the same rule base (same configuration
    /// as this handle; private cache/scratch/deferred state).
    pub fn session(&self) -> Engine<P> {
        Engine::from_shared(Arc::clone(&self.shared), self.config)
    }

    pub fn config(&self) -> EngineConfig {
        self.config
    }

    pub fn set_selection(&mut self, policy: SelectionPolicy) {
        if self.config.selection != policy {
            // Compiled-tier cache slots recorded under MostSpecific with
            // tracing off carry only the winner (early-exit); they are
            // not valid under FireAll. Policy changes are rare — flush.
            self.state.cache.flush();
        }
        self.config.selection = policy;
    }

    pub fn strategy(&self) -> DispatchStrategy {
        self.config.strategy
    }

    pub fn set_strategy(&mut self, strategy: DispatchStrategy) {
        if self.config.strategy != strategy {
            // String- and packed-key slots don't carry over between
            // strategies; start the new arm cold.
            self.state.cache.flush();
        }
        self.config.strategy = strategy;
    }

    pub fn fault_policy(&self) -> FaultPolicy {
        self.config.fault_policy
    }

    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.config.fault_policy = policy;
    }

    /// Whether dispatch refreshes the cached snapshot automatically.
    pub fn auto_sync(&self) -> bool {
        self.auto_sync
    }

    /// Pin (`false`) or auto-refresh (`true`) the cached rule snapshot.
    pub fn set_auto_sync(&mut self, on: bool) {
        self.auto_sync = on;
    }

    /// Refresh the cached snapshot to the latest published epoch.
    pub fn sync(&mut self) {
        self.sync_snapshot();
    }

    /// Adopt `other`'s exact snapshot (both handles must come from the
    /// same rule base) — the tool differential tests use to compare two
    /// strategies over a bitwise-identical rule view while a writer
    /// mutates concurrently.
    pub fn sync_with(&mut self, other: &Engine<P>) {
        assert!(
            Arc::ptr_eq(&self.shared, &other.shared),
            "sync_with requires sessions of the same rule base"
        );
        self.snap = Arc::clone(&other.snap);
        self.snap_epoch = other.snap_epoch;
    }

    /// Rule faults contained or surfaced across every session of the
    /// rule base (including `engine.cascade` pseudo-rule faults).
    pub fn rule_faults(&self) -> u64 {
        self.shared.rule_fault_count.load(Ordering::Relaxed)
    }

    /// Names of every quarantined rule, in registration order (as seen
    /// by this handle's snapshot).
    pub fn quarantined(&self) -> Vec<&str> {
        self.snap
            .health
            .iter()
            .enumerate()
            .filter(|(_, h)| h.is_quarantined())
            .map(|(i, _)| &*self.snap.names[i])
            .collect()
    }

    /// Fault bookkeeping for one rule.
    pub fn rule_health(&self, name: &str) -> Option<RuleHealth> {
        self.snap
            .by_name
            .get(name)
            .map(|&i| self.snap.health[i].view())
    }

    /// Lift a rule's quarantine and reset its fault counters. The rule
    /// participates in matching again from the next dispatch, in every
    /// session.
    pub fn clear_quarantine(&mut self, name: &str) -> Result<(), ActiveError> {
        self.sync_snapshot();
        let idx = *self
            .snap
            .by_name
            .get(name)
            .ok_or_else(|| ActiveError::UnknownRule(name.to_string()))?;
        let cell = &self.snap.health[idx];
        if cell.quarantined.swap(false, Ordering::AcqRel) {
            self.shared
                .quarantined_count
                .fetch_sub(1, Ordering::Relaxed);
        }
        cell.consecutive.store(0, Ordering::Relaxed);
        cell.total.store(0, Ordering::Relaxed);
        // Quarantine state feeds cached winners: bump the epoch so every
        // session flushes its winner cache before trusting them again.
        self.snap_epoch = self.shared.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        Ok(())
    }

    /// Number of dispatches served by this session handle.
    pub fn dispatches(&self) -> u64 {
        self.state.dispatch_count
    }

    /// Rule-base epoch: bumped on every rule mutation (and quarantine
    /// transition).
    pub fn rules_generation(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Flush this session's winner cache because an input *outside* the
    /// rule base changed — e.g. the serving layer published a new
    /// database epoch. Cached winners are keyed by (event, user,
    /// category, application) and invalidated lazily on rule-generation
    /// changes; a db-epoch change is an orthogonal axis the generation
    /// cannot see, so callers invalidate explicitly through this hook.
    pub fn invalidate_winner_cache(&mut self) {
        if self.state.cache.len() > 0 {
            self.state.cache.flush();
            self.state.cache.invalidations += 1;
            if obs::enabled() {
                obs::counter_add("engine.winner_cache_invalidations", 1);
            }
        }
    }

    /// Winner-cache counters and current size (this session's cache —
    /// each session caches independently).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.state.cache.hits,
            misses: self.state.cache.misses,
            invalidations: self.state.cache.invalidations,
            evictions: self.state.cache.evictions,
            entries: self.state.cache.len(),
        }
    }

    /// Compile the current snapshot eagerly and memoize the artifact on
    /// this session (idempotent per content generation). Returns the
    /// compile stats — of the fresh compile, or of the shared artifact
    /// when another session already paid for this generation.
    pub fn precompile(&mut self) -> CompileStats {
        self.sync_snapshot();
        let built = ensure_compiled(&self.shared, &self.snap);
        let stats = built.stats;
        self.state.compiled = Some(built);
        stats
    }

    /// Stats of the most recent compile of this rule base, if any
    /// session has compiled yet (`None` before the first compiled
    /// dispatch / [`Engine::precompile`]).
    pub fn compiled_stats(&self) -> Option<CompileStats> {
        self.shared
            .compiled
            .lock()
            .unwrap()
            .as_ref()
            .map(|c| c.stats)
    }

    fn sync_snapshot(&mut self) {
        let epoch = self.shared.epoch.load(Ordering::Acquire);
        if epoch == self.snap_epoch {
            return;
        }
        let guard = self.shared.published.lock().unwrap();
        self.snap = Arc::clone(&guard);
        // Re-read under the lock: mutations bump the epoch before they
        // unlock, so this value is consistent with the snapshot we took.
        self.snap_epoch = self.shared.epoch.load(Ordering::Acquire);
    }

    /// Run a mutation against the published snapshot copy-on-write and
    /// (on success, if it yields a [`Delta`]) bump the epoch and record
    /// the delta for incremental recompilation. The handle's own cached
    /// snapshot is parked on the shared empty sentinel for the duration
    /// so a lone session mutates in place instead of deep-cloning.
    fn try_mutate<R>(
        &mut self,
        f: impl FnOnce(
            &mut RuleSnapshot<P>,
            &EngineShared<P>,
        ) -> Result<(R, Option<Delta>), ActiveError>,
    ) -> Result<R, ActiveError> {
        let shared = Arc::clone(&self.shared);
        let mut guard = shared.published.lock().unwrap();
        self.snap = Arc::clone(&shared.empty);
        let result = {
            let snap = Arc::make_mut(&mut *guard);
            match f(snap, &shared) {
                Ok((r, delta)) => {
                    if let Some(delta) = delta {
                        let from = snap.generation;
                        snap.generation = shared.epoch.fetch_add(1, Ordering::AcqRel) + 1;
                        shared
                            .patches
                            .lock()
                            .unwrap()
                            .record(from, snap.generation, delta);
                    }
                    Ok(r)
                }
                Err(e) => Err(e),
            }
        };
        self.snap = Arc::clone(&guard);
        self.snap_epoch = shared.epoch.load(Ordering::Acquire);
        result
    }

    // -- rule management ----------------------------------------------------

    /// Register a rule; names must be unique across the rule base.
    pub fn add_rule(&mut self, rule: Rule<P>) -> Result<(), ActiveError> {
        self.try_mutate(|snap, _| {
            let idx = snap.rules.len() as u32;
            let lite = RuleLite::of(&rule);
            snap.add(rule)?;
            Ok(((), Some(Delta::Add { idx, rule: lite })))
        })
    }

    /// Register many rules (e.g. the output of the customization compiler).
    pub fn add_rules(
        &mut self,
        rules: impl IntoIterator<Item = Rule<P>>,
    ) -> Result<(), ActiveError> {
        for r in rules {
            self.add_rule(r)?;
        }
        Ok(())
    }

    /// Remove a rule by name. Later rules shift down one slot; the name
    /// map and index buckets are adjusted in place (no rebuild).
    pub fn remove_rule(&mut self, name: &str) -> Result<Rule<P>, ActiveError> {
        self.try_mutate(|snap, shared| {
            let idx = snap.by_name.get(name).copied();
            let rule = snap.remove(name, &shared.quarantined_count)?;
            let idx = idx.expect("remove succeeded, so the name resolved") as u32;
            let was_enabled = rule.enabled;
            Ok((rule, Some(Delta::Remove { idx, was_enabled })))
        })
    }

    /// Enable or disable a rule in place.
    pub fn set_enabled(&mut self, name: &str, enabled: bool) -> Result<(), ActiveError> {
        self.try_mutate(|snap, _| {
            let idx = *snap
                .by_name
                .get(name)
                .ok_or_else(|| ActiveError::UnknownRule(name.to_string()))?;
            let was = snap.rules[idx].enabled;
            snap.set_enabled(name, enabled)?;
            let delta = if was == enabled {
                Delta::Noop
            } else if enabled {
                Delta::Enable {
                    idx: idx as u32,
                    rule: RuleLite::of(&snap.rules[idx]),
                }
            } else {
                Delta::Disable { idx: idx as u32 }
            };
            Ok(((), Some(delta)))
        })
    }

    /// Change a rule's designer priority in place. This is the
    /// hot-reload path: the compiled artifact is patched (candidates
    /// repositioned in their pre-sorted lists), not recompiled.
    pub fn set_priority(&mut self, name: &str, priority: i32) -> Result<(), ActiveError> {
        self.try_mutate(|snap, _| {
            let idx = *snap
                .by_name
                .get(name)
                .ok_or_else(|| ActiveError::UnknownRule(name.to_string()))?;
            let rule = &mut snap.rules[idx];
            let delta = if rule.priority == priority || !rule.enabled {
                rule.priority = priority;
                Delta::Noop
            } else {
                rule.priority = priority;
                Delta::Priority {
                    idx: idx as u32,
                    priority,
                    spec: rule.specificity(),
                }
            };
            Ok(((), Some(delta)))
        })
    }

    pub fn rule(&self, name: &str) -> Option<&Rule<P>> {
        self.snap.by_name.get(name).map(|&i| &self.snap.rules[i])
    }

    pub fn rules(&self) -> &[Rule<P>] {
        &self.snap.rules
    }

    pub fn len(&self) -> usize {
        self.snap.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.snap.rules.is_empty()
    }

    /// Drop every rule whose name starts with `prefix`; returns how many
    /// were removed. (Recompiling a customization program replaces its
    /// rule family this way.) Surviving entries are remapped in place.
    pub fn remove_rules_with_prefix(&mut self, prefix: &str) -> usize {
        self.try_mutate(|snap, shared| {
            let n = snap.remove_prefix(prefix, &shared.quarantined_count);
            Ok((n, (n > 0).then_some(Delta::Bulk)))
        })
        .expect("prefix removal is infallible")
    }

    // -- dispatch -----------------------------------------------------------

    /// Feed one event through the rule set for a session context.
    ///
    /// Dispatch is transactional with respect to the deferred queue: an
    /// aborted dispatch (`CascadeOverflow`, or `RuleFault` under
    /// [`FaultPolicy::FailClosed`]) rolls back every deferred firing it
    /// queued, so no partial transaction state survives the error.
    pub fn dispatch(
        &mut self,
        event: Event,
        ctx: &SessionContext,
    ) -> Result<Outcome<P>, ActiveError> {
        if self.auto_sync {
            self.sync_snapshot();
        }
        if self.config.strategy == DispatchStrategy::Compiled
            && self.snap.rules.len() > self.config.hybrid_linear_threshold
            && self
                .state
                .compiled
                .as_ref()
                .is_none_or(|c| c.generation != self.snap.generation)
        {
            // Content generation moved (or first compiled dispatch):
            // refresh the session memo from the shared artifact cache.
            // This — not the per-event hot loop — is where compile cost
            // lands, once per generation per base.
            self.state.compiled = Some(ensure_compiled(&self.shared, &self.snap));
        }
        let deferred_mark = self.state.deferred.len();
        let Engine {
            shared,
            snap,
            snap_epoch,
            config,
            state,
            ..
        } = self;
        let result = dispatch_inner(shared, snap, snap_epoch, config, state, event, ctx, None);
        if result.is_err() {
            self.state.deferred.truncate(deferred_mark);
        }
        result
    }

    /// Feed a batch of events through the rule set for one session
    /// context, amortizing per-event dispatch overhead across runs of
    /// identical events. The server sorts its batches by event
    /// discriminant, so runs are long: the batch lane resolves the
    /// packed context key once per batch, and the jump-table route and
    /// customization selection once per run — later events in the run
    /// replay them instead of re-hashing. Metric tallies flush once per
    /// batch.
    ///
    /// Semantics are identical to calling [`Engine::dispatch`] per
    /// event in order, with one pinning difference: the snapshot is
    /// refreshed once at batch start, not per event. Each event is its
    /// own transaction (an aborted event rolls back only its own
    /// deferred firings), later events still run when an earlier one
    /// errors, and a mid-batch quarantine trip bumps the epoch, which
    /// invalidates the lane's selection memo — quarantine takes effect
    /// from the very next event, exactly as in the per-event path.
    pub fn dispatch_batch(
        &mut self,
        events: impl IntoIterator<Item = Event>,
        ctx: &SessionContext,
    ) -> Vec<Result<Outcome<P>, ActiveError>> {
        let _span = obs::span("engine.dispatch_batch");
        if self.auto_sync {
            self.sync_snapshot();
        }
        if self.config.strategy == DispatchStrategy::Compiled
            && self.snap.rules.len() > self.config.hybrid_linear_threshold
            && self
                .state
                .compiled
                .as_ref()
                .is_none_or(|c| c.generation != self.snap.generation)
        {
            self.state.compiled = Some(ensure_compiled(&self.shared, &self.snap));
        }
        let mut lane = BatchLane::default();
        let events = events.into_iter();
        let mut results = Vec::with_capacity(events.size_hint().0);
        {
            let Engine {
                shared,
                snap,
                snap_epoch,
                config,
                state,
                ..
            } = self;
            for event in events {
                let deferred_mark = state.deferred.len();
                let r = dispatch_inner(
                    shared,
                    snap,
                    snap_epoch,
                    config,
                    state,
                    event,
                    ctx,
                    Some(&mut lane),
                );
                if r.is_err() {
                    state.deferred.truncate(deferred_mark);
                }
                results.push(r);
            }
        }
        flush_batch_tallies(&lane.tallies, self.state.deferred.len());
        results
    }

    /// Number of deferred firings awaiting [`Self::flush_deferred`].
    pub fn pending_deferred(&self) -> usize {
        self.state.deferred.len()
    }

    /// Drop queued deferred firings without running them (rollback).
    pub fn clear_deferred(&mut self) {
        self.state.deferred.clear();
    }

    /// Execute every queued deferred firing (the "end of transaction"
    /// point). Events raised by deferred actions dispatch normally —
    /// immediate rules run inline, deferred ones re-queue.
    pub fn flush_deferred(&mut self) -> Result<Outcome<P>, ActiveError> {
        let _span = obs::span("engine.flush_deferred");
        if self.auto_sync {
            self.sync_snapshot();
        }
        let drained = std::mem::take(&mut self.state.deferred);
        if obs::enabled() {
            obs::counter_add("engine.deferred_flushed", drained.len() as u64);
        }
        let mut outcome = Outcome::empty();
        for (name, action, event, ctx) in drained {
            outcome.fired.push(Arc::clone(&name));
            // Each deferred firing joins the active request trace (if
            // any) as a child span naming the rule whose firing was
            // deferred — deferred causality survives the flush.
            let _firing_span = if obs::trace_recording() {
                let guard = obs::trace_child("engine.deferred_fire");
                obs::trace_annotate("rule", name.to_string());
                obs::trace_annotate("event", event.describe());
                Some(guard)
            } else {
                None
            };
            let mut queue: VecDeque<QueuedEvent> = VecDeque::new();
            if let Err(cause) = run_action(
                &action,
                &event,
                &ctx,
                0,
                Some(&name),
                &mut queue,
                &mut outcome.customizations,
            ) {
                outcome.faults.push(FaultRecord {
                    rule: name.to_string(),
                    depth: 0,
                    cause: cause.clone(),
                });
                // The rule may have been removed since it was deferred.
                if self.snap.by_name.contains_key(&*name) {
                    let idx = self.snap.by_name[&*name];
                    let Engine {
                        shared,
                        snap,
                        snap_epoch,
                        config,
                        state,
                        ..
                    } = self;
                    note_fault(shared, snap, snap_epoch, config, &mut state.cache, idx);
                } else {
                    note_anonymous_fault(&self.shared);
                }
                if self.config.fault_policy == FaultPolicy::FailClosed {
                    return Err(ActiveError::RuleFault {
                        rule: name.to_string(),
                        depth: 0,
                        cause,
                    });
                }
                continue;
            }
            if let Some(&idx) = self.snap.by_name.get(&*name) {
                self.snap.health[idx]
                    .consecutive
                    .store(0, Ordering::Relaxed);
            }
            while let Some((_, raised, _)) = queue.pop_front() {
                let sub = self.dispatch(raised, &ctx)?;
                outcome.customizations.extend(sub.customizations);
                outcome.fired.extend(sub.fired);
                outcome.events_processed += sub.events_processed;
                outcome.trace.entries.extend(sub.trace.entries);
            }
        }
        Ok(outcome)
    }
}

/// Record a fault against rule `idx`; returns `true` if this fault
/// tripped the circuit breaker (quarantined the rule). Quarantine is a
/// global transition: the compare-and-swap guarantees exactly one
/// session wins it and increments the shared count, no matter how many
/// sessions fault the rule concurrently.
fn note_fault<P>(
    shared: &EngineShared<P>,
    snap: &RuleSnapshot<P>,
    snap_epoch: &mut u64,
    config: &EngineConfig,
    cache: &mut WinnerCache,
    idx: usize,
) -> bool {
    shared.rule_fault_count.fetch_add(1, Ordering::Relaxed);
    obs::trace_mark_fault();
    if obs::enabled() {
        obs::counter_add("engine.rule_faults", 1);
    }
    let cell = &snap.health[idx];
    cell.total.fetch_add(1, Ordering::Relaxed);
    let consecutive = cell.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
    let threshold = config.quarantine_threshold;
    if threshold == 0 || consecutive < threshold {
        return false;
    }
    if cell.quarantined.swap(true, Ordering::AcqRel) {
        return false;
    }
    shared.quarantined_count.fetch_add(1, Ordering::Relaxed);
    if obs::enabled() {
        obs::counter_add("engine.quarantined_rules", 1);
    }
    // Quarantine is a rule-visibility mutation. Bump the epoch so every
    // session flushes its winner cache, and flush our own eagerly (not
    // lazily at the next dispatch) so no stale slot naming the
    // quarantined rule can answer later events of this same cascade.
    *snap_epoch = shared.epoch.fetch_add(1, Ordering::AcqRel) + 1;
    if cache.len() > 0 {
        cache.flush();
        cache.invalidations += 1;
    }
    cache.generation = *snap_epoch;
    true
}

/// Record a fault not attributable to one rule (the `engine.cascade`
/// failpoint).
fn note_anonymous_fault<P>(shared: &EngineShared<P>) {
    shared.rule_fault_count.fetch_add(1, Ordering::Relaxed);
    obs::trace_mark_fault();
    if obs::enabled() {
        obs::counter_add("engine.rule_faults", 1);
    }
}

/// Cross-event memo for [`Engine::dispatch_batch`]: everything the
/// batch lane amortizes across a run of identical root events under one
/// context. The compiled artifact is pinned for the whole batch
/// (`dispatch_batch` refreshes the session memo once, and content
/// generations cannot move mid-batch — the batch holds `&mut self`), so
/// the packed context key and route stay valid batch-wide; the
/// selection memo is additionally keyed on the epoch, which quarantine
/// trips bump, so health changes invalidate it between events.
#[derive(Default)]
struct BatchLane {
    /// Packed context key, computed on first compiled use.
    ctx_packed: Option<u64>,
    /// The last root event and the jump-table route it resolved to.
    route: Option<(Event, EventIds)>,
    /// Memoized customization selection (matched set + winner) for the
    /// memoized route — the packed winner-cache slot, without the probe.
    selection: Option<(Vec<usize>, Option<usize>)>,
    /// Epoch `selection` was recorded under.
    epoch: u64,
    /// Per-batch metric tallies, flushed to the registry once.
    tallies: BatchTallies,
}

/// Dispatch metric tallies accumulated across a batch so the registry
/// (one hash lookup + atomic per counter) is touched once per batch
/// instead of once per event.
#[derive(Default)]
struct BatchTallies {
    dispatches: u64,
    considered: u64,
    matched: u64,
    fired: u64,
    shadowed: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    max_cascade_depth: u64,
    arm_cached: u64,
    arm_compiled: u64,
    arm_indexed: u64,
    arm_linear: u64,
}

fn flush_batch_tallies(t: &BatchTallies, deferred_len: usize) {
    if t.dispatches == 0 || !obs::enabled() {
        return;
    }
    let shard = obs::current_shard().to_string();
    for (arm, n) in [
        ("cached", t.arm_cached),
        ("compiled", t.arm_compiled),
        ("indexed", t.arm_indexed),
        ("linear", t.arm_linear),
    ] {
        if n > 0 {
            obs::counter_add_labeled("engine.dispatches_by_arm", &[("arm", arm)], n);
        }
    }
    obs::counter_add_labeled(
        "engine.winner_cache_hits_by_shard",
        &[("shard", &shard)],
        t.hits,
    );
    obs::counter_add_labeled(
        "engine.winner_cache_misses_by_shard",
        &[("shard", &shard)],
        t.misses,
    );
    obs::counter_add("engine.dispatches", t.dispatches);
    obs::counter_add("engine.rules_considered", t.considered);
    obs::counter_add("engine.rules_matched", t.matched);
    obs::counter_add("engine.rules_fired", t.fired);
    obs::counter_add("engine.rules_shadowed", t.shadowed);
    obs::counter_add("engine.winner_cache_hits", t.hits);
    obs::counter_add("engine.winner_cache_misses", t.misses);
    obs::counter_add("engine.winner_cache_evictions", t.evictions);
    obs::record_value("engine.cascade_depth", t.max_cascade_depth);
    obs::record_value("engine.deferred_queue_depth", deferred_len as u64);
}

#[allow(clippy::too_many_arguments)]
fn dispatch_inner<P: Clone>(
    shared: &EngineShared<P>,
    snap: &RuleSnapshot<P>,
    snap_epoch: &mut u64,
    config: &EngineConfig,
    state: &mut SessionState<P>,
    event: Event,
    ctx: &SessionContext,
    mut lane: Option<&mut BatchLane>,
) -> Result<Outcome<P>, ActiveError> {
    // Batched events share one `engine.dispatch_batch` span instead of
    // a span apiece.
    let _span = if lane.is_none() {
        Some(obs::span("engine.dispatch"))
    } else {
        None
    };
    state.dispatch_count += 1;
    shared.dispatch_count.fetch_add(1, Ordering::Relaxed);
    let SessionState {
        cache,
        deferred,
        scratch: s,
        compiled: compiled_memo,
        ..
    } = state;
    // Per-dispatch tallies, flushed to the metrics registry once at
    // the end so the hot loop costs plain integer adds.
    let mut m_considered = 0u64;
    let mut m_matched = 0u64;
    let mut m_fired = 0u64;
    let mut m_shadowed = 0u64;
    let mut m_hits = 0u64;
    let mut m_misses = 0u64;
    let mut m_max_depth = 0usize;
    let evictions_before = cache.evictions;

    // Below the hybrid threshold neither the discrimination index nor
    // the compiled tables can beat a straight scan of the rule vector;
    // the winner cache stays active either way.
    let small = snap.rules.len() <= config.hybrid_linear_threshold;
    let scan_all = config.strategy == DispatchStrategy::Linear || small;
    // The compiled tables for this snapshot generation, when this
    // session runs the compiled tier above the threshold. `dispatch()`
    // refreshes the memo before calling in; a `None` here (direct
    // `dispatch_inner` reentry after an unseen generation flip) falls
    // back to the discrimination index for this dispatch.
    let compiled: Option<&CompiledRules> =
        if config.strategy == DispatchStrategy::Compiled && !small {
            compiled_memo
                .as_deref()
                .filter(|c| c.generation == snap.generation)
        } else {
            None
        };
    // The cache is only sound while every enabled customization rule
    // is a pure function of the cache key.
    let cache_ok = config.strategy != DispatchStrategy::Linear && snap.index.uncacheable_cust == 0;
    // The compiled tier upgrades the cache key to the interned packed
    // form: no hashing of strings, no slot verification on hit.
    let packed_ok = cache_ok && compiled.is_some_and(|c| c.cacheable);
    // The context is fixed across a batch, so the lane packs it once.
    let ctx_packed = if let Some(l) = lane.as_deref_mut() {
        *l.ctx_packed
            .get_or_insert_with(|| compiled.map_or(0, |c| c.pack_ctx(ctx)))
    } else {
        compiled.map_or(0, |c| c.pack_ctx(ctx))
    };
    if cache_ok && cache.generation != *snap_epoch {
        if cache.len() > 0 {
            cache.flush();
            cache.invalidations += 1;
            if obs::enabled() {
                obs::counter_add("engine.winner_cache_invalidations", 1);
            }
        }
        cache.generation = *snap_epoch;
    }

    let mut outcome = Outcome::empty();
    s.queue.clear();
    s.queue.push_back((0, event, None));

    while let Some((depth, event, raised_by)) = s.queue.pop_front() {
        if depth > config.max_cascade_depth {
            return Err(ActiveError::CascadeOverflow {
                depth,
                event: event.describe(),
            });
        }
        outcome.events_processed += 1;
        m_max_depth = m_max_depth.max(depth);

        // While a request trace records on this thread, every cascade
        // step becomes a child span linking back to the rule that
        // raised its event — the causal chain the trace tree exposes.
        let _cascade_span = if depth > 0 && obs::trace_recording() {
            let guard = obs::trace_child("engine.cascade");
            obs::trace_annotate("depth", depth.to_string());
            obs::trace_annotate("event", event.describe());
            if let Some(r) = &raised_by {
                obs::trace_annotate("raised_by", r.to_string());
            }
            Some(guard)
        } else {
            None
        };

        // Cascade-step failpoint: a fault in the cascade machinery
        // itself, not attributable to any one rule. Fail-open drops
        // the cascaded event; fail-closed aborts the dispatch.
        if depth > 0 && faultsim::any_armed() {
            let fired = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                faultsim::fire("engine.cascade")
            }));
            let cause = match fired {
                Ok(Ok(())) => None,
                Ok(Err(fault)) => Some(fault.to_string()),
                Err(payload) => Some(panic_message(&*payload)),
            };
            if let Some(cause) = cause {
                note_anonymous_fault(shared);
                outcome.faults.push(FaultRecord {
                    rule: CASCADE_PSEUDO_RULE.to_string(),
                    depth,
                    cause: cause.clone(),
                });
                match config.fault_policy {
                    FaultPolicy::FailOpen => continue,
                    FaultPolicy::FailClosed => {
                        return Err(ActiveError::RuleFault {
                            rule: CASCADE_PSEUDO_RULE.to_string(),
                            depth,
                            cause,
                        });
                    }
                }
            }
        }

        s.matched_cust.clear();
        s.matched_other.clear();
        // Compiled tier: route the event to its jump table and intern
        // its fields once — every candidate check below is integer-only.
        // In a batch, a run of identical root events resolves the route
        // once and replays it (`CompiledRules::table` — no hashing).
        let mut route_hit = false;
        let routed = match (lane.as_deref_mut(), compiled) {
            (Some(l), Some(c)) if depth == 0 => Some(match &l.route {
                Some((ev, ids)) if *ev == event => {
                    route_hit = true;
                    (c.table(ids.route), *ids)
                }
                _ => {
                    let r = c.lookup(&event);
                    l.route = Some((event.clone(), r.1));
                    l.selection = None;
                    r
                }
            }),
            (_, c) => c.map(|c| c.lookup(&event)),
        };
        // `Some(winner)` when the cache answered customization
        // matching for this event; the winner itself may be `None`
        // (negative results are cached too).
        let mut cached_winner: Option<Option<usize>> = None;
        let mut hash = None;
        let mut pkey: Option<(u64, u64)> = None;

        if packed_ok {
            let key = (
                routed.as_ref().expect("packed_ok implies routed").1.key,
                ctx_packed,
            );
            pkey = Some(key);
            // Lane selection memo: exactly a packed-cache slot for the
            // memoized route, minus the probe. Sound under the same
            // invariant — the epoch check invalidates it whenever
            // quarantine (or anything else) flips rule visibility.
            if route_hit {
                if let Some(l) = lane.as_deref() {
                    if l.epoch == *snap_epoch {
                        if let Some((mc, w)) = &l.selection {
                            s.matched_cust.extend_from_slice(mc);
                            cached_winner = Some(*w);
                            m_hits += 1;
                        }
                    }
                }
            }
            if cached_winner.is_none() {
                if let Some(slot) = cache.lookup_packed(key) {
                    s.matched_cust.extend_from_slice(&slot.matched_cust);
                    cached_winner = Some(slot.winner);
                    m_hits += 1;
                    if depth == 0 {
                        if let Some(l) = lane.as_deref_mut() {
                            l.selection = Some((slot.matched_cust.clone(), slot.winner));
                            l.epoch = *snap_epoch;
                        }
                    }
                } else {
                    m_misses += 1;
                }
            }
        } else if cache_ok {
            let h = cache_key_hash(&event, ctx);
            hash = Some(h);
            if let Some(slot) = cache.lookup(h, &event, ctx) {
                s.matched_cust.extend_from_slice(&slot.matched_cust);
                cached_winner = Some(slot.winner);
                m_hits += 1;
            } else {
                m_misses += 1;
            }
        }
        if let Some((table, ids)) = &routed {
            if cached_winner.is_none() {
                // Candidates come pre-sorted by descending (specificity,
                // priority, registration): under MostSpecific with
                // tracing off the first match *is* the winner and the
                // walk stops there — the compiled tier's cold-path win.
                let early = config.selection == SelectionPolicy::MostSpecific && !config.tracing;
                for c in &table.cust {
                    m_considered += 1;
                    let i = c.idx as usize;
                    if snap.health[i].is_quarantined() {
                        continue;
                    }
                    let hit = if c.slow {
                        snap.rules[i].matches(&event, ctx)
                    } else {
                        c.matches_fast(ids, ctx_packed)
                    };
                    if hit {
                        s.matched_cust.push(i);
                        if early {
                            break;
                        }
                    }
                }
                // Selection, traces and FireAll all consume the matched
                // set in ascending registration order, like the oracle
                // reports it.
                s.matched_cust.sort_unstable();
            }
            for c in &table.other {
                m_considered += 1;
                let i = c.idx as usize;
                if snap.health[i].is_quarantined() {
                    continue;
                }
                let hit = if c.slow {
                    snap.rules[i].matches(&event, ctx)
                } else {
                    c.matches_fast(ids, ctx_packed)
                };
                if hit {
                    s.matched_other.push(i);
                }
            }
        } else if scan_all {
            m_considered += snap.rules.len() as u64;
            let cust_cached = cached_winner.is_some();
            for (i, r) in snap.rules.iter().enumerate() {
                if (cust_cached && r.group == RuleGroup::Customization)
                    || snap.health[i].is_quarantined()
                    || !r.matches(&event, ctx)
                {
                    continue;
                }
                if r.group == RuleGroup::Customization {
                    s.matched_cust.push(i);
                } else {
                    s.matched_other.push(i);
                }
            }
        } else {
            if cached_winner.is_none() {
                let matched_cust = &mut s.matched_cust;
                snap.index.cust.for_each_candidate(&event, &mut |i| {
                    m_considered += 1;
                    if !snap.health[i].is_quarantined() && snap.rules[i].matches(&event, ctx) {
                        matched_cust.push(i);
                    }
                });
            }
            let matched_other = &mut s.matched_other;
            snap.index.other.for_each_candidate(&event, &mut |i| {
                m_considered += 1;
                if !snap.health[i].is_quarantined() && snap.rules[i].matches(&event, ctx) {
                    matched_other.push(i);
                }
            });
        }

        // Customization selection: specificity, then designer
        // priority, then registration order (later wins:
        // redefinitions override).
        let winner = match cached_winner {
            Some(w) => w,
            None => {
                let rules = &snap.rules;
                let w = s.matched_cust.iter().copied().max_by_key(|&i| {
                    let r = &rules[i];
                    (r.specificity(), r.priority, i)
                });
                if let Some(key) = pkey {
                    cache.insert_packed(
                        key,
                        PackedSlot {
                            matched_cust: s.matched_cust.clone(),
                            winner: w,
                        },
                        config.winner_cache_capacity,
                    );
                    if depth == 0 {
                        if let Some(l) = lane.as_deref_mut() {
                            l.selection = Some((s.matched_cust.clone(), w));
                            l.epoch = *snap_epoch;
                        }
                    }
                } else if let Some(h) = hash {
                    cache.insert(
                        h,
                        CacheSlot {
                            event: EventKey::of(&event),
                            user: ctx.user.clone(),
                            category: ctx.category.clone(),
                            application: ctx.application.clone(),
                            matched_cust: s.matched_cust.clone(),
                            winner: w,
                        },
                        config.winner_cache_capacity,
                    );
                }
                w
            }
        };

        s.to_fire.clear();
        s.shadowed.clear();
        match config.selection {
            SelectionPolicy::MostSpecific => {
                if let Some(w) = winner {
                    s.to_fire.push(w);
                    s.shadowed
                        .extend(s.matched_cust.iter().copied().filter(|&i| i != w));
                }
            }
            SelectionPolicy::FireAll => s.to_fire.extend_from_slice(&s.matched_cust),
        }
        // Non-customization rules all fire, highest priority first.
        let cust_fired = s.to_fire.len();
        s.to_fire.extend_from_slice(&s.matched_other);
        let rules = &snap.rules;
        s.to_fire[cust_fired..].sort_by_key(|&i| (std::cmp::Reverse(rules[i].priority), i));

        m_matched += (s.matched_cust.len() + s.matched_other.len()) as u64;
        m_shadowed += s.shadowed.len() as u64;
        m_fired += s.to_fire.len() as u64;

        // Execute (or queue, for deferred-coupling rules). Indexed by
        // position because actions push into `s.queue`.
        let fired_start = outcome.fired.len();
        for k in 0..s.to_fire.len() {
            let i = s.to_fire[k];
            outcome.fired.push(Arc::clone(&snap.names[i]));
            match snap.rules[i].coupling {
                Coupling::Immediate => {
                    let result = run_action(
                        &snap.rules[i].action,
                        &event,
                        ctx,
                        depth,
                        Some(&snap.names[i]),
                        &mut s.queue,
                        &mut outcome.customizations,
                    );
                    match result {
                        Ok(()) => snap.health[i].consecutive.store(0, Ordering::Relaxed),
                        Err(cause) => {
                            outcome.faults.push(FaultRecord {
                                rule: snap.rules[i].name.clone(),
                                depth,
                                cause: cause.clone(),
                            });
                            note_fault(shared, snap, snap_epoch, config, cache, i);
                            if config.fault_policy == FaultPolicy::FailClosed {
                                return Err(ActiveError::RuleFault {
                                    rule: snap.rules[i].name.clone(),
                                    depth,
                                    cause,
                                });
                            }
                        }
                    }
                }
                Coupling::Deferred => deferred.push((
                    Arc::clone(&snap.names[i]),
                    Arc::clone(&snap.rules[i].action),
                    event.clone(),
                    ctx.clone(),
                )),
            }
        }

        if config.tracing {
            // Merge the two ascending matched lists back into
            // registration order, as the linear scan reports them.
            let mut matched = Vec::with_capacity(s.matched_cust.len() + s.matched_other.len());
            let (mut a, mut b) = (0, 0);
            while a < s.matched_cust.len() || b < s.matched_other.len() {
                let i = if b == s.matched_other.len()
                    || (a < s.matched_cust.len() && s.matched_cust[a] < s.matched_other[b])
                {
                    a += 1;
                    s.matched_cust[a - 1]
                } else {
                    b += 1;
                    s.matched_other[b - 1]
                };
                matched.push(snap.rules[i].name.clone());
            }
            outcome.trace.entries.push(TraceEntry {
                depth,
                event: event.describe(),
                matched,
                fired: outcome.fired[fired_start..]
                    .iter()
                    .map(|n| n.to_string())
                    .collect(),
                shadowed: s
                    .shadowed
                    .iter()
                    .map(|&i| snap.rules[i].name.clone())
                    .collect(),
            });
        }
    }

    cache.hits += m_hits;
    cache.misses += m_misses;
    // Which dispatch arm answered this request: the winner cache,
    // the compiled tables, the discrimination index, or the
    // straight linear scan.
    let arm = if cache_ok && m_hits > 0 && m_misses == 0 {
        "cached"
    } else if compiled.is_some() {
        "compiled"
    } else if scan_all {
        "linear"
    } else {
        "indexed"
    };
    if let Some(l) = lane {
        // Batched: accumulate into the lane and flush once per batch.
        let t = &mut l.tallies;
        t.dispatches += 1;
        t.considered += m_considered;
        t.matched += m_matched;
        t.fired += m_fired;
        t.shadowed += m_shadowed;
        t.hits += m_hits;
        t.misses += m_misses;
        t.evictions += cache.evictions - evictions_before;
        t.max_cascade_depth = t.max_cascade_depth.max(m_max_depth as u64);
        match arm {
            "cached" => t.arm_cached += 1,
            "compiled" => t.arm_compiled += 1,
            "linear" => t.arm_linear += 1,
            _ => t.arm_indexed += 1,
        }
    } else if obs::enabled() {
        let shard = obs::current_shard().to_string();
        obs::counter_add_labeled("engine.dispatches_by_arm", &[("arm", arm)], 1);
        obs::counter_add_labeled(
            "engine.winner_cache_hits_by_shard",
            &[("shard", &shard)],
            m_hits,
        );
        obs::counter_add_labeled(
            "engine.winner_cache_misses_by_shard",
            &[("shard", &shard)],
            m_misses,
        );
        obs::counter_add("engine.dispatches", 1);
        obs::counter_add("engine.rules_considered", m_considered);
        obs::counter_add("engine.rules_matched", m_matched);
        obs::counter_add("engine.rules_fired", m_fired);
        obs::counter_add("engine.rules_shadowed", m_shadowed);
        obs::counter_add("engine.winner_cache_hits", m_hits);
        obs::counter_add("engine.winner_cache_misses", m_misses);
        obs::counter_add(
            "engine.winner_cache_evictions",
            cache.evictions - evictions_before,
        );
        obs::record_value("engine.cascade_depth", m_max_depth as u64);
        obs::record_value("engine.deferred_queue_depth", deferred.len() as u64);
    }
    Ok(outcome)
}

/// Run one action. Callbacks are the only fallible arm: they are
/// executed behind a panic boundary (a panicking callback becomes an
/// `Err`, never unwinds into the engine) and consult the
/// `engine.callback` failpoint first. `Err` carries a human-readable
/// cause; the caller decides between fail-open and fail-closed.
fn run_action<P: Clone>(
    action: &Action<P>,
    event: &Event,
    ctx: &SessionContext,
    depth: usize,
    raiser: Option<&Arc<str>>,
    queue: &mut VecDeque<QueuedEvent>,
    customizations: &mut Vec<P>,
) -> Result<(), String> {
    match action {
        Action::Customize(p) => {
            customizations.push(p.clone());
            Ok(())
        }
        Action::Callback(f) => {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                faultsim::fire("engine.callback").map(|()| f(event, ctx))
            }));
            match result {
                Ok(Ok(events)) => {
                    for e in events {
                        queue.push_back((depth + 1, e, raiser.cloned()));
                    }
                    Ok(())
                }
                Ok(Err(fault)) => Err(fault.to_string()),
                Err(payload) => Err(panic_message(&*payload)),
            }
        }
        Action::Raise(events) => {
            for e in events {
                queue.push_back((depth + 1, e.clone(), raiser.cloned()));
            }
            Ok(())
        }
        Action::Compound(actions) => {
            for a in actions {
                run_action(a, event, ctx, depth, raiser, queue, customizations)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextPattern;
    use geodb::query::DbEvent;

    fn get_schema() -> Event {
        Event::Db(DbEvent::GetSchema {
            schema: "phone_net".into(),
        })
    }

    fn session() -> SessionContext {
        SessionContext::new("juliano", "planner", "pole_manager")
    }

    fn cust(name: &str, ctx: ContextPattern, payload: &'static str) -> Rule<&'static str> {
        Rule::customization(name, EventPattern::db(DbEventKind::GetSchema), ctx, payload)
    }

    #[test]
    fn most_specific_rule_wins() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("generic", ContextPattern::any(), "generic"))
            .unwrap();
        eng.add_rule(cust(
            "by_cat",
            ContextPattern::for_category("planner"),
            "category",
        ))
        .unwrap();
        eng.add_rule(cust("by_user", ContextPattern::for_user("juliano"), "user"))
            .unwrap();

        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["user"]);
        assert_eq!(out.fired_names(), vec!["by_user"]);
        // The shadowed rules are visible in the trace.
        assert_eq!(out.trace.entries[0].shadowed.len(), 2);

        // A session outside the specific contexts falls back to generic.
        let anon = SessionContext::new("guest", "visitor", "browser");
        let out = eng.dispatch(get_schema(), &anon).unwrap();
        assert_eq!(out.customizations, vec!["generic"]);
    }

    #[test]
    fn fire_all_ablation_fires_everything() {
        let mut eng: Engine<&str> = Engine::with_config(EngineConfig {
            selection: SelectionPolicy::FireAll,
            ..Default::default()
        });
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();
        eng.add_rule(cust("b", ContextPattern::for_user("juliano"), "b"))
            .unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations.len(), 2);
        // Repeat from the cache: `FireAll` still gets the full set.
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations.len(), 2);
        assert_eq!(eng.cache_stats().hits, 1);
    }

    #[test]
    fn priority_breaks_specificity_ties() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("low", ContextPattern::for_user("juliano"), "low").with_priority(1))
            .unwrap();
        eng.add_rule(cust("high", ContextPattern::for_user("juliano"), "high").with_priority(9))
            .unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["high"]);
    }

    #[test]
    fn later_registration_overrides_equal_rules() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("v1", ContextPattern::for_user("juliano"), "old"))
            .unwrap();
        eng.add_rule(cust("v2", ContextPattern::for_user("juliano"), "new"))
            .unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["new"]);
    }

    #[test]
    fn integrity_rules_all_fire_alongside_customization() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("c", ContextPattern::any(), "payload"))
            .unwrap();
        let hits = Arc::new(AtomicUsize::new(0));
        for name in ["i1", "i2"] {
            let hits = hits.clone();
            eng.add_rule(Rule::integrity(
                name,
                EventPattern::db(DbEventKind::GetSchema),
                Arc::new(move |_, _| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    vec![]
                }),
            ))
            .unwrap();
        }
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert_eq!(out.customizations, vec!["payload"]);
        assert_eq!(out.fired.len(), 3);
    }

    #[test]
    fn raise_cascades_and_counts_events() {
        let mut eng: Engine<&str> = Engine::new();
        // Get_Schema raises Get_Class, like the paper's R1 -> Get_Class(Pole).
        eng.add_rule(
            Rule::customization(
                "r1",
                EventPattern::db(DbEventKind::GetSchema),
                ContextPattern::any(),
                "schema-cust",
            )
            .with_priority(0),
        )
        .unwrap();
        eng.add_rule(Rule {
            name: "raiser".into(),
            event: EventPattern::db(DbEventKind::GetSchema),
            context: ContextPattern::any(),
            guard: None,
            action: Arc::new(Action::Raise(vec![Event::Db(DbEvent::GetClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            })])),
            group: RuleGroup::Other,
            coupling: crate::rule::Coupling::Immediate,
            priority: 0,
            enabled: true,
        })
        .unwrap();
        eng.add_rule(Rule::customization(
            "r2",
            EventPattern::db(DbEventKind::GetClass),
            ContextPattern::any(),
            "class-cust",
        ))
        .unwrap();

        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.events_processed, 2);
        assert_eq!(out.customizations, vec!["schema-cust", "class-cust"]);
        assert!(out.trace.fired("r2"));
        assert_eq!(out.trace.entries[1].depth, 1);
    }

    #[test]
    fn cascade_cycle_is_detected() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(Rule {
            name: "loop".into(),
            event: EventPattern::External {
                name: Some("ping".into()),
            },
            context: ContextPattern::any(),
            guard: None,
            action: Arc::new(Action::Raise(vec![Event::external("ping")])),
            group: RuleGroup::Other,
            coupling: crate::rule::Coupling::Immediate,
            priority: 0,
            enabled: true,
        })
        .unwrap();
        let err = eng
            .dispatch(Event::external("ping"), &session())
            .unwrap_err();
        assert!(matches!(err, ActiveError::CascadeOverflow { .. }));
        // The aborted dispatch leaves no debris: the next one is clean.
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.events_processed, 1);
    }

    #[test]
    fn rule_management() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();
        assert!(matches!(
            eng.add_rule(cust("a", ContextPattern::any(), "dup")),
            Err(ActiveError::DuplicateRule(_))
        ));
        eng.set_enabled("a", false).unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert!(out.customizations.is_empty());
        eng.set_enabled("a", true).unwrap();
        assert!(eng.rule("a").is_some());
        eng.remove_rule("a").unwrap();
        assert!(eng.is_empty());
        assert!(eng.remove_rule("a").is_err());
    }

    #[test]
    fn prefix_removal_replaces_rule_families() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("prog1/r1", ContextPattern::any(), "x"))
            .unwrap();
        eng.add_rule(cust("prog1/r2", ContextPattern::any(), "y"))
            .unwrap();
        eng.add_rule(cust("prog2/r1", ContextPattern::any(), "z"))
            .unwrap();
        assert_eq!(eng.remove_rules_with_prefix("prog1/"), 2);
        assert_eq!(eng.len(), 1);
        assert!(eng.rule("prog2/r1").is_some());
        // Index is still consistent.
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["z"]);
    }

    #[test]
    fn removal_keeps_name_map_and_buckets_consistent() {
        // Regression: removals used to rebuild `by_name` from scratch;
        // the in-place remap must leave every surviving name resolving
        // to its own rule, across single and batch removal, for every
        // bucket family.
        let mut eng: Engine<&str> = Engine::new();
        let mk = |name: &str, event: EventPattern| {
            Rule::customization(name, event, ContextPattern::any(), "p")
        };
        eng.add_rule(mk(
            "db/get_schema",
            EventPattern::db(DbEventKind::GetSchema),
        ))
        .unwrap();
        eng.add_rule(mk("wild/any", EventPattern::Any)).unwrap();
        eng.add_rule(mk(
            "ext/tick",
            EventPattern::External {
                name: Some("tick".into()),
            },
        ))
        .unwrap();
        eng.add_rule(mk("db/get_class", EventPattern::db(DbEventKind::GetClass)))
            .unwrap();
        eng.add_rule(mk(
            "iface/click",
            EventPattern::Interface {
                name: Some("click".into()),
                source_prefix: None,
            },
        ))
        .unwrap();
        eng.add_rule(mk("ext/any", EventPattern::External { name: None }))
            .unwrap();

        eng.remove_rule("wild/any").unwrap();
        eng.remove_rule("db/get_schema").unwrap();
        assert_eq!(eng.remove_rules_with_prefix("ext/"), 2);

        // Every survivor's name still maps to the rule bearing it.
        assert_eq!(eng.len(), 2);
        for name in ["db/get_class", "iface/click"] {
            assert_eq!(eng.rule(name).unwrap().name, name);
        }
        // And the buckets still dispatch the right rules.
        let out = eng
            .dispatch(
                Event::Db(DbEvent::GetClass {
                    schema: "s".into(),
                    class: "C".into(),
                }),
                &session(),
            )
            .unwrap();
        assert_eq!(out.fired_names(), vec!["db/get_class"]);
        let out = eng
            .dispatch(Event::interface("click", "w/b1"), &session())
            .unwrap();
        assert_eq!(out.fired_names(), vec!["iface/click"]);
        let out = eng.dispatch(Event::external("tick"), &session()).unwrap();
        assert!(out.fired.is_empty());
    }

    #[test]
    fn winner_cache_counts_hits_misses_and_invalidations() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();

        eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(eng.cache_stats().hits, 0);
        assert_eq!(eng.cache_stats().misses, 1);
        assert_eq!(eng.cache_stats().entries, 1);

        eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(eng.cache_stats().hits, 1);
        assert_eq!(eng.cache_stats().misses, 1);

        // Negative results are cached too.
        let stranger = SessionContext::new("x", "y", "z");
        eng.dispatch(Event::external("nope"), &stranger).unwrap();
        eng.dispatch(Event::external("nope"), &stranger).unwrap();
        assert_eq!(eng.cache_stats().hits, 2);

        // Any rule mutation flushes the cache on the next dispatch.
        eng.add_rule(cust("b", ContextPattern::for_user("juliano"), "b"))
            .unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["b"]);
        let stats = eng.cache_stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn bounded_cache_evicts_generationally() {
        let mut eng: Engine<&str> = Engine::with_config(EngineConfig {
            winner_cache_capacity: 8,
            ..Default::default()
        });
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();

        // 20 distinct users: the cache must stay bounded at capacity.
        for i in 0..20 {
            let ctx = SessionContext::new(format!("u{i}"), "c", "app");
            eng.dispatch(get_schema(), &ctx).unwrap();
        }
        let stats = eng.cache_stats();
        assert_eq!(stats.misses, 20);
        assert_eq!(stats.entries, 8, "hot + cold segments hold capacity");
        // Segment rotations: inserts 5, 9, 13 and 17 rotate; the last
        // three each drop a full 4-entry cold segment.
        assert_eq!(stats.evictions, 12);

        // The most recent user sits in the hot segment.
        let recent = SessionContext::new("u19", "c", "app");
        eng.dispatch(get_schema(), &recent).unwrap();
        assert_eq!(eng.cache_stats().hits, 1);
        // A mid-age user sits in the cold segment: hit + promotion, the
        // total entry count does not change.
        let mid = SessionContext::new("u13", "c", "app");
        eng.dispatch(get_schema(), &mid).unwrap();
        let stats = eng.cache_stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 8);
    }

    #[test]
    fn hybrid_threshold_matches_pure_index() {
        // 24 rules (> default threshold) dispatched under a forced-index
        // configuration and a forced-scan configuration must agree, and
        // the winner cache works in both.
        let build = |threshold: usize| {
            let mut eng: Engine<String> = Engine::with_config(EngineConfig {
                hybrid_linear_threshold: threshold,
                ..Default::default()
            });
            for i in 0..12 {
                eng.add_rule(Rule::customization(
                    format!("ext{i}"),
                    EventPattern::External {
                        name: Some(format!("e{i}")),
                    },
                    ContextPattern::any(),
                    format!("p{i}"),
                ))
                .unwrap();
                eng.add_rule(Rule::customization(
                    format!("user{i}"),
                    EventPattern::db(DbEventKind::GetSchema),
                    ContextPattern::for_user(format!("u{i}")),
                    format!("q{i}"),
                ))
                .unwrap();
            }
            eng
        };
        let mut indexed = build(0);
        let mut scanned = build(1000);
        assert!(indexed.len() > 16);

        for round in 0..2 {
            for i in 0..12 {
                let ctx = SessionContext::new(format!("u{i}"), "c", "app");
                for event in [get_schema(), Event::external(format!("e{i}"))] {
                    let a = indexed.dispatch(event.clone(), &ctx).unwrap();
                    let b = scanned.dispatch(event.clone(), &ctx).unwrap();
                    assert_eq!(a.customizations, b.customizations, "round {round}");
                    assert_eq!(a.fired_names(), b.fired_names());
                }
            }
        }
        // Both variants served round 2 from their winner caches.
        assert!(indexed.cache_stats().hits >= 24);
        assert!(scanned.cache_stats().hits >= 24);
    }

    #[test]
    fn guarded_rules_bypass_the_cache() {
        let flag = Arc::new(AtomicBool::new(true));
        let f = flag.clone();
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(
            cust("guarded", ContextPattern::any(), "guarded")
                .with_guard(Arc::new(move |_, _| f.load(Ordering::Relaxed))),
        )
        .unwrap();

        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["guarded"]);
        // Flip the guard's state: a cached winner would go stale here.
        flag.store(false, Ordering::Relaxed);
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert!(out.customizations.is_empty());
        let stats = eng.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn extras_bearing_rules_bypass_the_cache() {
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(cust(
            "scaled",
            ContextPattern::any().extra("scale", "1:1000"),
            "coarse",
        ))
        .unwrap();
        // Same <user, category, application> triple, different extras —
        // the cache key cannot tell these sessions apart.
        let zoomed = session().with_extra("scale", "1:1000");
        let out = eng.dispatch(get_schema(), &zoomed).unwrap();
        assert_eq!(out.customizations, vec!["coarse"]);
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert!(out.customizations.is_empty());
        assert_eq!(eng.cache_stats().entries, 0);
    }

    #[test]
    fn linear_strategy_skips_the_cache() {
        let mut eng: Engine<&str> = Engine::with_config(EngineConfig {
            strategy: DispatchStrategy::Linear,
            ..Default::default()
        });
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();
        eng.dispatch(get_schema(), &session()).unwrap();
        eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(eng.cache_stats(), CacheStats::default());
        assert_eq!(eng.strategy(), DispatchStrategy::Linear);
    }

    #[test]
    fn indexed_and_linear_agree_on_a_mixed_rule_set() {
        let build = |strategy: DispatchStrategy| {
            let mut eng: Engine<&str> = Engine::with_config(EngineConfig {
                strategy,
                ..Default::default()
            });
            eng.add_rule(cust("generic", ContextPattern::any(), "generic"))
                .unwrap();
            eng.add_rule(cust("by_user", ContextPattern::for_user("juliano"), "user"))
                .unwrap();
            eng.add_rule(Rule::customization(
                "wild",
                EventPattern::Any,
                ContextPattern::for_category("planner"),
                "wild",
            ))
            .unwrap();
            eng.add_rule(
                Rule::customization(
                    "ext",
                    EventPattern::External {
                        name: Some("refresh".into()),
                    },
                    ContextPattern::any(),
                    "ext",
                )
                .with_priority(3),
            )
            .unwrap();
            eng.add_rule(
                Rule::integrity("audit", EventPattern::Any, Arc::new(|_, _| vec![]))
                    .with_priority(-1),
            )
            .unwrap();
            eng
        };
        let mut indexed = build(DispatchStrategy::Indexed);
        let mut linear = build(DispatchStrategy::Linear);

        let events = [
            get_schema(),
            Event::external("refresh"),
            Event::interface("click", "schema_window/list"),
            Event::Db(DbEvent::GetClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            }),
        ];
        for event in &events {
            for ctx in [session(), SessionContext::new("guest", "visitor", "x")] {
                // Twice per pair so the second round hits the cache.
                for _ in 0..2 {
                    let a = indexed.dispatch(event.clone(), &ctx).unwrap();
                    let b = linear.dispatch(event.clone(), &ctx).unwrap();
                    assert_eq!(a.customizations, b.customizations);
                    assert_eq!(a.fired_names(), b.fired_names());
                    assert_eq!(a.events_processed, b.events_processed);
                    assert_eq!(a.trace.entries.len(), b.trace.entries.len());
                    for (ta, tb) in a.trace.entries.iter().zip(&b.trace.entries) {
                        assert_eq!(ta.matched, tb.matched);
                        assert_eq!(ta.fired, tb.fired);
                        assert_eq!(ta.shadowed, tb.shadowed);
                    }
                }
            }
        }
        assert!(indexed.cache_stats().hits > 0);
    }

    #[test]
    fn no_matching_rule_yields_empty_outcome() {
        let mut eng: Engine<&str> = Engine::new();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert!(out.customizations.is_empty());
        assert!(out.customization().is_none());
        assert_eq!(out.events_processed, 1);
    }

    #[test]
    fn tracing_can_be_disabled() {
        let mut eng: Engine<&str> = Engine::with_config(EngineConfig {
            tracing: false,
            ..Default::default()
        });
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert!(out.trace.entries.is_empty());
        assert_eq!(out.customizations, vec!["a"]);
    }

    /// A rule population broad enough to exercise every compiled table
    /// kind: per-kind db rules, named/wildcard interface and external
    /// rules, context lattice, priorities, integrity rules.
    fn compiled_fixture(strategy: DispatchStrategy, tracing: bool) -> Engine<&'static str> {
        let mut eng: Engine<&str> = Engine::with_config(EngineConfig {
            strategy,
            tracing,
            // Force the tiered path even for this small population.
            hybrid_linear_threshold: 0,
            ..Default::default()
        });
        eng.add_rule(cust("generic", ContextPattern::any(), "generic"))
            .unwrap();
        eng.add_rule(cust(
            "by_cat",
            ContextPattern::for_category("planner"),
            "cat",
        ))
        .unwrap();
        eng.add_rule(cust("by_user", ContextPattern::for_user("juliano"), "user"))
            .unwrap();
        eng.add_rule(
            Rule::customization(
                "click",
                EventPattern::Interface {
                    name: Some("click".into()),
                    source_prefix: Some("schema_window/".into()),
                },
                ContextPattern::any(),
                "click",
            )
            .with_priority(2),
        )
        .unwrap();
        eng.add_rule(Rule::customization(
            "ext",
            EventPattern::External {
                name: Some("refresh".into()),
            },
            ContextPattern::any(),
            "refresh",
        ))
        .unwrap();
        eng.add_rule(
            Rule::integrity("audit", EventPattern::Any, Arc::new(|_, _| vec![])).with_priority(-1),
        )
        .unwrap();
        eng
    }

    fn compiled_events() -> Vec<Event> {
        vec![
            get_schema(),
            Event::Db(DbEvent::GetClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            }),
            Event::interface("click", "schema_window/list"),
            Event::interface("click", "map/pan"),
            Event::interface("drag", "schema_window/list"),
            Event::external("refresh"),
            Event::external("unseen"),
        ]
    }

    #[test]
    fn compiled_matches_linear_including_traces() {
        let mut compiled = compiled_fixture(DispatchStrategy::Compiled, true);
        let mut linear = compiled_fixture(DispatchStrategy::Linear, true);
        for event in compiled_events() {
            for ctx in [session(), SessionContext::new("guest", "visitor", "x")] {
                for _ in 0..2 {
                    let a = compiled.dispatch(event.clone(), &ctx).unwrap();
                    let b = linear.dispatch(event.clone(), &ctx).unwrap();
                    assert_eq!(a.customizations, b.customizations);
                    assert_eq!(a.fired_names(), b.fired_names());
                    assert_eq!(a.events_processed, b.events_processed);
                    assert_eq!(a.trace.entries.len(), b.trace.entries.len());
                    for (ta, tb) in a.trace.entries.iter().zip(&b.trace.entries) {
                        assert_eq!(ta.matched, tb.matched);
                        assert_eq!(ta.fired, tb.fired);
                        assert_eq!(ta.shadowed, tb.shadowed);
                    }
                }
            }
        }
        assert!(compiled.cache_stats().hits > 0);
    }

    #[test]
    fn compiled_early_exit_matches_linear_outcomes() {
        // Tracing off + MostSpecific: the compiled walk stops at the
        // first (highest-ranked) match. Outcomes must be unchanged.
        let mut compiled = compiled_fixture(DispatchStrategy::Compiled, false);
        let mut linear = compiled_fixture(DispatchStrategy::Linear, false);
        for event in compiled_events() {
            for ctx in [session(), SessionContext::new("guest", "visitor", "x")] {
                for _ in 0..2 {
                    let a = compiled.dispatch(event.clone(), &ctx).unwrap();
                    let b = linear.dispatch(event.clone(), &ctx).unwrap();
                    assert_eq!(a.customizations, b.customizations);
                    assert_eq!(a.fired_names(), b.fired_names());
                    assert_eq!(a.events_processed, b.events_processed);
                }
            }
        }
    }

    #[test]
    fn compiled_recompiles_on_mutation_and_packed_cache_hits() {
        let mut eng = compiled_fixture(DispatchStrategy::Compiled, true);
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["user"]);
        let stats0 = eng.compiled_stats().expect("compiled after dispatch");
        assert!(stats0.packed_cache, "fixture interns within width");
        assert_eq!(eng.cache_stats().misses, 1);
        // Same event+context again: answered by the packed winner cache.
        eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(eng.cache_stats().hits, 1);

        // Mutation flips the content generation: recompile + fresh cache.
        eng.remove_rule("by_user").unwrap();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["cat"]);
        let stats1 = eng.compiled_stats().unwrap();
        assert!(stats1.generation > stats0.generation);
        assert_eq!(stats1.rules, stats0.rules - 1);
    }

    #[test]
    fn precompile_is_idempotent_and_off_the_dispatch_path() {
        let mut eng = compiled_fixture(DispatchStrategy::Compiled, true);
        let s1 = eng.precompile();
        let s2 = eng.precompile();
        assert_eq!(s1, s2, "same generation compiles once");
        assert!(s1.tables >= crate::compiled::DB_KIND_TABLES);
        assert!(s1.candidates >= s1.rules);
        assert_eq!(s1.users, 1);
        assert_eq!(s1.categories, 1);
        // Dispatch after precompile reuses the artifact (stats identical,
        // including the recorded compile time of the one real compile).
        eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(eng.compiled_stats().unwrap(), s1);
    }

    #[test]
    fn compiled_guarded_rules_take_the_interpreted_path() {
        let mut compiled = compiled_fixture(DispatchStrategy::Compiled, true);
        let mut linear = compiled_fixture(DispatchStrategy::Linear, true);
        for eng in [&mut compiled, &mut linear] {
            eng.add_rule(
                Rule::customization(
                    "guarded",
                    EventPattern::db(DbEventKind::GetSchema),
                    ContextPattern::for_user("juliano"),
                    "guarded",
                )
                .with_priority(99)
                .with_guard(Arc::new(|e, _| {
                    matches!(e, Event::Db(DbEvent::GetSchema { schema }) if schema == "phone_net")
                })),
            )
            .unwrap();
        }
        for event in compiled_events() {
            let a = compiled.dispatch(event.clone(), &session()).unwrap();
            let b = linear.dispatch(event.clone(), &session()).unwrap();
            assert_eq!(a.customizations, b.customizations);
            assert_eq!(a.fired_names(), b.fired_names());
        }
        // Guard present → winner cache bypassed on both arms.
        assert_eq!(compiled.cache_stats().hits, 0);
        assert_eq!(compiled.cache_stats().misses, 0);
    }

    #[test]
    fn strategy_or_selection_change_flushes_the_cache() {
        let mut eng = compiled_fixture(DispatchStrategy::Compiled, false);
        eng.dispatch(get_schema(), &session()).unwrap();
        eng.dispatch(get_schema(), &session()).unwrap();
        assert!(eng.cache_stats().entries > 0);
        eng.set_selection(SelectionPolicy::FireAll);
        assert_eq!(eng.cache_stats().entries, 0);
        // FireAll over the early-exit-free walk still sees every match.
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations.len(), 3);
        eng.set_strategy(DispatchStrategy::Indexed);
        assert_eq!(eng.cache_stats().entries, 0);
    }

    #[test]
    fn compiled_respects_quarantine_without_recompiling() {
        let mut eng = compiled_fixture(DispatchStrategy::Compiled, true);
        eng.precompile();
        let gen_before = eng.compiled_stats().unwrap().generation;
        // Quarantine the winner via the health cell the compiled walk
        // re-checks per candidate; the artifact itself is untouched.
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["user"]);
        let idx = eng.snap.by_name["by_user"];
        eng.snap.health[idx]
            .quarantined
            .store(true, Ordering::Release);
        eng.invalidate_winner_cache();
        let out = eng.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["cat"]);
        assert_eq!(eng.compiled_stats().unwrap().generation, gen_before);
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use crate::context::ContextPattern;
    use geodb::query::DbEvent;

    fn get_schema() -> Event {
        Event::Db(DbEvent::GetSchema {
            schema: "phone_net".into(),
        })
    }

    fn session() -> SessionContext {
        SessionContext::new("juliano", "planner", "pole_manager")
    }

    fn cust(name: &str, ctx: ContextPattern, payload: &'static str) -> Rule<&'static str> {
        Rule::customization(name, EventPattern::db(DbEventKind::GetSchema), ctx, payload)
    }

    #[test]
    fn engine_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuleBase<&'static str>>();
        assert_send_sync::<Engine<&'static str>>();
        assert_send_sync::<Rule<&'static str>>();
        assert_send_sync::<Outcome<&'static str>>();
        assert_send_sync::<ActiveError>();
    }

    #[test]
    fn sessions_share_the_rule_base() {
        let mut writer: Engine<&str> = Engine::new();
        writer
            .add_rule(cust("a", ContextPattern::any(), "a"))
            .unwrap();
        let mut reader = writer.session();
        let out = reader.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["a"]);

        // A mutation in one session is visible to the other at its next
        // dispatch (auto-sync).
        writer
            .add_rule(cust("b", ContextPattern::for_user("juliano"), "b"))
            .unwrap();
        let out = reader.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["b"]);
        assert_eq!(reader.len(), 2);
    }

    #[test]
    fn pinned_sessions_resync_explicitly() {
        let mut writer: Engine<&str> = Engine::new();
        writer
            .add_rule(cust("a", ContextPattern::any(), "a"))
            .unwrap();
        let mut reader = writer.session();
        reader.set_auto_sync(false);
        reader.dispatch(get_schema(), &session()).unwrap();

        writer
            .add_rule(cust("b", ContextPattern::for_user("juliano"), "b"))
            .unwrap();
        // Pinned: the reader still dispatches against its old snapshot.
        let out = reader.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["a"]);
        assert_eq!(reader.len(), 1);
        // Until it syncs.
        reader.sync();
        let out = reader.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["b"]);

        // sync_with adopts another handle's exact snapshot.
        let mut twin = writer.session();
        twin.set_auto_sync(false);
        twin.sync_with(&reader);
        assert_eq!(twin.len(), reader.len());
        let out = twin.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.customizations, vec!["b"]);
    }

    #[test]
    fn parallel_sessions_dispatch_concurrently() {
        let mut seed: Engine<&str> = Engine::new();
        seed.add_rule(cust("generic", ContextPattern::any(), "generic"))
            .unwrap();
        seed.add_rule(cust("by_user", ContextPattern::for_user("u3"), "u3"))
            .unwrap();
        let base = seed.rule_base();

        let handles: Vec<_> = (0..4)
            .map(|t| {
                let base = base.clone();
                std::thread::spawn(move || {
                    let mut eng = base.session();
                    let ctx = SessionContext::new(format!("u{t}"), "c", "app");
                    let mut firsts = Vec::new();
                    for _ in 0..50 {
                        let out = eng.dispatch(get_schema(), &ctx).unwrap();
                        firsts.push(out.customizations[0]);
                    }
                    (t, firsts, eng.dispatches())
                })
            })
            .collect();
        for h in handles {
            let (t, firsts, dispatches) = h.join().unwrap();
            let want = if t == 3 { "u3" } else { "generic" };
            assert!(firsts.iter().all(|&p| p == want), "thread {t}");
            assert_eq!(dispatches, 50);
        }
        assert_eq!(base.total_dispatches(), 200);
    }

    #[test]
    fn quarantine_is_shared_across_sessions() {
        let mut victim: Engine<&str> = Engine::new();
        victim
            .add_rule(Rule::integrity(
                "bomb",
                EventPattern::db(DbEventKind::GetSchema),
                Arc::new(|_, _| panic!("boom")),
            ))
            .unwrap();
        victim
            .add_rule(cust("ok", ContextPattern::any(), "ok"))
            .unwrap();
        let mut bystander = victim.session();

        // Three consecutive faults trip the breaker (default threshold).
        for _ in 0..3 {
            let out = victim.dispatch(get_schema(), &session()).unwrap();
            assert_eq!(out.faults.len(), 1);
        }
        assert_eq!(victim.quarantined(), vec!["bomb"]);
        assert_eq!(victim.rule_faults(), 3);

        // The other session observes the quarantine: clean dispatch.
        let out = bystander.dispatch(get_schema(), &session()).unwrap();
        assert!(out.faults.is_empty());
        assert_eq!(out.customizations, vec!["ok"]);
        assert_eq!(bystander.quarantined(), vec!["bomb"]);
        assert_eq!(bystander.rule_base().quarantined_count(), 1);

        // Clearing from either session restores the rule everywhere.
        bystander.clear_quarantine("bomb").unwrap();
        assert!(
            victim.quarantined().is_empty() || {
                victim.sync();
                victim.quarantined().is_empty()
            }
        );
        let out = victim.dispatch(get_schema(), &session()).unwrap();
        assert_eq!(out.faults.len(), 1, "rule participates again");
    }

    #[test]
    fn epoch_bumps_on_every_mutation() {
        let mut eng: Engine<&str> = Engine::new();
        let g0 = eng.rules_generation();
        eng.add_rule(cust("a", ContextPattern::any(), "a")).unwrap();
        let g1 = eng.rules_generation();
        assert!(g1 > g0);
        // A no-op prefix removal does not bump the epoch.
        assert_eq!(eng.remove_rules_with_prefix("nope/"), 0);
        assert_eq!(eng.rules_generation(), g1);
        eng.set_enabled("a", false).unwrap();
        assert!(eng.rules_generation() > g1);
    }
}

#[cfg(test)]
mod coupling_tests {
    use super::*;
    use crate::context::ContextPattern;
    use crate::rule::Coupling;
    use geodb::query::DbEvent;

    fn insert_event(n: u64) -> Event {
        Event::Db(DbEvent::Insert {
            schema: "s".into(),
            class: "C".into(),
            oid: geodb::instance::Oid(n),
        })
    }

    fn ctx() -> SessionContext {
        SessionContext::new("editor", "ops", "entry")
    }

    #[test]
    fn deferred_rules_queue_until_flush() {
        let mut eng: Engine<&str> = Engine::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = log.clone();
        eng.add_rule(
            Rule::integrity(
                "batch_check",
                EventPattern::db(DbEventKind::Insert),
                Arc::new(move |e, _| {
                    log2.lock().unwrap().push(e.describe());
                    vec![]
                }),
            )
            .with_coupling(Coupling::Deferred),
        )
        .unwrap();

        // Three inserts: rule matches (and is reported fired) but the
        // callback has not run yet.
        for i in 0..3 {
            let out = eng.dispatch(insert_event(i), &ctx()).unwrap();
            assert_eq!(out.fired.len(), 1);
        }
        assert!(log.lock().unwrap().is_empty());
        assert_eq!(eng.pending_deferred(), 3);

        // Flush = "end of transaction": all three checks run.
        let out = eng.flush_deferred().unwrap();
        assert_eq!(out.fired.len(), 3);
        assert_eq!(log.lock().unwrap().len(), 3);
        assert_eq!(eng.pending_deferred(), 0);
        // Flushing again is a no-op.
        assert!(eng.flush_deferred().unwrap().fired.is_empty());
    }

    #[test]
    fn clear_deferred_discards_queued_work() {
        let mut eng: Engine<&str> = Engine::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = hits.clone();
        eng.add_rule(
            Rule::integrity(
                "check",
                EventPattern::db(DbEventKind::Insert),
                Arc::new(move |_, _| {
                    hits2.fetch_add(1, Ordering::Relaxed);
                    vec![]
                }),
            )
            .with_coupling(Coupling::Deferred),
        )
        .unwrap();
        eng.dispatch(insert_event(1), &ctx()).unwrap();
        assert_eq!(eng.pending_deferred(), 1);
        eng.clear_deferred();
        eng.flush_deferred().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn deferred_raises_dispatch_on_flush() {
        let mut eng: Engine<&str> = Engine::new();
        // Deferred rule raises an external event; an immediate
        // customization rule answers it.
        eng.add_rule(Rule {
            name: "deferred_raiser".into(),
            event: EventPattern::db(DbEventKind::Insert),
            context: ContextPattern::any(),
            guard: None,
            action: Arc::new(Action::Raise(vec![Event::external("recheck")])),
            group: RuleGroup::Other,
            coupling: Coupling::Deferred,
            priority: 0,
            enabled: true,
        })
        .unwrap();
        eng.add_rule(Rule::customization(
            "answer",
            EventPattern::External {
                name: Some("recheck".into()),
            },
            ContextPattern::any(),
            "payload",
        ))
        .unwrap();

        let out = eng.dispatch(insert_event(1), &ctx()).unwrap();
        assert!(out.customizations.is_empty());
        let out = eng.flush_deferred().unwrap();
        assert_eq!(out.customizations, vec!["payload"]);
        assert!(out.fired_names().contains(&"answer"));
    }

    #[test]
    fn immediate_is_the_default_coupling() {
        let r: Rule<&str> = Rule::customization("r", EventPattern::Any, ContextPattern::any(), "p");
        assert_eq!(r.coupling, Coupling::Immediate);
    }
}
