//! The compiled dispatch tier: per-epoch flat decision tables.
//!
//! The discrimination index (see `engine.rs`) made *cache-hot* dispatch
//! cheap, but a cold dispatch still interprets every candidate: string
//! compares for schema/class/name, `Option` walks for the context
//! pattern, and a full `max_by_key` specificity resolution per event.
//! [`compile`] removes all of that from the hot path by lowering a
//! published rule snapshot — once per content generation, off the
//! dispatch path — into [`CompiledRules`]:
//!
//! * **Dense jump tables.** One [`CompiledTable`] per `DbEventKind`
//!   (a 7-slot array — no hash lookup for database events), plus one per
//!   interface gesture name and external event name, plus fallback
//!   tables for names no rule mentions. Each table is the *pre-merged*
//!   union of the keyed, any-of-kind and wildcard buckets, so dispatch
//!   walks exactly one flat vector with no run-merging.
//! * **Interning.** Every string a pattern can test — users, categories,
//!   applications, schemas, classes — is interned to a small integer at
//!   compile time. The rule's context condition collapses to one masked
//!   compare of a packed `u64` (20 bits per field); event fields are
//!   interned once per cascade step and compared as integers. A string
//!   the tables never saw interns to `0`, which no pattern requirement
//!   can equal — exactly the semantics of equality matching.
//! * **Pre-resolved specificity.** Customization candidates are sorted
//!   at compile time by descending `(specificity, priority,
//!   registration)` — the engine's selection key. Under `MostSpecific`
//!   with tracing off, the first matching candidate *is* the winner and
//!   the walk stops there.
//! * **Guard partitioning.** Guard-free rules are fully decided by the
//!   integer checks; rules carrying native guards or extension-dimension
//!   requirements are flagged [`slow`](CompiledCand::slow) and fall back
//!   to the interpreted `Rule::matches` — pre-partitioned, so the common
//!   case never tests for the rare one.
//!
//! Interface `source_prefix` conditions are not equality matches; they
//! compile to a bitmask over the (few) distinct prefixes, computed once
//! per event and tested with one AND per candidate.
//!
//! The structure is independent of the payload type `P`: it stores rule
//! *indices* into the snapshot it was compiled from, keyed by the
//! snapshot's content `generation` (quarantine flips bump the epoch but
//! not the generation — health is re-checked per dispatch, so compiled
//! tables survive quarantine transitions unchanged).

use std::collections::HashMap;

use geodb::query::DbEventKind;

use crate::context::SessionContext;
use crate::event::{Event, EventPattern};
use crate::rule::{Rule, RuleGroup};

/// Bits per interned context field in the packed `u64` key
/// (`user | category | application`, most-specific field highest).
const FIELD_BITS: u32 = 20;
const FIELD_MAX: u32 = (1 << FIELD_BITS) - 1;
const USER_SHIFT: u32 = 2 * FIELD_BITS;
const CAT_SHIFT: u32 = FIELD_BITS;

/// Distinct interface source prefixes representable in the per-event
/// bitmask; rules referencing prefixes beyond this fall back to the
/// interpreted path (and the packed cache is disabled — the mask no
/// longer separates all distinguishable events).
const MAX_PREFIXES: usize = 32;

/// Number of dense database-event tables (one per [`DbEventKind`]).
pub(crate) const DB_KIND_TABLES: usize = 7;

/// Dense slot for a database event kind.
pub(crate) fn kind_slot(kind: DbEventKind) -> usize {
    match kind {
        DbEventKind::GetSchema => 0,
        DbEventKind::GetClass => 1,
        DbEventKind::GetValue => 2,
        DbEventKind::Insert => 3,
        DbEventKind::Update => 4,
        DbEventKind::Delete => 5,
        DbEventKind::SchemaRegistered => 6,
    }
}

/// String → small-integer table. Ids are 1-based: `0` is reserved for
/// "not interned", which can never satisfy a pattern requirement.
#[derive(Debug, Default)]
struct Interner {
    map: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        let next = self.map.len() as u32 + 1;
        *self.map.entry(s.to_string()).or_insert(next)
    }

    fn get(&self, s: &str) -> u32 {
        self.map.get(s).copied().unwrap_or(0)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn overflows(&self) -> bool {
        self.map.len() as u32 > FIELD_MAX
    }
}

/// One rule in a compiled table: the integer-only residue of its match
/// condition (everything the table membership has not already decided).
#[derive(Debug, Clone)]
pub(crate) struct CompiledCand {
    /// Index into the snapshot's rule vector.
    pub(crate) idx: u32,
    /// Which packed-context bits the rule constrains…
    ctx_mask: u64,
    /// …and the interned values they must hold.
    ctx_want: u64,
    /// Required interned schema (`0` = unconstrained).
    schema_req: u32,
    /// Required interned class (`0` = unconstrained).
    class_req: u32,
    /// 1-based bit in the event's prefix mask (`0` = unconstrained).
    prefix_req: u32,
    /// Guard- or extras-bearing: integer checks cannot decide the match;
    /// evaluate the interpreted `Rule::matches` instead.
    pub(crate) slow: bool,
}

impl CompiledCand {
    /// The integer-only match test (sound exactly when `!self.slow`).
    #[inline]
    pub(crate) fn matches_fast(&self, ids: &EventIds, ctx_packed: u64) -> bool {
        (self.schema_req == 0 || self.schema_req == ids.schema)
            && (self.class_req == 0 || self.class_req == ids.class)
            && (self.prefix_req == 0 || ids.prefix_mask & (1 << (self.prefix_req - 1)) != 0)
            && ctx_packed & self.ctx_mask == self.ctx_want
    }
}

/// One jump-table entry: all candidates that can possibly match events
/// routed here, pre-partitioned by rule group.
#[derive(Debug, Default, Clone)]
pub(crate) struct CompiledTable {
    /// Customization candidates in *descending* pre-resolved selection
    /// order `(specificity, priority, registration index)`.
    pub(crate) cust: Vec<CompiledCand>,
    /// Non-customization candidates in ascending registration order
    /// (firing order is resolved later, per dispatch, by priority).
    pub(crate) other: Vec<CompiledCand>,
}

/// The per-cascade-step interned view of an event: computed once, then
/// compared as integers against every candidate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EventIds {
    /// Packed event discriminant for the winner-cache key (only
    /// meaningful while [`CompiledRules::cacheable`]).
    pub(crate) key: u64,
    schema: u32,
    class: u32,
    prefix_mask: u32,
}

/// What one epoch compile produced — surfaced through
/// `Engine::compiled_stats` and the REPL `:compile` command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Content generation the tables were compiled from.
    pub generation: u64,
    /// Enabled rules lowered into the tables.
    pub rules: usize,
    /// Jump tables emitted (7 db kinds + per-name + 2 fallbacks).
    pub tables: usize,
    /// Total candidate slots across every table (a rule with a broad
    /// pattern occupies several tables).
    pub candidates: usize,
    /// Distinct interned users / categories / applications.
    pub users: usize,
    pub categories: usize,
    pub applications: usize,
    /// Distinct interned event terms (schemas, classes, gesture and
    /// external names, source prefixes).
    pub event_terms: usize,
    /// Whether the packed `u64` winner-cache key is in use (false only
    /// in degenerate snapshots that overflow the interning widths).
    pub packed_cache: bool,
    /// Wall-clock nanoseconds the compile took (off the dispatch path).
    pub compile_ns: u64,
}

/// The compiled form of one rule snapshot.
#[derive(Debug)]
pub(crate) struct CompiledRules {
    pub(crate) generation: u64,
    users: Interner,
    categories: Interner,
    applications: Interner,
    schemas: Interner,
    classes: Interner,
    iface_names: Interner,
    ext_names: Interner,
    prefixes: Vec<String>,
    db: [CompiledTable; DB_KIND_TABLES],
    iface_tables: Vec<CompiledTable>,
    /// Interface events whose gesture name no rule mentions by name.
    iface_any: CompiledTable,
    ext_tables: Vec<CompiledTable>,
    ext_any: CompiledTable,
    /// Packed keys are collision-free (every interned id fits its field
    /// and the prefix mask covers every prefix) — the winner cache may
    /// key on them.
    pub(crate) cacheable: bool,
    pub(crate) stats: CompileStats,
}

impl CompiledRules {
    /// Pack a session context into the interned `u64` key. Computed once
    /// per dispatch (the context is fixed across the cascade).
    pub(crate) fn pack_ctx(&self, ctx: &SessionContext) -> u64 {
        ((self.users.get(&ctx.user) as u64) << USER_SHIFT)
            | ((self.categories.get(&ctx.category) as u64) << CAT_SHIFT)
            | self.applications.get(&ctx.application) as u64
    }

    /// Route an event to its jump table and intern its observable fields
    /// — one hash lookup per string field, once per cascade step.
    pub(crate) fn lookup(&self, event: &Event) -> (&CompiledTable, EventIds) {
        match event {
            Event::Db(e) => {
                let slot = kind_slot(e.kind());
                let schema = self.schemas.get(e.schema());
                let class = e.class().map_or(0, |c| self.classes.get(c));
                let key = ((slot as u64) << 50) | ((schema as u64) << 25) | class as u64;
                (
                    &self.db[slot],
                    EventIds {
                        key,
                        schema,
                        class,
                        prefix_mask: 0,
                    },
                )
            }
            Event::Interface { name, source } => {
                let id = self.iface_names.get(name);
                let table = if id > 0 {
                    &self.iface_tables[id as usize - 1]
                } else {
                    &self.iface_any
                };
                let mut mask = 0u32;
                for (bit, p) in self.prefixes.iter().enumerate() {
                    if source.starts_with(p.as_str()) {
                        mask |= 1 << bit;
                    }
                }
                let key = (1u64 << 60) | ((id as u64) << 32) | mask as u64;
                (
                    table,
                    EventIds {
                        key,
                        schema: 0,
                        class: 0,
                        prefix_mask: mask,
                    },
                )
            }
            Event::External { name } => {
                let id = self.ext_names.get(name);
                let table = if id > 0 {
                    &self.ext_tables[id as usize - 1]
                } else {
                    &self.ext_any
                };
                let key = (2u64 << 60) | id as u64;
                (
                    table,
                    EventIds {
                        key,
                        schema: 0,
                        class: 0,
                        prefix_mask: 0,
                    },
                )
            }
        }
    }
}

/// Where a candidate is routed during distribution.
enum Target {
    Db(usize),
    Iface(usize),
    IfaceAny,
    Ext(usize),
    ExtAny,
}

/// Lower a rule vector into flat dispatch tables. Runs once per content
/// generation, never on the dispatch path; cost is O(rules × tables a
/// rule occupies) plus one sort per table.
pub(crate) fn compile<P>(rules: &[Rule<P>], generation: u64) -> CompiledRules {
    let mut users = Interner::default();
    let mut categories = Interner::default();
    let mut applications = Interner::default();
    let mut schemas = Interner::default();
    let mut classes = Interner::default();
    let mut iface_names = Interner::default();
    let mut ext_names = Interner::default();
    let mut prefixes: Vec<String> = Vec::new();
    let mut prefix_overflow = false;

    // Pass 1: the named tables that must exist (one per distinct
    // gesture/external name any enabled rule matches by name).
    for r in rules.iter().filter(|r| r.enabled) {
        match &r.event {
            EventPattern::Interface { name: Some(n), .. } => {
                iface_names.intern(n);
            }
            EventPattern::External { name: Some(n) } => {
                ext_names.intern(n);
            }
            _ => {}
        }
    }
    let mut db: [CompiledTable; DB_KIND_TABLES] = Default::default();
    let mut iface_tables = vec![CompiledTable::default(); iface_names.len()];
    let mut iface_any = CompiledTable::default();
    let mut ext_tables = vec![CompiledTable::default(); ext_names.len()];
    let mut ext_any = CompiledTable::default();

    // Pass 2: distribute every enabled rule into the tables its pattern
    // can reach, lowering its conditions to integer requirements.
    let mut targets: Vec<Target> = Vec::new();
    for (idx, r) in rules.iter().enumerate() {
        if !r.enabled {
            continue;
        }
        let mut cand = CompiledCand {
            idx: idx as u32,
            ctx_mask: 0,
            ctx_want: 0,
            schema_req: 0,
            class_req: 0,
            prefix_req: 0,
            slow: r.needs_interpreted_match(),
        };
        for (field, interner, shift) in [
            (&r.context.user, &mut users, USER_SHIFT),
            (&r.context.category, &mut categories, CAT_SHIFT),
            (&r.context.application, &mut applications, 0),
        ] {
            if let Some(v) = field {
                cand.ctx_mask |= (FIELD_MAX as u64) << shift;
                cand.ctx_want |= (interner.intern(v) as u64) << shift;
            }
        }

        targets.clear();
        match &r.event {
            EventPattern::Any => {
                targets.extend((0..DB_KIND_TABLES).map(Target::Db));
                targets.extend((0..iface_tables.len()).map(Target::Iface));
                targets.push(Target::IfaceAny);
                targets.extend((0..ext_tables.len()).map(Target::Ext));
                targets.push(Target::ExtAny);
            }
            EventPattern::Db {
                kind,
                schema,
                class,
            } => {
                if let Some(s) = schema {
                    cand.schema_req = schemas.intern(s);
                }
                if let Some(c) = class {
                    cand.class_req = classes.intern(c);
                }
                match kind {
                    Some(k) => targets.push(Target::Db(kind_slot(*k))),
                    None => targets.extend((0..DB_KIND_TABLES).map(Target::Db)),
                }
            }
            EventPattern::Interface {
                name,
                source_prefix,
            } => {
                if let Some(p) = source_prefix {
                    let bit = prefixes.iter().position(|q| q == p).unwrap_or_else(|| {
                        prefixes.push(p.clone());
                        prefixes.len() - 1
                    });
                    if bit < MAX_PREFIXES {
                        cand.prefix_req = bit as u32 + 1;
                    } else {
                        // No mask bit left for this prefix: evaluate the
                        // pattern on the interpreted path instead.
                        prefix_overflow = true;
                        cand.slow = true;
                    }
                }
                match name {
                    Some(n) => targets.push(Target::Iface(iface_names.get(n) as usize - 1)),
                    None => {
                        targets.extend((0..iface_tables.len()).map(Target::Iface));
                        targets.push(Target::IfaceAny);
                    }
                }
            }
            EventPattern::External { name } => match name {
                Some(n) => targets.push(Target::Ext(ext_names.get(n) as usize - 1)),
                None => {
                    targets.extend((0..ext_tables.len()).map(Target::Ext));
                    targets.push(Target::ExtAny);
                }
            },
        }

        let cust = r.group == RuleGroup::Customization;
        for t in &targets {
            let table = match t {
                Target::Db(i) => &mut db[*i],
                Target::Iface(i) => &mut iface_tables[*i],
                Target::IfaceAny => &mut iface_any,
                Target::Ext(i) => &mut ext_tables[*i],
                Target::ExtAny => &mut ext_any,
            };
            if cust {
                table.cust.push(cand.clone());
            } else {
                table.other.push(cand.clone());
            }
        }
    }

    // An interning width overflow would corrupt the packed compares;
    // degrade the whole epoch to interpreted matching (still pruned by
    // the tables) rather than match incorrectly. Unreachable for any
    // realistic rule set (> 2^20 distinct pattern strings per field).
    let ctx_overflow = users.overflows() || categories.overflows() || applications.overflows();
    let cacheable = !ctx_overflow
        && !prefix_overflow
        && !schemas.overflows()
        && !classes.overflows()
        && !iface_names.overflows()
        && !ext_names.overflows();

    // Pre-resolve selection order: descending (specificity, priority,
    // registration index), so the first matching customization candidate
    // is the `MostSpecific` winner.
    let mut candidates = 0usize;
    let all_tables = db
        .iter_mut()
        .chain(iface_tables.iter_mut())
        .chain(std::iter::once(&mut iface_any))
        .chain(ext_tables.iter_mut())
        .chain(std::iter::once(&mut ext_any));
    let mut tables = 0usize;
    for table in all_tables {
        table.cust.sort_unstable_by_key(|c| {
            let r = &rules[c.idx as usize];
            std::cmp::Reverse((r.specificity(), r.priority, c.idx))
        });
        if ctx_overflow {
            for c in table.cust.iter_mut().chain(table.other.iter_mut()) {
                c.slow = true;
            }
        }
        candidates += table.cust.len() + table.other.len();
        tables += 1;
    }

    let stats = CompileStats {
        generation,
        rules: rules.iter().filter(|r| r.enabled).count(),
        tables,
        candidates,
        users: users.len(),
        categories: categories.len(),
        applications: applications.len(),
        event_terms: schemas.len()
            + classes.len()
            + iface_names.len()
            + ext_names.len()
            + prefixes.len(),
        packed_cache: cacheable,
        compile_ns: 0,
    };
    CompiledRules {
        generation,
        users,
        categories,
        applications,
        schemas,
        classes,
        iface_names,
        ext_names,
        prefixes,
        db,
        iface_tables,
        iface_any,
        ext_tables,
        ext_any,
        cacheable,
        stats,
    }
}
