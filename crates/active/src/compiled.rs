//! The compiled dispatch tier: per-epoch flat decision tables.
//!
//! The discrimination index (see `engine.rs`) made *cache-hot* dispatch
//! cheap, but a cold dispatch still interprets every candidate: string
//! compares for schema/class/name, `Option` walks for the context
//! pattern, and a full `max_by_key` specificity resolution per event.
//! [`compile`] removes all of that from the hot path by lowering a
//! published rule snapshot — once per content generation, off the
//! dispatch path — into [`CompiledRules`]:
//!
//! * **Dense jump tables.** One [`CompiledTable`] per `DbEventKind`
//!   (a 7-slot array — no hash lookup for database events), plus one per
//!   interface gesture name and external event name, plus fallback
//!   tables for names no rule mentions. Each table is the *pre-merged*
//!   union of the keyed, any-of-kind and wildcard buckets, so dispatch
//!   walks exactly one flat vector with no run-merging.
//! * **Interning.** Every string a pattern can test — users, categories,
//!   applications, schemas, classes — is interned to a small integer at
//!   compile time. The rule's context condition collapses to one masked
//!   compare of a packed `u64` (20 bits per field); event fields are
//!   interned once per cascade step and compared as integers. A string
//!   the tables never saw interns to `0`, which no pattern requirement
//!   can equal — exactly the semantics of equality matching.
//! * **Pre-resolved specificity.** Customization candidates are sorted
//!   at compile time by descending `(specificity, priority,
//!   registration)` — the engine's selection key. Under `MostSpecific`
//!   with tracing off, the first matching candidate *is* the winner and
//!   the walk stops there.
//! * **Guard partitioning.** Guard-free rules are fully decided by the
//!   integer checks; rules carrying native guards or extension-dimension
//!   requirements are flagged [`slow`](CompiledCand::slow) and fall back
//!   to the interpreted `Rule::matches` — pre-partitioned, so the common
//!   case never tests for the rare one.
//!
//! Interface `source_prefix` conditions are not equality matches; they
//! compile to a bitmask over the (few) distinct prefixes, computed once
//! per event and tested with one AND per candidate.
//!
//! The structure is independent of the payload type `P`: it stores rule
//! *indices* into the snapshot it was compiled from, keyed by the
//! snapshot's content `generation` (quarantine flips bump the epoch but
//! not the generation — health is re-checked per dispatch, so compiled
//! tables survive quarantine transitions unchanged).

use std::collections::HashMap;
use std::sync::Arc;

use geodb::query::DbEventKind;

use crate::context::{ContextPattern, SessionContext};
use crate::event::{Event, EventPattern};
use crate::rule::{Rule, RuleGroup};

/// Bits per interned context field in the packed `u64` key
/// (`user | category | application`, most-specific field highest).
const FIELD_BITS: u32 = 20;
const FIELD_MAX: u32 = (1 << FIELD_BITS) - 1;
const USER_SHIFT: u32 = 2 * FIELD_BITS;
const CAT_SHIFT: u32 = FIELD_BITS;

/// Distinct interface source prefixes representable in the per-event
/// bitmask; rules referencing prefixes beyond this fall back to the
/// interpreted path (and the packed cache is disabled — the mask no
/// longer separates all distinguishable events).
const MAX_PREFIXES: usize = 32;

/// Number of dense database-event tables (one per [`DbEventKind`]).
pub(crate) const DB_KIND_TABLES: usize = 7;

/// Dense slot for a database event kind.
pub(crate) fn kind_slot(kind: DbEventKind) -> usize {
    match kind {
        DbEventKind::GetSchema => 0,
        DbEventKind::GetClass => 1,
        DbEventKind::GetValue => 2,
        DbEventKind::Insert => 3,
        DbEventKind::Update => 4,
        DbEventKind::Delete => 5,
        DbEventKind::SchemaRegistered => 6,
    }
}

/// String → small-integer table. Ids are 1-based: `0` is reserved for
/// "not interned", which can never satisfy a pattern requirement.
#[derive(Debug, Default, Clone)]
struct Interner {
    map: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        let next = self.map.len() as u32 + 1;
        *self.map.entry(s.to_string()).or_insert(next)
    }

    fn get(&self, s: &str) -> u32 {
        self.map.get(s).copied().unwrap_or(0)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn overflows(&self) -> bool {
        self.map.len() as u32 > FIELD_MAX
    }
}

/// One rule in a compiled table: the integer-only residue of its match
/// condition (everything the table membership has not already decided).
#[derive(Debug, Clone)]
pub(crate) struct CompiledCand {
    /// Index into the snapshot's rule vector.
    pub(crate) idx: u32,
    /// Which packed-context bits the rule constrains…
    ctx_mask: u64,
    /// …and the interned values they must hold.
    ctx_want: u64,
    /// Required interned schema (`0` = unconstrained).
    schema_req: u32,
    /// Required interned class (`0` = unconstrained).
    class_req: u32,
    /// 1-based bit in the event's prefix mask (`0` = unconstrained).
    prefix_req: u32,
    /// Guard- or extras-bearing: integer checks cannot decide the match;
    /// evaluate the interpreted `Rule::matches` instead.
    pub(crate) slow: bool,
    /// Pre-resolved selection key, copied from the rule at lowering time
    /// so a patch can re-sort without consulting the snapshot.
    spec: u32,
    prio: i32,
}

impl CompiledCand {
    /// The integer-only match test (sound exactly when `!self.slow`).
    #[inline]
    pub(crate) fn matches_fast(&self, ids: &EventIds, ctx_packed: u64) -> bool {
        (self.schema_req == 0 || self.schema_req == ids.schema)
            && (self.class_req == 0 || self.class_req == ids.class)
            && (self.prefix_req == 0 || ids.prefix_mask & (1 << (self.prefix_req - 1)) != 0)
            && ctx_packed & self.ctx_mask == self.ctx_want
    }
}

/// One jump-table entry: all candidates that can possibly match events
/// routed here, pre-partitioned by rule group.
#[derive(Debug, Default, Clone)]
pub(crate) struct CompiledTable {
    /// Customization candidates in *descending* pre-resolved selection
    /// order `(specificity, priority, registration index)`.
    pub(crate) cust: Vec<CompiledCand>,
    /// Non-customization candidates in ascending registration order
    /// (firing order is resolved later, per dispatch, by priority).
    pub(crate) other: Vec<CompiledCand>,
}

/// Which jump table an event routed to. `Copy`, so a batch lane can
/// remember the route for a run of identical events and replay it
/// without re-hashing the event's string fields (the table reference
/// itself cannot be stored across dispatches — only this tag can).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    Db(u8),
    Iface(u32),
    IfaceAny,
    Ext(u32),
    ExtAny,
}

/// The per-cascade-step interned view of an event: computed once, then
/// compared as integers against every candidate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EventIds {
    /// Packed event discriminant for the winner-cache key (only
    /// meaningful while [`CompiledRules::cacheable`]).
    pub(crate) key: u64,
    /// The jump table `lookup` resolved, replayable via
    /// [`CompiledRules::table`].
    pub(crate) route: Route,
    schema: u32,
    class: u32,
    prefix_mask: u32,
}

/// What one epoch compile produced — surfaced through
/// `Engine::compiled_stats` and the REPL `:compile` command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Content generation the tables were compiled from.
    pub generation: u64,
    /// Enabled rules lowered into the tables.
    pub rules: usize,
    /// Jump tables emitted (7 db kinds + per-name + 2 fallbacks).
    pub tables: usize,
    /// Total candidate slots across every table (a rule with a broad
    /// pattern occupies several tables).
    pub candidates: usize,
    /// Distinct interned users / categories / applications.
    pub users: usize,
    pub categories: usize,
    pub applications: usize,
    /// Distinct interned event terms (schemas, classes, gesture and
    /// external names, source prefixes).
    pub event_terms: usize,
    /// Whether the packed `u64` winner-cache key is in use (false only
    /// in degenerate snapshots that overflow the interning widths).
    pub packed_cache: bool,
    /// Whether this artifact was produced by patching the previous one
    /// (see [`patch`]) rather than a full compile.
    pub patched: bool,
    /// Wall-clock nanoseconds the compile (or patch) took (off the
    /// dispatch path).
    pub compile_ns: u64,
}

/// The compiled form of one rule snapshot.
///
/// Interners are `Arc`-shared so that [`patch`] can clone an artifact
/// without rehashing every interned string; a patch that needs to
/// intern a *new* string copies only the affected interner
/// (`Arc::make_mut`).
#[derive(Debug)]
pub(crate) struct CompiledRules {
    pub(crate) generation: u64,
    users: Arc<Interner>,
    categories: Arc<Interner>,
    applications: Arc<Interner>,
    schemas: Arc<Interner>,
    classes: Arc<Interner>,
    iface_names: Arc<Interner>,
    ext_names: Arc<Interner>,
    prefixes: Vec<String>,
    db: [CompiledTable; DB_KIND_TABLES],
    iface_tables: Vec<CompiledTable>,
    /// Interface events whose gesture name no rule mentions by name.
    iface_any: CompiledTable,
    ext_tables: Vec<CompiledTable>,
    ext_any: CompiledTable,
    /// Packed keys are collision-free (every interned id fits its field
    /// and the prefix mask covers every prefix) — the winner cache may
    /// key on them.
    pub(crate) cacheable: bool,
    pub(crate) stats: CompileStats,
}

impl CompiledRules {
    /// Pack a session context into the interned `u64` key. Computed once
    /// per dispatch (the context is fixed across the cascade).
    pub(crate) fn pack_ctx(&self, ctx: &SessionContext) -> u64 {
        ((self.users.get(&ctx.user) as u64) << USER_SHIFT)
            | ((self.categories.get(&ctx.category) as u64) << CAT_SHIFT)
            | self.applications.get(&ctx.application) as u64
    }

    /// Route an event to its jump table and intern its observable fields
    /// — one hash lookup per string field, once per cascade step.
    pub(crate) fn lookup(&self, event: &Event) -> (&CompiledTable, EventIds) {
        match event {
            Event::Db(e) => {
                let slot = kind_slot(e.kind());
                let schema = self.schemas.get(e.schema());
                let class = e.class().map_or(0, |c| self.classes.get(c));
                let key = ((slot as u64) << 50) | ((schema as u64) << 25) | class as u64;
                (
                    &self.db[slot],
                    EventIds {
                        key,
                        route: Route::Db(slot as u8),
                        schema,
                        class,
                        prefix_mask: 0,
                    },
                )
            }
            Event::Interface { name, source } => {
                let id = self.iface_names.get(name);
                let (table, route) = if id > 0 {
                    (&self.iface_tables[id as usize - 1], Route::Iface(id - 1))
                } else {
                    (&self.iface_any, Route::IfaceAny)
                };
                let mut mask = 0u32;
                for (bit, p) in self.prefixes.iter().enumerate() {
                    if source.starts_with(p.as_str()) {
                        mask |= 1 << bit;
                    }
                }
                let key = (1u64 << 60) | ((id as u64) << 32) | mask as u64;
                (
                    table,
                    EventIds {
                        key,
                        route,
                        schema: 0,
                        class: 0,
                        prefix_mask: mask,
                    },
                )
            }
            Event::External { name } => {
                let id = self.ext_names.get(name);
                let (table, route) = if id > 0 {
                    (&self.ext_tables[id as usize - 1], Route::Ext(id - 1))
                } else {
                    (&self.ext_any, Route::ExtAny)
                };
                let key = (2u64 << 60) | id as u64;
                (
                    table,
                    EventIds {
                        key,
                        route,
                        schema: 0,
                        class: 0,
                        prefix_mask: 0,
                    },
                )
            }
        }
    }

    /// Replay a route captured by [`lookup`] — no event inspection, no
    /// hashing. Used by the batch lane for runs of identical events.
    pub(crate) fn table(&self, route: Route) -> &CompiledTable {
        match route {
            Route::Db(slot) => &self.db[slot as usize],
            Route::Iface(i) => &self.iface_tables[i as usize],
            Route::IfaceAny => &self.iface_any,
            Route::Ext(i) => &self.ext_tables[i as usize],
            Route::ExtAny => &self.ext_any,
        }
    }
}

/// The pattern-level residue of one rule, captured at mutation time so
/// a later [`patch`] can lower it without access to the typed snapshot
/// (the payload `P` never crosses into the delta log).
#[derive(Debug, Clone)]
pub(crate) struct RuleLite {
    pub(crate) event: EventPattern,
    pub(crate) context: ContextPattern,
    pub(crate) spec: u32,
    pub(crate) priority: i32,
    pub(crate) cust: bool,
    pub(crate) slow: bool,
}

impl RuleLite {
    pub(crate) fn of<P>(r: &Rule<P>) -> RuleLite {
        RuleLite {
            event: r.event.clone(),
            context: r.context.clone(),
            spec: r.specificity(),
            priority: r.priority,
            cust: r.group == RuleGroup::Customization,
            slow: r.needs_interpreted_match(),
        }
    }
}

/// One recorded snapshot mutation, replayable against a compiled
/// artifact by [`patch`].
#[derive(Debug, Clone)]
pub(crate) enum Delta {
    /// Rule appended at `idx` (`RuleSnapshot::add` always appends).
    Add { idx: u32, rule: RuleLite },
    /// Rule removed from `idx`; every later index shifts down by one.
    /// `was_enabled` tells the patch whether any candidates exist.
    Remove { idx: u32, was_enabled: bool },
    /// Disabled rule at `idx` re-enabled (indices unchanged).
    Enable { idx: u32, rule: RuleLite },
    /// Enabled rule at `idx` disabled.
    Disable { idx: u32 },
    /// Priority changed on the enabled rule at `idx` (`spec` re-captured
    /// so the full sort key travels with the delta).
    Priority { idx: u32, priority: i32, spec: u32 },
    /// Generation advanced with no table effect (e.g. `set_enabled` to
    /// the state the rule was already in).
    Noop,
    /// Bulk mutation (prefix removal, install storms) — always
    /// recompiled from scratch.
    Bulk,
}

/// Splice a chain of single-rule deltas into an existing artifact in
/// place of a full [`compile`]. Tables are cloned wholesale (a memcpy
/// per table — no hashing, no sorting), interners are shared until a
/// delta needs a new string, and candidate order is maintained by
/// positional insertion into the pre-sorted lists.
///
/// Returns `None` — caller falls back to a full compile — when a delta
/// cannot be spliced soundly:
///
/// * any [`Delta::Bulk`] in the chain;
/// * an added/enabled rule matching an interface or external name the
///   tables have never seen (needs a new jump table plus redistribution
///   of every wildcard rule);
/// * a new `source_prefix` beyond the [`MAX_PREFIXES`] mask width;
/// * an interner append overflowing its packed-field width;
/// * a base artifact already degraded to uncacheable (degenerate
///   snapshots always take the full-compile path).
pub(crate) fn patch(
    base: &CompiledRules,
    deltas: &[Delta],
    generation: u64,
) -> Option<CompiledRules> {
    if !base.cacheable {
        return None;
    }
    let mut out = CompiledRules {
        generation,
        users: Arc::clone(&base.users),
        categories: Arc::clone(&base.categories),
        applications: Arc::clone(&base.applications),
        schemas: Arc::clone(&base.schemas),
        classes: Arc::clone(&base.classes),
        iface_names: Arc::clone(&base.iface_names),
        ext_names: Arc::clone(&base.ext_names),
        prefixes: base.prefixes.clone(),
        db: base.db.clone(),
        iface_tables: base.iface_tables.clone(),
        iface_any: base.iface_any.clone(),
        ext_tables: base.ext_tables.clone(),
        ext_any: base.ext_any.clone(),
        cacheable: true,
        stats: base.stats,
    };
    for d in deltas {
        match d {
            Delta::Noop => {}
            Delta::Bulk => return None,
            Delta::Remove { idx, was_enabled } => {
                out.remove_cands(*idx, true);
                if *was_enabled {
                    out.stats.rules -= 1;
                }
            }
            Delta::Disable { idx } => {
                out.remove_cands(*idx, false);
                out.stats.rules -= 1;
            }
            Delta::Add { idx, rule } | Delta::Enable { idx, rule } => {
                out.insert_cands(*idx, rule)?;
                out.stats.rules += 1;
            }
            Delta::Priority {
                idx,
                priority,
                spec,
            } => out.reprioritize(*idx, *priority, *spec),
        }
    }
    out.refresh_patched_stats();
    Some(out)
}

/// Append-or-get on a shared interner; `None` when the id would no
/// longer fit its packed field (patch bails to full compile, which
/// handles overflow by degrading the artifact).
fn intern_append(interner: &mut Arc<Interner>, s: &str) -> Option<u32> {
    let id = match interner.get(s) {
        0 => Arc::make_mut(interner).intern(s),
        id => id,
    };
    (id <= FIELD_MAX).then_some(id)
}

impl CompiledRules {
    fn tables_mut(&mut self) -> impl Iterator<Item = &mut CompiledTable> {
        self.db
            .iter_mut()
            .chain(self.iface_tables.iter_mut())
            .chain(std::iter::once(&mut self.iface_any))
            .chain(self.ext_tables.iter_mut())
            .chain(std::iter::once(&mut self.ext_any))
    }

    /// Drop every candidate for `idx`; with `shift`, renumber the
    /// indices above it (rule removal compacts the snapshot vector).
    /// Renumbering a contiguous upper range preserves both sort orders.
    fn remove_cands(&mut self, idx: u32, shift: bool) {
        let mut removed = 0usize;
        for t in self.tables_mut() {
            for list in [&mut t.cust, &mut t.other] {
                let before = list.len();
                list.retain(|c| c.idx != idx);
                removed += before - list.len();
                if shift {
                    for c in list.iter_mut() {
                        if c.idx > idx {
                            c.idx -= 1;
                        }
                    }
                }
            }
        }
        self.stats.candidates -= removed;
    }

    /// Lower one rule and splice it into every table its pattern
    /// reaches, at the position the full compile's sort would have put
    /// it. `None` = not patchable (see [`patch`]).
    fn insert_cands(&mut self, idx: u32, rule: &RuleLite) -> Option<()> {
        let mut cand = CompiledCand {
            idx,
            ctx_mask: 0,
            ctx_want: 0,
            schema_req: 0,
            class_req: 0,
            prefix_req: 0,
            slow: rule.slow,
            spec: rule.spec,
            prio: rule.priority,
        };
        for (field, interner, shift) in [
            (&rule.context.user, &mut self.users, USER_SHIFT),
            (&rule.context.category, &mut self.categories, CAT_SHIFT),
            (&rule.context.application, &mut self.applications, 0),
        ] {
            if let Some(v) = field {
                let id = intern_append(interner, v)?;
                cand.ctx_mask |= (FIELD_MAX as u64) << shift;
                cand.ctx_want |= (id as u64) << shift;
            }
        }

        let mut targets: Vec<Target> = Vec::new();
        match &rule.event {
            EventPattern::Any => {
                targets.extend((0..DB_KIND_TABLES).map(Target::Db));
                targets.extend((0..self.iface_tables.len()).map(Target::Iface));
                targets.push(Target::IfaceAny);
                targets.extend((0..self.ext_tables.len()).map(Target::Ext));
                targets.push(Target::ExtAny);
            }
            EventPattern::Db {
                kind,
                schema,
                class,
            } => {
                if let Some(s) = schema {
                    cand.schema_req = intern_append(&mut self.schemas, s)?;
                }
                if let Some(c) = class {
                    cand.class_req = intern_append(&mut self.classes, c)?;
                }
                match kind {
                    Some(k) => targets.push(Target::Db(kind_slot(*k))),
                    None => targets.extend((0..DB_KIND_TABLES).map(Target::Db)),
                }
            }
            EventPattern::Interface {
                name,
                source_prefix,
            } => {
                if let Some(p) = source_prefix {
                    let bit = match self.prefixes.iter().position(|q| q == p) {
                        Some(bit) => bit,
                        None if self.prefixes.len() < MAX_PREFIXES => {
                            self.prefixes.push(p.clone());
                            self.prefixes.len() - 1
                        }
                        // Out of mask bits: the full compile degrades
                        // this candidate to the interpreted path.
                        None => return None,
                    };
                    cand.prefix_req = bit as u32 + 1;
                }
                match name {
                    Some(n) => match self.iface_names.get(n) {
                        // A name the tables never saw needs a new jump
                        // table and redistribution of every wildcard
                        // rule — that is a compile, not a patch.
                        0 => return None,
                        id => targets.push(Target::Iface(id as usize - 1)),
                    },
                    None => {
                        targets.extend((0..self.iface_tables.len()).map(Target::Iface));
                        targets.push(Target::IfaceAny);
                    }
                }
            }
            EventPattern::External { name } => match name {
                Some(n) => match self.ext_names.get(n) {
                    0 => return None,
                    id => targets.push(Target::Ext(id as usize - 1)),
                },
                None => {
                    targets.extend((0..self.ext_tables.len()).map(Target::Ext));
                    targets.push(Target::ExtAny);
                }
            },
        }

        let key = std::cmp::Reverse((cand.spec, cand.prio, cand.idx));
        for t in &targets {
            let table = match t {
                Target::Db(i) => &mut self.db[*i],
                Target::Iface(i) => &mut self.iface_tables[*i],
                Target::IfaceAny => &mut self.iface_any,
                Target::Ext(i) => &mut self.ext_tables[*i],
                Target::ExtAny => &mut self.ext_any,
            };
            if rule.cust {
                let at = table
                    .cust
                    .partition_point(|c| std::cmp::Reverse((c.spec, c.prio, c.idx)) < key);
                table.cust.insert(at, cand.clone());
            } else {
                let at = table.other.partition_point(|c| c.idx < cand.idx);
                table.other.insert(at, cand.clone());
            }
        }
        self.stats.candidates += targets.len();
        Some(())
    }

    /// Re-key the candidates of `idx` after a priority change and move
    /// them to their new pre-sorted positions.
    fn reprioritize(&mut self, idx: u32, priority: i32, spec: u32) {
        for t in self.tables_mut() {
            if let Some(pos) = t.cust.iter().position(|c| c.idx == idx) {
                let mut cand = t.cust.remove(pos);
                cand.prio = priority;
                cand.spec = spec;
                let key = std::cmp::Reverse((cand.spec, cand.prio, cand.idx));
                let at = t
                    .cust
                    .partition_point(|c| std::cmp::Reverse((c.spec, c.prio, c.idx)) < key);
                t.cust.insert(at, cand);
            }
            for c in t.other.iter_mut() {
                if c.idx == idx {
                    c.prio = priority;
                    c.spec = spec;
                }
            }
        }
    }

    /// Refresh the derived stats a patch may have moved (candidate and
    /// rule counts are maintained incrementally by the splice ops).
    fn refresh_patched_stats(&mut self) {
        self.stats.generation = self.generation;
        self.stats.users = self.users.len();
        self.stats.categories = self.categories.len();
        self.stats.applications = self.applications.len();
        self.stats.event_terms = self.schemas.len()
            + self.classes.len()
            + self.iface_names.len()
            + self.ext_names.len()
            + self.prefixes.len();
        self.stats.patched = true;
        self.stats.compile_ns = 0;
    }
}

/// Where a candidate is routed during distribution.
enum Target {
    Db(usize),
    Iface(usize),
    IfaceAny,
    Ext(usize),
    ExtAny,
}

/// Lower a rule vector into flat dispatch tables. Runs once per content
/// generation, never on the dispatch path; cost is O(rules × tables a
/// rule occupies) plus one sort per table.
pub(crate) fn compile<P>(rules: &[Rule<P>], generation: u64) -> CompiledRules {
    let mut users = Interner::default();
    let mut categories = Interner::default();
    let mut applications = Interner::default();
    let mut schemas = Interner::default();
    let mut classes = Interner::default();
    let mut iface_names = Interner::default();
    let mut ext_names = Interner::default();
    let mut prefixes: Vec<String> = Vec::new();
    let mut prefix_overflow = false;

    // Pass 1: the named tables that must exist (one per distinct
    // gesture/external name any enabled rule matches by name).
    for r in rules.iter().filter(|r| r.enabled) {
        match &r.event {
            EventPattern::Interface { name: Some(n), .. } => {
                iface_names.intern(n);
            }
            EventPattern::External { name: Some(n) } => {
                ext_names.intern(n);
            }
            _ => {}
        }
    }
    let mut db: [CompiledTable; DB_KIND_TABLES] = Default::default();
    let mut iface_tables = vec![CompiledTable::default(); iface_names.len()];
    let mut iface_any = CompiledTable::default();
    let mut ext_tables = vec![CompiledTable::default(); ext_names.len()];
    let mut ext_any = CompiledTable::default();

    // Pass 2: distribute every enabled rule into the tables its pattern
    // can reach, lowering its conditions to integer requirements.
    let mut targets: Vec<Target> = Vec::new();
    for (idx, r) in rules.iter().enumerate() {
        if !r.enabled {
            continue;
        }
        let mut cand = CompiledCand {
            idx: idx as u32,
            ctx_mask: 0,
            ctx_want: 0,
            schema_req: 0,
            class_req: 0,
            prefix_req: 0,
            slow: r.needs_interpreted_match(),
            spec: r.specificity(),
            prio: r.priority,
        };
        for (field, interner, shift) in [
            (&r.context.user, &mut users, USER_SHIFT),
            (&r.context.category, &mut categories, CAT_SHIFT),
            (&r.context.application, &mut applications, 0),
        ] {
            if let Some(v) = field {
                cand.ctx_mask |= (FIELD_MAX as u64) << shift;
                cand.ctx_want |= (interner.intern(v) as u64) << shift;
            }
        }

        targets.clear();
        match &r.event {
            EventPattern::Any => {
                targets.extend((0..DB_KIND_TABLES).map(Target::Db));
                targets.extend((0..iface_tables.len()).map(Target::Iface));
                targets.push(Target::IfaceAny);
                targets.extend((0..ext_tables.len()).map(Target::Ext));
                targets.push(Target::ExtAny);
            }
            EventPattern::Db {
                kind,
                schema,
                class,
            } => {
                if let Some(s) = schema {
                    cand.schema_req = schemas.intern(s);
                }
                if let Some(c) = class {
                    cand.class_req = classes.intern(c);
                }
                match kind {
                    Some(k) => targets.push(Target::Db(kind_slot(*k))),
                    None => targets.extend((0..DB_KIND_TABLES).map(Target::Db)),
                }
            }
            EventPattern::Interface {
                name,
                source_prefix,
            } => {
                if let Some(p) = source_prefix {
                    let bit = prefixes.iter().position(|q| q == p).unwrap_or_else(|| {
                        prefixes.push(p.clone());
                        prefixes.len() - 1
                    });
                    if bit < MAX_PREFIXES {
                        cand.prefix_req = bit as u32 + 1;
                    } else {
                        // No mask bit left for this prefix: evaluate the
                        // pattern on the interpreted path instead.
                        prefix_overflow = true;
                        cand.slow = true;
                    }
                }
                match name {
                    Some(n) => targets.push(Target::Iface(iface_names.get(n) as usize - 1)),
                    None => {
                        targets.extend((0..iface_tables.len()).map(Target::Iface));
                        targets.push(Target::IfaceAny);
                    }
                }
            }
            EventPattern::External { name } => match name {
                Some(n) => targets.push(Target::Ext(ext_names.get(n) as usize - 1)),
                None => {
                    targets.extend((0..ext_tables.len()).map(Target::Ext));
                    targets.push(Target::ExtAny);
                }
            },
        }

        let cust = r.group == RuleGroup::Customization;
        for t in &targets {
            let table = match t {
                Target::Db(i) => &mut db[*i],
                Target::Iface(i) => &mut iface_tables[*i],
                Target::IfaceAny => &mut iface_any,
                Target::Ext(i) => &mut ext_tables[*i],
                Target::ExtAny => &mut ext_any,
            };
            if cust {
                table.cust.push(cand.clone());
            } else {
                table.other.push(cand.clone());
            }
        }
    }

    // An interning width overflow would corrupt the packed compares;
    // degrade the whole epoch to interpreted matching (still pruned by
    // the tables) rather than match incorrectly. Unreachable for any
    // realistic rule set (> 2^20 distinct pattern strings per field).
    let ctx_overflow = users.overflows() || categories.overflows() || applications.overflows();
    let cacheable = !ctx_overflow
        && !prefix_overflow
        && !schemas.overflows()
        && !classes.overflows()
        && !iface_names.overflows()
        && !ext_names.overflows();

    // Pre-resolve selection order: descending (specificity, priority,
    // registration index), so the first matching customization candidate
    // is the `MostSpecific` winner.
    let mut candidates = 0usize;
    let all_tables = db
        .iter_mut()
        .chain(iface_tables.iter_mut())
        .chain(std::iter::once(&mut iface_any))
        .chain(ext_tables.iter_mut())
        .chain(std::iter::once(&mut ext_any));
    let mut tables = 0usize;
    for table in all_tables {
        table
            .cust
            .sort_unstable_by_key(|c| std::cmp::Reverse((c.spec, c.prio, c.idx)));
        if ctx_overflow {
            for c in table.cust.iter_mut().chain(table.other.iter_mut()) {
                c.slow = true;
            }
        }
        candidates += table.cust.len() + table.other.len();
        tables += 1;
    }

    let stats = CompileStats {
        generation,
        rules: rules.iter().filter(|r| r.enabled).count(),
        tables,
        candidates,
        users: users.len(),
        categories: categories.len(),
        applications: applications.len(),
        event_terms: schemas.len()
            + classes.len()
            + iface_names.len()
            + ext_names.len()
            + prefixes.len(),
        packed_cache: cacheable,
        patched: false,
        compile_ns: 0,
    };
    CompiledRules {
        generation,
        users: Arc::new(users),
        categories: Arc::new(categories),
        applications: Arc::new(applications),
        schemas: Arc::new(schemas),
        classes: Arc::new(classes),
        iface_names: Arc::new(iface_names),
        ext_names: Arc::new(ext_names),
        prefixes,
        db,
        iface_tables,
        iface_any,
        ext_tables,
        ext_any,
        cacheable,
        stats,
    }
}
