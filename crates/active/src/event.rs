//! Events and event patterns.
//!
//! The paper splits a user interaction `Iᵢ` into "an interface event
//! `IEᵢ` (e.g., mouse click, key pressing) and a database event `DBEᵢ`";
//! both — plus external events ("application, hardware interrupts") —
//! flow through the same extended active mechanism.

use serde::{Deserialize, Serialize};

use geodb::query::{DbEvent, DbEventKind};

/// Any event the active mechanism can react to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A database event (query or update primitive).
    Db(DbEvent),
    /// An interface event: `name` is the gesture ("click", "key"),
    /// `source` the widget path it happened on.
    Interface { name: String, source: String },
    /// An external event (application signal, timer, hardware interrupt).
    External { name: String },
}

impl Event {
    pub fn interface(name: impl Into<String>, source: impl Into<String>) -> Event {
        Event::Interface {
            name: name.into(),
            source: source.into(),
        }
    }

    pub fn external(name: impl Into<String>) -> Event {
        Event::External { name: name.into() }
    }

    /// Short description for traces.
    pub fn describe(&self) -> String {
        match self {
            Event::Db(e) => match e.class() {
                Some(c) => format!("{}({}, {c})", e.kind(), e.schema()),
                None => format!("{}({})", e.kind(), e.schema()),
            },
            Event::Interface { name, source } => format!("IE:{name}@{source}"),
            Event::External { name } => format!("EXT:{name}"),
        }
    }
}

impl From<DbEvent> for Event {
    fn from(e: DbEvent) -> Event {
        Event::Db(e)
    }
}

/// The Event part of an E-C-A rule: a pattern over [`Event`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventPattern {
    /// Matches every event.
    Any,
    /// A database event, optionally narrowed by kind / schema / class.
    Db {
        kind: Option<DbEventKind>,
        schema: Option<String>,
        class: Option<String>,
    },
    /// An interface event, optionally narrowed by gesture name and/or a
    /// source prefix (so `source_prefix = "class_window"` matches events
    /// from any widget inside that window).
    Interface {
        name: Option<String>,
        source_prefix: Option<String>,
    },
    /// An external event by exact name (or any, when `None`).
    External { name: Option<String> },
}

impl EventPattern {
    /// Pattern for one database event kind, any schema/class.
    pub fn db(kind: DbEventKind) -> EventPattern {
        EventPattern::Db {
            kind: Some(kind),
            schema: None,
            class: None,
        }
    }

    /// Pattern for a database event kind on a specific schema.
    pub fn db_on_schema(kind: DbEventKind, schema: impl Into<String>) -> EventPattern {
        EventPattern::Db {
            kind: Some(kind),
            schema: Some(schema.into()),
            class: None,
        }
    }

    /// Pattern for a database event kind on a specific class.
    pub fn db_on_class(
        kind: DbEventKind,
        schema: impl Into<String>,
        class: impl Into<String>,
    ) -> EventPattern {
        EventPattern::Db {
            kind: Some(kind),
            schema: Some(schema.into()),
            class: Some(class.into()),
        }
    }

    /// Does an event satisfy this pattern?
    pub fn matches(&self, event: &Event) -> bool {
        match (self, event) {
            (EventPattern::Any, _) => true,
            (
                EventPattern::Db {
                    kind,
                    schema,
                    class,
                },
                Event::Db(e),
            ) => {
                kind.is_none_or(|k| k == e.kind())
                    && schema.as_deref().is_none_or(|s| s == e.schema())
                    && class.as_deref().is_none_or(|c| Some(c) == e.class())
            }
            (
                EventPattern::Interface {
                    name,
                    source_prefix,
                },
                Event::Interface {
                    name: en,
                    source: es,
                },
            ) => {
                name.as_deref().is_none_or(|n| n == en)
                    && source_prefix.as_deref().is_none_or(|p| es.starts_with(p))
            }
            (EventPattern::External { name }, Event::External { name: en }) => {
                name.as_deref().is_none_or(|n| n == en)
            }
            _ => false,
        }
    }

    /// How narrowly the pattern selects events — the event-side component
    /// of rule specificity (class-scoped beats schema-scoped beats
    /// kind-only beats any).
    pub fn specificity(&self) -> u32 {
        match self {
            EventPattern::Any => 0,
            EventPattern::Db {
                kind,
                schema,
                class,
            } => kind.is_some() as u32 + schema.is_some() as u32 + 2 * class.is_some() as u32,
            EventPattern::Interface {
                name,
                source_prefix,
            } => name.is_some() as u32 + source_prefix.is_some() as u32,
            EventPattern::External { name } => name.is_some() as u32,
        }
    }
}

impl std::fmt::Display for EventPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventPattern::Any => write!(f, "*"),
            EventPattern::Db {
                kind,
                schema,
                class,
            } => {
                match kind {
                    Some(k) => write!(f, "{k}")?,
                    None => write!(f, "DB:*")?,
                }
                if let Some(s) = schema {
                    write!(f, " on {s}")?;
                }
                if let Some(c) = class {
                    write!(f, ".{c}")?;
                }
                Ok(())
            }
            EventPattern::Interface {
                name,
                source_prefix,
            } => write!(
                f,
                "IE:{}@{}*",
                name.as_deref().unwrap_or("*"),
                source_prefix.as_deref().unwrap_or("")
            ),
            EventPattern::External { name } => {
                write!(f, "EXT:{}", name.as_deref().unwrap_or("*"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get_class_event() -> Event {
        Event::Db(DbEvent::GetClass {
            schema: "phone_net".into(),
            class: "Pole".into(),
        })
    }

    #[test]
    fn any_matches_all() {
        assert!(EventPattern::Any.matches(&get_class_event()));
        assert!(EventPattern::Any.matches(&Event::external("tick")));
    }

    #[test]
    fn db_patterns_narrow_progressively() {
        let e = get_class_event();
        assert!(EventPattern::db(DbEventKind::GetClass).matches(&e));
        assert!(!EventPattern::db(DbEventKind::GetSchema).matches(&e));
        assert!(EventPattern::db_on_schema(DbEventKind::GetClass, "phone_net").matches(&e));
        assert!(!EventPattern::db_on_schema(DbEventKind::GetClass, "other").matches(&e));
        assert!(EventPattern::db_on_class(DbEventKind::GetClass, "phone_net", "Pole").matches(&e));
        assert!(!EventPattern::db_on_class(DbEventKind::GetClass, "phone_net", "Duct").matches(&e));
    }

    #[test]
    fn db_pattern_never_matches_other_kinds() {
        assert!(!EventPattern::db(DbEventKind::GetClass).matches(&Event::external("x")));
        assert!(!EventPattern::External { name: None }.matches(&get_class_event()));
    }

    #[test]
    fn interface_pattern_prefix_matching() {
        let e = Event::interface("click", "class_window/panel0/button2");
        let any_click = EventPattern::Interface {
            name: Some("click".into()),
            source_prefix: None,
        };
        let in_window = EventPattern::Interface {
            name: None,
            source_prefix: Some("class_window/".into()),
        };
        let elsewhere = EventPattern::Interface {
            name: None,
            source_prefix: Some("schema_window/".into()),
        };
        assert!(any_click.matches(&e));
        assert!(in_window.matches(&e));
        assert!(!elsewhere.matches(&e));
    }

    #[test]
    fn specificity_ranks_patterns() {
        let any = EventPattern::Any;
        let kind = EventPattern::db(DbEventKind::GetClass);
        let on_schema = EventPattern::db_on_schema(DbEventKind::GetClass, "s");
        let on_class = EventPattern::db_on_class(DbEventKind::GetClass, "s", "C");
        assert!(any.specificity() < kind.specificity());
        assert!(kind.specificity() < on_schema.specificity());
        assert!(on_schema.specificity() < on_class.specificity());
    }

    #[test]
    fn describe_and_display() {
        assert_eq!(get_class_event().describe(), "Get_Class(phone_net, Pole)");
        assert_eq!(
            EventPattern::db_on_class(DbEventKind::GetClass, "phone_net", "Pole").to_string(),
            "Get_Class on phone_net.Pole"
        );
    }
}
