//! # active — the active database mechanism
//!
//! A general Event-Condition-Action rule engine, extended (as in the
//! paper) with *interface customization rules*: rules whose condition is
//! an application **context** `<user, category, application>` rather than
//! a database-state predicate, and whose action yields a customization
//! payload for the interface builder.
//!
//! Key design points taken from Section 3.3 of the paper:
//!
//! * events are database events (`Get_Schema` / `Get_Class` / `Get_Value`,
//!   updates), interface events, or external events ([`event`]);
//! * conditions check the session context; patterns form a specificity
//!   lattice — generic < application < category < user ([`context`]);
//! * among matching customization rules **only the most specific fires**
//!   ([`engine::SelectionPolicy::MostSpecific`]; the fire-all ablation is
//!   kept for experiment C1);
//! * other rule groups (integrity maintenance, as in the authors'
//!   topological-constraint prototype) all fire, and may cascade by
//!   raising events — bounded, with cycle diagnostics ([`conflict`]);
//! * every dispatch leaves a [`trace`] for the *explanation* mode.
//!
//! The engine is generic over the customization payload, so this crate
//! depends only on `geodb` (for the database event vocabulary) and knows
//! nothing about widgets.
//!
//! ```
//! use active::{ContextPattern, Engine, Event, EventPattern, Rule, SessionContext};
//! use geodb::query::{DbEvent, DbEventKind};
//!
//! let mut engine: Engine<&str> = Engine::new();
//! engine
//!     .add_rule(Rule::customization(
//!         "R2",
//!         EventPattern::db(DbEventKind::GetClass),
//!         ContextPattern::for_user("juliano").application("pole_manager"),
//!         "Build_Window(Class_set, Pole, poleWidget, pointFormat)",
//!     ))
//!     .unwrap();
//!
//! let ctx = SessionContext::new("juliano", "planner", "pole_manager");
//! let event = Event::Db(DbEvent::GetClass {
//!     schema: "phone_net".into(),
//!     class: "Pole".into(),
//! });
//! let outcome = engine.dispatch(event, &ctx).unwrap();
//! assert_eq!(
//!     outcome.customization(),
//!     Some(&"Build_Window(Class_set, Pole, poleWidget, pointFormat)")
//! );
//! ```

pub(crate) mod compiled;
pub mod conflict;
pub mod context;
pub mod engine;
pub mod event;
pub mod rule;
pub mod trace;

pub use compiled::CompileStats;
pub use conflict::{analyze, Finding};
pub use context::{ContextPattern, SessionContext};
pub use engine::{
    ActiveError, CacheStats, DispatchStrategy, Engine, EngineConfig, FaultPolicy, FaultRecord,
    Outcome, RuleBase, RuleHealth, SelectionPolicy, CASCADE_PSEUDO_RULE,
};
pub use event::{Event, EventPattern};
pub use rule::{Action, Callback, Coupling, Guard, Rule, RuleGroup};
pub use trace::{Trace, TraceEntry};
