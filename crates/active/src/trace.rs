//! Execution traces.
//!
//! Every dispatch records which rules were considered, which fired, and
//! why — the raw material for the *explanation* interaction mode the
//! paper lists ("users want to know why and how the system presented a
//! specific answer to a query") and for the F1 architecture walkthrough.

use serde::{Deserialize, Serialize};

/// One processed event within a dispatch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Cascade depth (0 = the event handed to `dispatch`).
    pub depth: usize,
    /// `Event::describe()` output.
    pub event: String,
    /// Names of rules whose event+context+guard matched.
    pub matched: Vec<String>,
    /// Names of rules that actually executed.
    pub fired: Vec<String>,
    /// Names of matching customization rules skipped by the
    /// most-specific-wins policy.
    pub shadowed: Vec<String>,
}

impl TraceEntry {
    /// Render as an indented line for explanation output.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}{} -> fired [{}]",
            "  ".repeat(self.depth),
            self.event,
            self.fired.join(", ")
        );
        if !self.shadowed.is_empty() {
            s.push_str(&format!(" (shadowed: {})", self.shadowed.join(", ")));
        }
        s
    }
}

/// A dispatch-long trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Multi-line rendering of the full cascade.
    pub fn render(&self) -> String {
        self.entries
            .iter()
            .map(TraceEntry::render)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Did a rule with this name fire anywhere in the cascade?
    pub fn fired(&self, rule: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.fired.iter().any(|f| f == rule))
    }

    /// Machine-readable JSON rendering of the full cascade, for export
    /// through the observability pipeline.
    pub fn render_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_cascade_depth_and_shadowing() {
        let t = Trace {
            entries: vec![
                TraceEntry {
                    depth: 0,
                    event: "Get_Schema(phone_net)".into(),
                    matched: vec!["R1".into(), "R0".into()],
                    fired: vec!["R1".into()],
                    shadowed: vec!["R0".into()],
                },
                TraceEntry {
                    depth: 1,
                    event: "Get_Class(phone_net, Pole)".into(),
                    matched: vec!["R2".into()],
                    fired: vec!["R2".into()],
                    shadowed: vec![],
                },
            ],
        };
        let out = t.render();
        assert!(out.contains("Get_Schema(phone_net) -> fired [R1] (shadowed: R0)"));
        assert!(out.contains("  Get_Class(phone_net, Pole) -> fired [R2]"));
        assert!(t.fired("R1"));
        assert!(t.fired("R2"));
        assert!(!t.fired("R0"));
    }

    #[test]
    fn cascaded_trace_serializes_with_depths_and_shadowing() {
        use crate::context::{ContextPattern, SessionContext};
        use crate::engine::Engine;
        use crate::event::{Event, EventPattern};
        use crate::rule::{Action, Rule, RuleGroup};
        use geodb::query::{DbEvent, DbEventKind};

        // Get_Schema fires one of two competing rules (one shadowed) and
        // raises Get_Class, which fires a depth-1 rule — the Fig. 6 shape.
        let mut eng: Engine<&str> = Engine::new();
        eng.add_rule(Rule::customization(
            "generic",
            EventPattern::db(DbEventKind::GetSchema),
            ContextPattern::any(),
            "generic",
        ))
        .unwrap();
        eng.add_rule(Rule::customization(
            "specific",
            EventPattern::db(DbEventKind::GetSchema),
            ContextPattern::for_user("juliano"),
            "specific",
        ))
        .unwrap();
        eng.add_rule(Rule {
            name: "raiser".into(),
            event: EventPattern::db(DbEventKind::GetSchema),
            context: ContextPattern::any(),
            guard: None,
            action: std::sync::Arc::new(Action::Raise(vec![Event::Db(DbEvent::GetClass {
                schema: "phone_net".into(),
                class: "Pole".into(),
            })])),
            group: RuleGroup::Other,
            coupling: crate::rule::Coupling::Immediate,
            priority: 0,
            enabled: true,
        })
        .unwrap();
        eng.add_rule(Rule::customization(
            "class_rule",
            EventPattern::db(DbEventKind::GetClass),
            ContextPattern::any(),
            "class",
        ))
        .unwrap();

        let ctx = SessionContext::new("juliano", "planner", "pole_manager");
        let out = eng
            .dispatch(
                Event::Db(DbEvent::GetSchema {
                    schema: "phone_net".into(),
                }),
                &ctx,
            )
            .unwrap();

        let json = out.trace.render_json();
        let roundtrip: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(roundtrip, out.trace);
        // Depths survive serialization in cascade order.
        let depths: Vec<usize> = roundtrip.entries.iter().map(|e| e.depth).collect();
        assert_eq!(depths, vec![0, 1]);
        // Shadowing is intact: the generic rule lost to the specific one.
        assert_eq!(roundtrip.entries[0].shadowed, vec!["generic".to_string()]);
        assert!(roundtrip.entries[0].fired.contains(&"specific".to_string()));
        assert_eq!(roundtrip.entries[1].fired, vec!["class_rule".to_string()]);
    }
}
