//! Execution traces.
//!
//! Every dispatch records which rules were considered, which fired, and
//! why — the raw material for the *explanation* interaction mode the
//! paper lists ("users want to know why and how the system presented a
//! specific answer to a query") and for the F1 architecture walkthrough.

/// One processed event within a dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cascade depth (0 = the event handed to `dispatch`).
    pub depth: usize,
    /// `Event::describe()` output.
    pub event: String,
    /// Names of rules whose event+context+guard matched.
    pub matched: Vec<String>,
    /// Names of rules that actually executed.
    pub fired: Vec<String>,
    /// Names of matching customization rules skipped by the
    /// most-specific-wins policy.
    pub shadowed: Vec<String>,
}

impl TraceEntry {
    /// Render as an indented line for explanation output.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}{} -> fired [{}]",
            "  ".repeat(self.depth),
            self.event,
            self.fired.join(", ")
        );
        if !self.shadowed.is_empty() {
            s.push_str(&format!(" (shadowed: {})", self.shadowed.join(", ")));
        }
        s
    }
}

/// A dispatch-long trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Multi-line rendering of the full cascade.
    pub fn render(&self) -> String {
        self.entries
            .iter()
            .map(TraceEntry::render)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Did a rule with this name fire anywhere in the cascade?
    pub fn fired(&self, rule: &str) -> bool {
        self.entries.iter().any(|e| e.fired.iter().any(|f| f == rule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_cascade_depth_and_shadowing() {
        let t = Trace {
            entries: vec![
                TraceEntry {
                    depth: 0,
                    event: "Get_Schema(phone_net)".into(),
                    matched: vec!["R1".into(), "R0".into()],
                    fired: vec!["R1".into()],
                    shadowed: vec!["R0".into()],
                },
                TraceEntry {
                    depth: 1,
                    event: "Get_Class(phone_net, Pole)".into(),
                    matched: vec!["R2".into()],
                    fired: vec!["R2".into()],
                    shadowed: vec![],
                },
            ],
        };
        let out = t.render();
        assert!(out.contains("Get_Schema(phone_net) -> fired [R1] (shadowed: R0)"));
        assert!(out.contains("  Get_Class(phone_net, Pole) -> fired [R2]"));
        assert!(t.fired("R1"));
        assert!(t.fired("R2"));
        assert!(!t.fired("R0"));
    }
}
