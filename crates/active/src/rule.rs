//! E-C-A rules.
//!
//! The paper's rule form:
//!
//! ```text
//! On Event Eᵢ
//! If Condition Cⱼ
//! Then Apply Customization CTₙ to database objects O₁…Oₑ
//!      involving interface library objects IO₁…IOₖ
//! ```
//!
//! The engine is generic over the customization payload `P` — the `active`
//! crate stays a *general* active mechanism, as the paper insists: "we do
//! not require a special purpose active mechanism, but have only
//! introduced a new type of rules and events".

use std::sync::Arc;

use crate::context::{ContextPattern, SessionContext};
use crate::event::{Event, EventPattern};

/// Native guard evaluated after event/context matching (the paper's
/// database-state conditions for non-customization rules). `Send + Sync`
/// so rules can live in a shared snapshot dispatched from many sessions
/// concurrently (see `docs/scaling.md`).
pub type Guard = Arc<dyn Fn(&Event, &SessionContext) -> bool + Send + Sync>;

/// Native callback action; may raise follow-up events.
pub type Callback = Arc<dyn Fn(&Event, &SessionContext) -> Vec<Event> + Send + Sync>;

/// The Action part of a rule.
#[derive(Clone)]
pub enum Action<P> {
    /// Yield a customization payload to the interface builder.
    Customize(P),
    /// Run native code (constraint maintenance, logging, …).
    Callback(Callback),
    /// Raise follow-up events (cascading rules).
    Raise(Vec<Event>),
    /// Several actions in order.
    Compound(Vec<Action<P>>),
}

impl<P: std::fmt::Debug> std::fmt::Debug for Action<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Customize(p) => f.debug_tuple("Customize").field(p).finish(),
            Action::Callback(_) => f.write_str("Callback(<native>)"),
            Action::Raise(es) => f.debug_tuple("Raise").field(es).finish(),
            Action::Compound(a) => f.debug_tuple("Compound").field(a).finish(),
        }
    }
}

/// When a rule's action executes relative to the triggering operation —
/// the classic active-database coupling modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Coupling {
    /// Run during the triggering dispatch (the default; customization
    /// rules must be immediate — the window is being built *now*).
    #[default]
    Immediate,
    /// Queue the firing; it runs when the application calls
    /// [`crate::engine::Engine::flush_deferred`] (e.g. at transaction
    /// boundaries — batch constraint checking after bulk data entry).
    Deferred,
}

/// Rule families — "the rule set may be partitioned into (at least) two
/// subsets: rules for interface customization, and other rules".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleGroup {
    /// Interface customization rules: per event, only the single most
    /// specific rule fires.
    Customization,
    /// Integrity/constraint rules: all matching rules fire.
    Integrity,
    /// Anything else (view refresh, audit, …): all matching rules fire.
    Other,
}

/// A complete Event-Condition-Action rule.
#[derive(Clone)]
pub struct Rule<P> {
    /// Unique name (duplicates are rejected at registration).
    pub name: String,
    pub event: EventPattern,
    pub context: ContextPattern,
    /// Optional extra guard beyond the context check.
    pub guard: Option<Guard>,
    /// Shared so firing clones a pointer, not an action tree.
    pub action: Arc<Action<P>>,
    pub group: RuleGroup,
    pub coupling: Coupling,
    /// Designer-assigned tiebreaker among equally specific rules.
    pub priority: i32,
    pub enabled: bool,
}

impl<P> Rule<P> {
    /// A customization rule (the common case in this system).
    pub fn customization(
        name: impl Into<String>,
        event: EventPattern,
        context: ContextPattern,
        payload: P,
    ) -> Rule<P> {
        Rule {
            name: name.into(),
            event,
            context,
            guard: None,
            action: Arc::new(Action::Customize(payload)),
            group: RuleGroup::Customization,
            coupling: Coupling::Immediate,
            priority: 0,
            enabled: true,
        }
    }

    /// An integrity rule running a native callback.
    pub fn integrity(name: impl Into<String>, event: EventPattern, callback: Callback) -> Rule<P> {
        Rule {
            name: name.into(),
            event,
            context: ContextPattern::any(),
            guard: None,
            action: Arc::new(Action::Callback(callback)),
            group: RuleGroup::Integrity,
            coupling: Coupling::Immediate,
            priority: 0,
            enabled: true,
        }
    }

    pub fn with_guard(mut self, guard: Guard) -> Self {
        self.guard = Some(guard);
        self
    }

    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    pub fn with_group(mut self, group: RuleGroup) -> Self {
        self.group = group;
        self
    }

    pub fn with_coupling(mut self, coupling: Coupling) -> Self {
        self.coupling = coupling;
        self
    }

    /// Event + context + guard check.
    pub fn matches(&self, event: &Event, ctx: &SessionContext) -> bool {
        self.enabled
            && self.event.matches(event)
            && self.context.matches(ctx)
            && self.guard.as_ref().is_none_or(|g| g(event, ctx))
    }

    /// Whether matching this rule requires the interpreted path: native
    /// guards and extension-dimension requirements cannot be lowered to
    /// the compiled tier's integer checks (and make winner-cache entries
    /// unsound — the answer may change between identical dispatches).
    pub(crate) fn needs_interpreted_match(&self) -> bool {
        self.guard.is_some() || !self.context.extras.is_empty()
    }

    /// Combined specificity: context dominates, event pattern breaks ties.
    ///
    /// Contexts score in units of 25+ (see [`ContextPattern::specificity`])
    /// while event patterns score 0–4, so a more restrictive *context*
    /// always wins, exactly as the paper prescribes; among rules with the
    /// same context restrictiveness, the narrower event pattern wins.
    pub fn specificity(&self) -> u32 {
        self.context.specificity() * 8 + self.event.specificity()
    }
}

impl<P: std::fmt::Debug> std::fmt::Debug for Rule<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("on", &self.event.to_string())
            .field("if", &self.context.to_string())
            .field("group", &self.group)
            .field("priority", &self.priority)
            .field("enabled", &self.enabled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodb::query::{DbEvent, DbEventKind};

    fn ev() -> Event {
        Event::Db(DbEvent::GetSchema {
            schema: "phone_net".into(),
        })
    }

    fn ctx() -> SessionContext {
        SessionContext::new("juliano", "planner", "pole_manager")
    }

    #[test]
    fn matches_requires_event_and_context() {
        let r: Rule<&str> = Rule::customization(
            "r1",
            EventPattern::db(DbEventKind::GetSchema),
            ContextPattern::for_user("juliano"),
            "payload",
        );
        assert!(r.matches(&ev(), &ctx()));
        let other_user = SessionContext::new("claudia", "planner", "pole_manager");
        assert!(!r.matches(&ev(), &other_user));
        let other_event = Event::Db(DbEvent::GetClass {
            schema: "phone_net".into(),
            class: "Pole".into(),
        });
        assert!(!r.matches(&other_event, &ctx()));
    }

    #[test]
    fn disabled_rules_never_match() {
        let mut r: Rule<&str> =
            Rule::customization("r", EventPattern::Any, ContextPattern::any(), "p");
        assert!(r.matches(&ev(), &ctx()));
        r.enabled = false;
        assert!(!r.matches(&ev(), &ctx()));
    }

    #[test]
    fn guard_is_consulted() {
        let r: Rule<&str> = Rule::customization("r", EventPattern::Any, ContextPattern::any(), "p")
            .with_guard(Arc::new(|e, _| matches!(e, Event::Db(_))));
        assert!(r.matches(&ev(), &ctx()));
        assert!(!r.matches(&Event::external("tick"), &ctx()));
    }

    #[test]
    fn context_dominates_event_in_specificity() {
        let narrow_event: Rule<&str> = Rule::customization(
            "a",
            EventPattern::db_on_class(DbEventKind::GetClass, "s", "C"),
            ContextPattern::any(),
            "p",
        );
        let narrow_context: Rule<&str> = Rule::customization(
            "b",
            EventPattern::Any,
            ContextPattern::for_application("app"),
            "p",
        );
        assert!(narrow_context.specificity() > narrow_event.specificity());
    }

    #[test]
    fn debug_impl_is_informative() {
        let r: Rule<&str> = Rule::customization(
            "cust_pole",
            EventPattern::db(DbEventKind::GetClass),
            ContextPattern::for_user("juliano"),
            "p",
        );
        let s = format!("{r:?}");
        assert!(s.contains("cust_pole"));
        assert!(s.contains("juliano"));
    }
}
