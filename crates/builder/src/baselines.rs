//! The paper's Section 2.2 comparison baselines.
//!
//! Two artifacts back the economic argument for active customization:
//!
//! * [`hardwired_class_window`] — a Class-set window built directly
//!   against the kernel widget classes, the way a per-application
//!   toolkit program would: no catalog, no rules, no dispatcher. The
//!   benchmarks compare this against the full active path.
//! * [`CostModel`] — deployment cost (lines touched, redeploys) to
//!   support N user contexts under the three pre-existing approaches
//!   vs. the active one, calibrated from the paper's own datapoint:
//!   the reference implementation [14] spent over 10 000 lines of code
//!   on more than 100 distinct windows (~100 lines per window).

use geodb::Instance;
use uilib::{Library, MapScene, MapShape, SceneMap, WidgetTree};

use crate::{BuildError, BuiltWindow, WindowKind};

/// Build a Class-set window the pre-GIS-toolkit way: hardwired against
/// the kernel classes only. Functionally equivalent to the generic
/// builder's default window, but bypasses catalog metadata and
/// customization entirely — the run-time baseline of experiment C2.
pub fn hardwired_class_window(
    library: &Library,
    class: &str,
    instances: &[Instance],
) -> Result<BuiltWindow, BuildError> {
    let title = format!("Class: {class}");
    let mut tree = WidgetTree::new(library, "Window", "class_window")?;
    tree.get_mut(tree.root())?.set_prop("title", title.clone());
    let body = tree.add(library, tree.root(), "Panel", "body")?;
    tree.get_mut(body)?.set_prop("layout", "h");

    let ctl = tree.add(library, body, "Panel", "control")?;
    tree.get_mut(ctl)?.set_prop("title", "control");
    let ids = tree.add(library, ctl, "List", "ids")?;
    {
        let w = tree.get_mut(ids)?;
        w.set_prop(
            "items",
            instances
                .iter()
                .map(|i| i.oid.to_string())
                .collect::<Vec<_>>(),
        );
        w.on("select", "pick_instance");
    }
    for (name, label, cb) in [
        ("zoom", "Zoom", "zoom"),
        ("select", "Select", "select_mode"),
        ("close", "Close", "close_window"),
    ] {
        let b = tree.add(library, ctl, "Button", name)?;
        let w = tree.get_mut(b)?;
        w.set_prop("label", label);
        w.on("click", cb);
    }

    let pres = tree.add(library, body, "Panel", "presentation")?;
    tree.get_mut(pres)?.set_prop("title", "display");
    let count = tree.add(library, pres, "Text", "count")?;
    {
        let w = tree.get_mut(count)?;
        w.set_prop("label", "instances");
        w.set_prop("value", instances.len().to_string());
    }
    let map = tree.add(library, pres, "DrawingArea", "map")?;
    tree.get_mut(map)?.on("click", "pick_instance");
    let mut scene = MapScene::new();
    for inst in instances {
        if let Some((_, geom)) = inst.primary_geometry() {
            scene.add(
                MapShape::new(geom.clone())
                    .with_oid(inst.oid)
                    .with_symbol('.'),
            );
        }
    }
    let mut scenes = SceneMap::new();
    scenes.insert(map, scene);

    Ok(BuiltWindow {
        kind: WindowKind::ClassSet,
        title,
        visible: true,
        tree,
        scenes,
        auto_open: Vec::new(),
    })
}

/// Deployment cost of supporting a set of user contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cost {
    /// Source lines written or edited.
    pub lines_touched: u64,
    /// Times the system had to be rebuilt and redeployed.
    pub redeploys: u64,
}

/// Cost model for the paper's Section 2.2 comparison, calibrated from
/// [14]: ~10 000 LoC for >100 windows, i.e. ~100 lines per window.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Lines to hand-code one window in a toolkit (from [14]).
    pub lines_per_window: u64,
    /// Lines of glue per additional paradigm kept in sync.
    pub glue_lines_per_paradigm: u64,
    /// Lines of one customization directive in the active approach.
    pub directive_lines: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            lines_per_window: 100,
            glue_lines_per_paradigm: 40,
            directive_lines: 6,
        }
    }
}

impl CostModel {
    /// Toolkit approach: every context gets hand-coded windows, every
    /// context change is a code change plus redeploy.
    pub fn toolkit(&self, contexts: u64, windows: u64) -> Cost {
        Cost {
            lines_touched: contexts * windows * self.lines_per_window,
            redeploys: contexts,
        }
    }

    /// Multiple-paradigms approach: toolkit cost plus glue to keep
    /// `paradigms` parallel implementations consistent.
    pub fn multiple_paradigms(&self, contexts: u64, windows: u64, paradigms: u64) -> Cost {
        let base = self.toolkit(contexts, windows);
        Cost {
            lines_touched: base.lines_touched + contexts * paradigms * self.glue_lines_per_paradigm,
            redeploys: contexts * paradigms.max(1),
        }
    }

    /// Active approach: one generic builder (already deployed); each
    /// context is a declarative directive installed at run time.
    pub fn active(&self, contexts: u64, _windows: u64) -> Cost {
        Cost {
            lines_touched: contexts * self.directive_lines,
            redeploys: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_costs_cross_over_before_the_second_context() {
        let m = CostModel::default();
        for contexts in [1u64, 2, 10, 100] {
            let t = m.toolkit(contexts, 3);
            let p = m.multiple_paradigms(contexts, 3, 3);
            let a = m.active(contexts, 3);
            assert!(a.lines_touched < t.lines_touched);
            assert!(t.lines_touched <= p.lines_touched);
            assert_eq!(a.redeploys, 0);
            assert!(t.redeploys >= contexts);
        }
        // The paper's calibration point: 100 windows ≈ 10 000 LoC.
        assert_eq!(m.toolkit(1, 100).lines_touched, 10_000);
    }
}
