//! The generic interface builder of the paper's Fig. 1.
//!
//! Given catalog metadata (and, optionally, a customization payload
//! selected by the active mechanism), the builder materializes the three
//! window types of the paper's interaction model:
//!
//! * **Schema window** — the classes of a schema, ready to browse;
//! * **Class-set window** — a control area (instance list + command
//!   buttons or a custom control widget) beside a presentation area
//!   (instance count + map) for one class extension;
//! * **Instance window** — one row per effective attribute of a single
//!   instance, with per-attribute display clauses applied.
//!
//! Windows are plain data ([`BuiltWindow`]): a widget tree plus map
//! scenes, rendered on demand to ASCII or SVG by `uilib`. The builder
//! never talks to the rule engine — it only *applies* the payload the
//! engine selected, which is what keeps customization transparent to
//! the rest of the interface (paper Section 3.2).

pub mod baselines;

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use custlang::{AttrClause, AttrDisplay, Customization, SchemaMode, Source};
use geodb::{Catalog, DbSnapshot, GeoDbError, GeometryKind, Instance, SchemaDef, Value};
use uilib::render::{ascii, svg};
use uilib::{Library, LibraryError, MapScene, MapShape, Prop, SceneMap, TreeError, WidgetTree};

/// Errors from window construction.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    Library(LibraryError),
    Tree(TreeError),
    Db(GeoDbError),
    /// A customization referenced a widget class the library lacks.
    UnknownWidget(String),
    /// An injected fault (the `builder.build` failpoint) aborted a
    /// *customized* build. Default builds never take this path, so the
    /// generic interface stays available for degradation.
    Fault(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Library(e) => write!(f, "library: {e}"),
            BuildError::Tree(e) => write!(f, "tree: {e}"),
            BuildError::Db(e) => write!(f, "database: {e}"),
            BuildError::UnknownWidget(w) => write!(f, "unknown widget class `{w}`"),
            BuildError::Fault(cause) => write!(f, "injected build fault: {cause}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Library(e) => Some(e),
            BuildError::Tree(e) => Some(e),
            BuildError::Db(e) => Some(e),
            BuildError::UnknownWidget(_) | BuildError::Fault(_) => None,
        }
    }
}

impl From<LibraryError> for BuildError {
    fn from(e: LibraryError) -> Self {
        BuildError::Library(e)
    }
}

impl From<TreeError> for BuildError {
    fn from(e: TreeError) -> Self {
        BuildError::Tree(e)
    }
}

impl From<GeoDbError> for BuildError {
    fn from(e: GeoDbError) -> Self {
        BuildError::Db(e)
    }
}

/// The three window types of the paper's interaction model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    Schema,
    ClassSet,
    Instance,
}

impl std::fmt::Display for WindowKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WindowKind::Schema => "Schema",
            WindowKind::ClassSet => "Class_set",
            WindowKind::Instance => "Instance",
        })
    }
}

/// The built-in presentation formats of the customization language
/// (`custlang::BUILTIN_FORMATS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Format {
    #[default]
    Default,
    Point,
    Line,
    Polygon,
    Table,
    Symbol,
}

impl Format {
    pub fn from_name(name: &str) -> Option<Format> {
        Some(match name {
            "default" => Format::Default,
            "pointFormat" => Format::Point,
            "lineFormat" => Format::Line,
            "polygonFormat" => Format::Polygon,
            "tableFormat" => Format::Table,
            "symbolFormat" => Format::Symbol,
            _ => return None,
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            Format::Default => "default",
            Format::Point => "pointFormat",
            Format::Line => "lineFormat",
            Format::Polygon => "polygonFormat",
            Format::Table => "tableFormat",
            Format::Symbol => "symbolFormat",
        }
    }

    /// Map symbol for a shape of `kind` in class `class` under this
    /// format ("points draw as dots, lines as strokes…").
    fn symbol(&self, class: &str, kind: GeometryKind) -> char {
        match (self, kind) {
            (Format::Symbol, _) => class
                .chars()
                .next()
                .map(|c| c.to_ascii_uppercase())
                .unwrap_or('*'),
            (Format::Point, GeometryKind::Point) => 'o',
            (Format::Polygon, GeometryKind::Polygon) => '@',
            (_, GeometryKind::Point) => '.',
            (_, GeometryKind::Polyline) => '-',
            (_, GeometryKind::Polygon) => '-',
        }
    }
}

/// A materialized window: widget tree + map scenes + dispatch metadata.
#[derive(Debug, Clone)]
pub struct BuiltWindow {
    pub kind: WindowKind,
    pub title: String,
    /// Hidden windows (`display as Null`) render to an empty string.
    pub visible: bool,
    pub tree: WidgetTree,
    pub scenes: SceneMap,
    /// Class windows the dispatcher should open immediately (a hidden
    /// schema window under `display as Null` forwards its classes).
    pub auto_open: Vec<String>,
}

impl BuiltWindow {
    /// Character-cell rendering; empty for hidden windows.
    pub fn to_ascii(&self) -> String {
        if !self.visible {
            return String::new();
        }
        let _span = obs::span("render.ascii");
        ascii::render(&self.tree, &self.scenes).unwrap_or_default()
    }

    /// SVG rendering (produced even for hidden windows, so explanation
    /// tooling can inspect what *would* have shown).
    pub fn to_svg(&self) -> String {
        let _span = obs::span("render.svg");
        svg::render(&self.tree, &self.scenes).unwrap_or_default()
    }

    /// Number of widgets in the window.
    pub fn widget_count(&self) -> usize {
        self.tree.len()
    }

    /// Deterministic structural digest: two windows share a fingerprint
    /// iff their kind, title, visibility, widget structure (names,
    /// classes, props, callbacks) and scene content coincide. Used by
    /// the window-census experiments.
    pub fn fingerprint(&self) -> String {
        let mut h = DefaultHasher::new();
        self.kind.hash(&mut h);
        self.title.hash(&mut h);
        self.visible.hash(&mut h);
        self.auto_open.hash(&mut h);
        for id in self.tree.walk() {
            let w = self.tree.get(id).expect("walked id");
            w.name.hash(&mut h);
            w.class.hash(&mut h);
            format!("{:?}", w.kind).hash(&mut h);
            for (k, v) in &w.props {
                k.hash(&mut h);
                format!("{v:?}").hash(&mut h);
            }
            for (g, cb) in &w.callbacks {
                g.hash(&mut h);
                cb.hash(&mut h);
            }
            // Scene content participates through the owning widget.
            if let Some(scene) = self.scenes.get(&id) {
                scene.shapes.len().hash(&mut h);
                for s in &scene.shapes {
                    s.symbol.hash(&mut h);
                    s.label.hash(&mut h);
                    format!("{:?}", s.oid).hash(&mut h);
                }
            }
        }
        format!("{:016x}", h.finish())
    }
}

/// The generic builder: a widget library plus the three construction
/// entry points.
pub struct InterfaceBuilder {
    /// Interface-objects library; public so the dispatcher can install
    /// user-defined widget classes at run time.
    pub library: Library,
}

impl InterfaceBuilder {
    pub fn new(library: Library) -> InterfaceBuilder {
        InterfaceBuilder { library }
    }

    /// Kernel library plus the paper's worked-example widgets
    /// (`slider`, `poleWidget`, `composed_text`, `text`).
    pub fn with_paper_library() -> InterfaceBuilder {
        let mut lib = Library::with_kernel();
        lib.specialize(
            "slider",
            "Panel",
            vec![("style".into(), Prop::from("slider"))],
        )
        .expect("kernel has Panel");
        lib.specialize("poleWidget", "slider", vec![])
            .expect("slider defined");
        lib.specialize("composed_text", "Text", vec![])
            .expect("kernel has Text");
        lib.specialize("text", "Text", vec![])
            .expect("kernel has Text");
        InterfaceBuilder::new(lib)
    }

    // -- schema window ------------------------------------------------------

    /// Build the Schema window for `schema`, honouring a
    /// [`Customization::SchemaWindow`] payload when present.
    pub fn schema_window(
        &self,
        schema: &SchemaDef,
        catalog: &Catalog,
        cust: Option<&Customization>,
    ) -> Result<BuiltWindow, BuildError> {
        let _span = obs::span("builder.schema_window");
        if let Err(e) = Self::build_failpoint(cust.is_some()) {
            return self.count(Err(e));
        }
        self.count(self.schema_window_inner(schema, catalog, cust))
    }

    /// The `builder.build` failpoint, consulted only for *customized*
    /// builds: it models "applying the customization failed", so the
    /// default build path — the degradation target — never faults here.
    fn build_failpoint(customized: bool) -> Result<(), BuildError> {
        if !customized {
            return Ok(());
        }
        faultsim::fire("builder.build").map_err(|f| BuildError::Fault(f.to_string()))
    }

    fn schema_window_inner(
        &self,
        schema: &SchemaDef,
        _catalog: &Catalog,
        cust: Option<&Customization>,
    ) -> Result<BuiltWindow, BuildError> {
        let (mode, auto_open) = match cust {
            Some(Customization::SchemaWindow { mode, classes, .. }) => (*mode, classes.clone()),
            _ => (SchemaMode::Default, Vec::new()),
        };

        let title = match mode {
            SchemaMode::Default | SchemaMode::Null => format!("Schema: {}", schema.name),
            _ => format!("Schema: {} ({})", schema.name, mode),
        };

        let mut tree = WidgetTree::new(&self.library, "Window", "schema_window")?;
        tree.get_mut(tree.root())?.set_prop("title", title.clone());
        let body = tree.add(&self.library, tree.root(), "Panel", "body")?;
        let items = match mode {
            SchemaMode::Hierarchy => hierarchy_items(schema),
            _ => schema.class_names().iter().map(|c| c.to_string()).collect(),
        };
        let classes = tree.add(&self.library, body, "List", "classes")?;
        {
            let w = tree.get_mut(classes)?;
            w.set_prop("title", "classes");
            w.set_prop("items", items);
            w.on("select", "open_class");
        }

        Ok(BuiltWindow {
            kind: WindowKind::Schema,
            title,
            visible: mode != SchemaMode::Null,
            tree,
            scenes: SceneMap::new(),
            auto_open: if mode == SchemaMode::Null {
                auto_open
            } else {
                Vec::new()
            },
        })
    }

    // -- class-set window ---------------------------------------------------

    /// Build the Class-set window for one class extension, honouring a
    /// [`Customization::ClassWindow`] payload when present.
    pub fn class_window(
        &self,
        schema: &str,
        class: &str,
        instances: &[Instance],
        cust: Option<&Customization>,
    ) -> Result<BuiltWindow, BuildError> {
        let _span = obs::span("builder.class_window");
        if let Err(e) = Self::build_failpoint(cust.is_some()) {
            return self.count(Err(e));
        }
        self.count(self.class_window_inner(schema, class, instances, cust))
    }

    fn class_window_inner(
        &self,
        _schema: &str,
        class: &str,
        instances: &[Instance],
        cust: Option<&Customization>,
    ) -> Result<BuiltWindow, BuildError> {
        let (control, presentation) = match cust {
            Some(Customization::ClassWindow {
                control,
                presentation,
                ..
            }) => (control.clone(), presentation.clone()),
            _ => (None, None),
        };
        let format = presentation
            .as_deref()
            .and_then(Format::from_name)
            .unwrap_or_default();

        let title = format!("Class: {class}");
        let mut tree = WidgetTree::new(&self.library, "Window", "class_window")?;
        tree.get_mut(tree.root())?.set_prop("title", title.clone());
        let body = tree.add(&self.library, tree.root(), "Panel", "body")?;
        tree.get_mut(body)?.set_prop("layout", "h");

        // Control area: instance selector plus either the default
        // command buttons or the customization's control widget.
        let ctl = tree.add(&self.library, body, "Panel", "control")?;
        tree.get_mut(ctl)?.set_prop("title", "control");
        let ids = tree.add(&self.library, ctl, "List", "ids")?;
        {
            let w = tree.get_mut(ids)?;
            w.set_prop(
                "items",
                instances
                    .iter()
                    .map(|i| i.oid.to_string())
                    .collect::<Vec<_>>(),
            );
            w.on("select", "pick_instance");
        }
        match &control {
            None => {
                for (name, label, cb) in [
                    ("zoom", "Zoom", "zoom"),
                    ("select", "Select", "select_mode"),
                    ("close", "Close", "close_window"),
                ] {
                    let b = tree.add(&self.library, ctl, "Button", name)?;
                    let w = tree.get_mut(b)?;
                    w.set_prop("label", label);
                    w.on("click", cb);
                }
            }
            Some(widget_class) => {
                if !self.library.contains(widget_class) {
                    return Err(BuildError::UnknownWidget(widget_class.clone()));
                }
                let c = tree.add(&self.library, ctl, widget_class, "custom")?;
                tree.get_mut(c)?.on("change", "control_changed");
            }
        }

        // Presentation area: instance count plus map (or table).
        let pres = tree.add(&self.library, body, "Panel", "presentation")?;
        tree.get_mut(pres)?.set_prop("title", "display");
        let count = tree.add(&self.library, pres, "Text", "count")?;
        {
            let w = tree.get_mut(count)?;
            w.set_prop("label", "instances");
            w.set_prop("value", instances.len().to_string());
        }

        let mut scenes = SceneMap::new();
        if format == Format::Table {
            let table = tree.add(&self.library, pres, "List", "table")?;
            let w = tree.get_mut(table)?;
            w.set_prop("title", "table");
            w.set_prop(
                "items",
                instances
                    .iter()
                    .map(|i| format!("{} {}", i.oid, i.class))
                    .collect::<Vec<_>>(),
            );
            w.on("select", "pick_instance");
        } else {
            let map = tree.add(&self.library, pres, "DrawingArea", "map")?;
            tree.get_mut(map)?.on("click", "pick_instance");
            let mut scene = MapScene::new();
            for inst in instances {
                if let Some((_, geom)) = inst.primary_geometry() {
                    let sym = format.symbol(class, geom.kind());
                    scene.add(
                        MapShape::new(geom.clone())
                            .with_oid(inst.oid)
                            .with_symbol(sym),
                    );
                }
            }
            scenes.insert(map, scene);
        }

        Ok(BuiltWindow {
            kind: WindowKind::ClassSet,
            title,
            visible: true,
            tree,
            scenes,
            auto_open: Vec::new(),
        })
    }

    // -- instance window ----------------------------------------------------

    /// Build the Instance window for one instance, honouring a
    /// [`Customization::InstanceWindow`] payload when present. Needs a
    /// pinned database snapshot (not just the catalog) because `from`
    /// clauses may call schema methods that navigate references.
    pub fn instance_window(
        &self,
        snap: &DbSnapshot,
        inst: &Instance,
        cust: Option<&Customization>,
    ) -> Result<BuiltWindow, BuildError> {
        let _span = obs::span("builder.instance_window");
        if let Err(e) = Self::build_failpoint(cust.is_some()) {
            return self.count(Err(e));
        }
        self.count(self.instance_window_inner(snap, inst, cust))
    }

    fn instance_window_inner(
        &self,
        snap: &DbSnapshot,
        inst: &Instance,
        cust: Option<&Customization>,
    ) -> Result<BuiltWindow, BuildError> {
        let schema = snap
            .locate(inst.oid)
            .map(|(s, _)| s.to_string())
            .or_else(|| {
                snap.schemas()
                    .into_iter()
                    .find(|s| s.find_class(&inst.class).is_some())
                    .map(|s| s.name)
            })
            .ok_or_else(|| GeoDbError::UnknownClass(inst.class.clone()))?;
        let attrs = snap.catalog().effective_attrs(&schema, &inst.class)?;
        let clauses: &[AttrClause] = match cust {
            Some(Customization::InstanceWindow { attrs, .. }) => attrs,
            _ => &[],
        };

        let title = format!("Instance: {} {}", inst.class, inst.oid);
        let mut tree = WidgetTree::new(&self.library, "Window", "instance_window")?;
        tree.get_mut(tree.root())?.set_prop("title", title.clone());
        let body = tree.add(&self.library, tree.root(), "Panel", "body")?;

        for attr in &attrs {
            let clause = clauses.iter().find(|c| c.attribute == attr.name);
            let widget_class = match clause.map(|c| &c.display) {
                Some(AttrDisplay::Null) => continue,
                Some(AttrDisplay::Widget(w)) => {
                    if !self.library.contains(w) {
                        return Err(BuildError::UnknownWidget(w.clone()));
                    }
                    w.as_str()
                }
                _ => "Text",
            };
            let value = match clause {
                Some(c) => clause_value(snap, inst, c)?,
                None => inst.get(&attr.name).display_text(),
            };
            let row = tree.add(&self.library, body, widget_class, &attr.name)?;
            let w = tree.get_mut(row)?;
            w.set_prop("label", attr.name.clone());
            w.set_prop("value", value);
            if let Some(using) = clause.and_then(|c| c.using.clone()) {
                w.on("changed", using);
            }
        }

        Ok(BuiltWindow {
            kind: WindowKind::Instance,
            title,
            visible: true,
            tree,
            scenes: SceneMap::new(),
            auto_open: Vec::new(),
        })
    }

    /// Shared post-build accounting: windows built, widgets
    /// instantiated, failures.
    fn count(&self, r: Result<BuiltWindow, BuildError>) -> Result<BuiltWindow, BuildError> {
        match &r {
            Ok(w) => {
                obs::counter_add("builder.windows_built", 1);
                obs::counter_add("builder.widgets_instantiated", w.tree.len() as u64);
            }
            Err(_) => obs::counter_add("builder.build_failures", 1),
        }
        r
    }
}

/// Class names indented by inheritance depth, children after parents.
fn hierarchy_items(schema: &SchemaDef) -> Vec<String> {
    fn rec(schema: &SchemaDef, parent: Option<&str>, depth: usize, out: &mut Vec<String>) {
        for c in &schema.classes {
            if c.parent.as_deref() == parent {
                out.push(format!("{}{}", "  ".repeat(depth), c.name));
                rec(schema, Some(&c.name), depth + 1, out);
            }
        }
    }
    let mut out = Vec::new();
    rec(schema, None, 0, &mut out);
    out
}

/// Resolve an attribute clause's displayed value: `from` sources joined
/// with " / " (paths read through the instance; method calls run against
/// the pinned snapshot), falling back to the raw attribute value.
fn clause_value(
    snap: &DbSnapshot,
    inst: &Instance,
    clause: &AttrClause,
) -> Result<String, BuildError> {
    if clause.from.is_empty() {
        return Ok(inst.get(&clause.attribute).display_text());
    }
    let mut parts = Vec::with_capacity(clause.from.len());
    for src in &clause.from {
        match src {
            Source::Path(p) => parts.push(inst.get_path(p).display_text()),
            Source::MethodCall { method, args } => {
                let argv: Vec<Value> = args.iter().map(|a| inst.get_path(a).clone()).collect();
                parts.push(snap.call_method(inst, method, &argv)?.display_text());
            }
        }
    }
    Ok(parts.join(" / "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use custlang::{compile, parse};
    use geodb::gen::{phone_net_db, TelecomConfig};

    fn db() -> geodb::Database {
        let (db, _) = phone_net_db(&TelecomConfig::small()).expect("demo db builds");
        db
    }

    fn fig6_customizations() -> Vec<Customization> {
        let prog = parse(custlang::FIG6_PROGRAM).unwrap();
        compile(&prog, "fig6")
            .into_iter()
            .map(|r| match &*r.action {
                active::Action::Customize(c) => c.clone(),
                _ => panic!("fig6 compiles to customizations"),
            })
            .collect()
    }

    #[test]
    fn default_schema_window_lists_classes_in_order() {
        let mut db = db();
        let schema = db.get_schema("phone_net").unwrap();
        let b = InterfaceBuilder::with_paper_library();
        let w = b.schema_window(&schema, db.catalog(), None).unwrap();
        assert_eq!(w.kind, WindowKind::Schema);
        assert!(w.visible);
        let art = w.to_ascii();
        let (s, p) = (art.find("Supplier").unwrap(), art.find("Pole").unwrap());
        let (d, t) = (art.find("Duct").unwrap(), art.find("District").unwrap());
        assert!(s < p && p < d && d < t, "declaration order preserved");
    }

    #[test]
    fn null_mode_hides_schema_window_and_forwards_classes() {
        let mut db = db();
        let schema = db.get_schema("phone_net").unwrap();
        let b = InterfaceBuilder::with_paper_library();
        let cust = Customization::SchemaWindow {
            schema: "phone_net".into(),
            mode: SchemaMode::Null,
            classes: vec!["Pole".into()],
        };
        let w = b.schema_window(&schema, db.catalog(), Some(&cust)).unwrap();
        assert!(!w.visible);
        assert_eq!(w.to_ascii(), "");
        assert!(w.to_svg().starts_with("<svg"));
        assert_eq!(w.auto_open, vec!["Pole".to_string()]);
    }

    #[test]
    fn default_class_window_has_buttons_and_map() {
        let mut db = db();
        let poles = db.get_class("phone_net", "Pole", false).unwrap();
        let b = InterfaceBuilder::with_paper_library();
        let w = b.class_window("phone_net", "Pole", &poles, None).unwrap();
        let art = w.to_ascii();
        assert!(art.contains("Class: Pole"));
        assert!(
            art.contains("[ Zoom ]") && art.contains("[ Select ]") && art.contains("[ Close ]")
        );
        assert!(art.contains(&format!("instances: {}", poles.len())));
        assert!(art.contains('.'), "default point symbol");
        w.tree.find("class_window/body/control/ids").unwrap();
        w.tree.find("class_window/body/presentation/map").unwrap();
    }

    #[test]
    fn fig6_class_window_swaps_control_and_point_symbols() {
        let mut db = db();
        let poles = db.get_class("phone_net", "Pole", false).unwrap();
        let b = InterfaceBuilder::with_paper_library();
        let cust = fig6_customizations()
            .into_iter()
            .find(|c| matches!(c, Customization::ClassWindow { .. }))
            .unwrap();
        let w = b
            .class_window("phone_net", "Pole", &poles, Some(&cust))
            .unwrap();
        let art = w.to_ascii();
        assert!(art.contains("O="), "slider control renders");
        assert!(!art.contains("[ Zoom ]"));
        assert!(art.contains('o'), "pointFormat symbol");
    }

    #[test]
    fn fig6_instance_window_applies_attr_clauses() {
        let snap = geodb::DbStore::new(db()).snapshot();
        let poles = snap.get_class("phone_net", "Pole", false).unwrap();
        let b = InterfaceBuilder::with_paper_library();
        let cust = fig6_customizations()
            .into_iter()
            .find(|c| matches!(c, Customization::InstanceWindow { .. }))
            .unwrap();
        let w = b.instance_window(&snap, &poles[0], Some(&cust)).unwrap();
        let art = w.to_ascii();
        assert!(
            !art.contains("pole_location"),
            "Null display hides the attribute"
        );
        assert!(
            art.contains("pole_supplier: Supplier-"),
            "method call resolves"
        );
        let comp_row = art
            .lines()
            .find(|l| l.contains("pole_composition"))
            .unwrap();
        assert_eq!(
            comp_row.matches(" / ").count(),
            2,
            "three tuple fields joined"
        );
    }

    #[test]
    fn table_format_replaces_the_map() {
        let mut db = db();
        let poles = db.get_class("phone_net", "Pole", false).unwrap();
        let b = InterfaceBuilder::with_paper_library();
        let cust = Customization::ClassWindow {
            schema: "phone_net".into(),
            class: "Pole".into(),
            control: None,
            presentation: Some("tableFormat".into()),
        };
        let w = b
            .class_window("phone_net", "Pole", &poles, Some(&cust))
            .unwrap();
        assert!(w.tree.find("class_window/body/presentation/map").is_err());
        w.tree.find("class_window/body/presentation/table").unwrap();
        assert!(w.to_ascii().contains("Class: Pole"));
    }

    #[test]
    fn fingerprints_distinguish_windows_and_stay_deterministic() {
        let mut db = db();
        let b = InterfaceBuilder::with_paper_library();
        let mut prints = std::collections::HashSet::new();
        for class in ["Supplier", "Pole", "Duct", "District"] {
            let insts = db.get_class("phone_net", class, false).unwrap();
            let w = b.class_window("phone_net", class, &insts, None).unwrap();
            assert!(w.widget_count() > 3);
            prints.insert(w.fingerprint());
        }
        assert_eq!(prints.len(), 4);

        let poles = db.get_class("phone_net", "Pole", false).unwrap();
        let a = b.class_window("phone_net", "Pole", &poles, None).unwrap();
        let c = b.class_window("phone_net", "Pole", &poles, None).unwrap();
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn unknown_control_widget_is_a_build_error() {
        let mut db = db();
        let poles = db.get_class("phone_net", "Pole", false).unwrap();
        let b = InterfaceBuilder::with_paper_library();
        let cust = Customization::ClassWindow {
            schema: "phone_net".into(),
            class: "Pole".into(),
            control: Some("no_such_widget".into()),
            presentation: None,
        };
        let err = b
            .class_window("phone_net", "Pole", &poles, Some(&cust))
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::UnknownWidget(_) | BuildError::Tree(_)
        ));
    }
}
