//! The weak-integration protocol.
//!
//! "Our architecture is based on the weak integration approach … Weak
//! integration demands the definition of communication and data
//! conversion protocols between the user interface system and the
//! geographic system." Requests and responses are self-describing JSON
//! messages, so the same UI could front a different GIS that speaks the
//! protocol.

use serde::{Deserialize, Serialize};

use geodb::instance::Oid;

/// Protocol version tag; mismatches are rejected at decode time.
pub const PROTOCOL_VERSION: u32 = 1;

/// UI → system requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Open (or refresh) the Schema window of a schema.
    OpenSchema { schema: String },
    /// Open a Class-set window.
    OpenClass { schema: String, class: String },
    /// Open an Instance window.
    OpenInstance { oid: u64 },
    /// Deliver a user gesture on a widget of a window.
    UiGesture {
        window: u64,
        path: String,
        gesture: String,
        detail: Option<String>,
    },
    /// Close a window (and its children).
    CloseWindow { window: u64 },
    /// Analysis mode: open a Class-set window restricted to a predicate
    /// (predicates are part of the data-conversion protocol, so remote
    /// front ends can ship them as JSON).
    Analyze {
        schema: String,
        class: String,
        predicate: geodb::query::Predicate,
    },
    /// Ask for the explanation trace of the last interaction.
    Explain,
}

/// System → UI responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Windows created or refreshed by the request, as render-ready text.
    Windows(Vec<WindowDescriptor>),
    /// Windows closed.
    Closed(Vec<u64>),
    /// Explanation trace lines.
    Explanation(Vec<String>),
    /// The request failed.
    Error { message: String },
}

/// Wire form of a built window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowDescriptor {
    pub id: u64,
    pub kind: String,
    pub title: String,
    pub visible: bool,
    /// ASCII rendering (the "data conversion" of the protocol: the UI
    /// side needs no knowledge of widget internals).
    pub ascii: String,
    /// Object shown, for Instance windows.
    pub oid: Option<Oid>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Envelope<T> {
    version: u32,
    body: T,
}

/// Encode a message for the wire.
pub fn encode<T: Serialize>(body: &T) -> String {
    serde_json::to_string(&Envelope {
        version: PROTOCOL_VERSION,
        body,
    })
    .expect("protocol types serialize")
}

/// Decode a wire message, checking the version.
pub fn decode<T: for<'de> Deserialize<'de>>(wire: &str) -> Result<T, String> {
    let env: Envelope<T> =
        serde_json::from_str(wire).map_err(|e| format!("malformed message: {e}"))?;
    if env.version != PROTOCOL_VERSION {
        return Err(format!(
            "protocol version mismatch: got {}, want {PROTOCOL_VERSION}",
            env.version
        ));
    }
    Ok(env.body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = Request::OpenClass {
            schema: "phone_net".into(),
            class: "Pole".into(),
        };
        let wire = encode(&req);
        let back: Request = decode(&wire).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::Windows(vec![WindowDescriptor {
            id: 1,
            kind: "Schema".into(),
            title: "Schema: phone_net".into(),
            visible: true,
            ascii: "+--+\n".into(),
            oid: None,
        }]);
        let wire = encode(&resp);
        let back: Response = decode(&wire).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn version_mismatch_rejected() {
        let wire = encode(&Request::Explain).replace("\"version\":1", "\"version\":9");
        let err = decode::<Request>(&wire).unwrap_err();
        assert!(err.contains("version mismatch"));
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode::<Request>("not json").is_err());
        assert!(decode::<Request>("{}").is_err());
    }
}

#[cfg(test)]
mod analyze_request_tests {
    use super::*;
    use geodb::query::{CmpOp, Predicate};

    #[test]
    fn analyze_request_round_trips_with_predicate() {
        let req = Request::Analyze {
            schema: "phone_net".into(),
            class: "Pole".into(),
            predicate: Predicate::cmp("pole_composition.pole_height", CmpOp::Gt, 10.0)
                .and(Predicate::cmp("pole_type", CmpOp::Eq, 2i64)),
        };
        let wire = encode(&req);
        let back: Request = decode(&wire).unwrap();
        assert_eq!(req, back);
    }
}
