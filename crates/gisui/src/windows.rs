//! The window registry: the dispatcher "is responsible for creating and
//! maintaining the hierarchy of (Schema, Class set, Instance) windows".

use std::collections::HashMap;

use builder::BuiltWindow;
use geodb::instance::Oid;

/// Identifier of a managed window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowId(pub u64);

impl std::fmt::Display for WindowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "win{}", self.0)
    }
}

/// A window under dispatcher management.
#[derive(Debug, Clone)]
pub struct ManagedWindow {
    pub id: WindowId,
    pub built: BuiltWindow,
    pub parent: Option<WindowId>,
    /// Session that opened the window (its context governs refreshes).
    pub session: u32,
    /// Schema the window browses.
    pub schema: String,
    /// Class, for Class-set and Instance windows.
    pub class: Option<String>,
    /// Object, for Instance windows.
    pub oid: Option<Oid>,
}

/// Registry of open windows with parent/child hierarchy.
#[derive(Debug, Default)]
pub struct WindowRegistry {
    windows: HashMap<WindowId, ManagedWindow>,
    next_id: u64,
}

impl WindowRegistry {
    pub fn new() -> WindowRegistry {
        WindowRegistry::default()
    }

    pub fn len(&self) -> usize {
        self.windows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Register a window; returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        built: BuiltWindow,
        parent: Option<WindowId>,
        session: u32,
        schema: impl Into<String>,
        class: Option<String>,
        oid: Option<Oid>,
    ) -> WindowId {
        let id = WindowId(self.next_id);
        self.next_id += 1;
        self.windows.insert(
            id,
            ManagedWindow {
                id,
                built,
                parent,
                session,
                schema: schema.into(),
                class,
                oid,
            },
        );
        if obs::enabled() {
            obs::counter_add("dispatcher.windows_opened", 1);
            obs::record_value("dispatcher.open_windows", self.windows.len() as u64);
        }
        id
    }

    pub fn get(&self, id: WindowId) -> Option<&ManagedWindow> {
        self.windows.get(&id)
    }

    pub fn get_mut(&mut self, id: WindowId) -> Option<&mut ManagedWindow> {
        self.windows.get_mut(&id)
    }

    /// Direct children of a window.
    pub fn children(&self, id: WindowId) -> Vec<WindowId> {
        let mut v: Vec<WindowId> = self
            .windows
            .values()
            .filter(|w| w.parent == Some(id))
            .map(|w| w.id)
            .collect();
        v.sort();
        v
    }

    /// Close a window and its whole subtree; returns the closed ids.
    pub fn close(&mut self, id: WindowId) -> Vec<WindowId> {
        let mut closed = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if self.windows.remove(&cur).is_some() {
                closed.push(cur);
                stack.extend(
                    self.windows
                        .values()
                        .filter(|w| w.parent == Some(cur))
                        .map(|w| w.id),
                );
            }
        }
        closed.sort();
        if obs::enabled() && !closed.is_empty() {
            obs::counter_add("dispatcher.windows_closed", closed.len() as u64);
            obs::record_value("dispatcher.open_windows", self.windows.len() as u64);
        }
        closed
    }

    /// All open windows, id order.
    pub fn iter(&self) -> Vec<&ManagedWindow> {
        let mut v: Vec<&ManagedWindow> = self.windows.values().collect();
        v.sort_by_key(|w| w.id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use builder::{BuiltWindow, WindowKind};
    use uilib::{Library, SceneMap, WidgetTree};

    fn dummy(kind: WindowKind) -> BuiltWindow {
        let lib = Library::with_kernel();
        let tree = WidgetTree::new(&lib, "Window", "w").unwrap();
        BuiltWindow {
            kind,
            title: "t".into(),
            visible: true,
            tree,
            scenes: SceneMap::new(),
            auto_open: vec![],
        }
    }

    #[test]
    fn hierarchy_tracks_parents_and_children() {
        let mut reg = WindowRegistry::new();
        let schema = reg.insert(dummy(WindowKind::Schema), None, 0, "s", None, None);
        let class = reg.insert(
            dummy(WindowKind::ClassSet),
            Some(schema),
            0,
            "s",
            Some("Pole".into()),
            None,
        );
        let inst = reg.insert(
            dummy(WindowKind::Instance),
            Some(class),
            0,
            "s",
            Some("Pole".into()),
            Some(Oid(1)),
        );
        assert_eq!(reg.children(schema), vec![class]);
        assert_eq!(reg.children(class), vec![inst]);
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.get(inst).unwrap().oid, Some(Oid(1)));
    }

    #[test]
    fn close_cascades_to_descendants() {
        let mut reg = WindowRegistry::new();
        let schema = reg.insert(dummy(WindowKind::Schema), None, 0, "s", None, None);
        let class = reg.insert(
            dummy(WindowKind::ClassSet),
            Some(schema),
            0,
            "s",
            None,
            None,
        );
        let inst = reg.insert(dummy(WindowKind::Instance), Some(class), 0, "s", None, None);
        let other = reg.insert(dummy(WindowKind::Schema), None, 0, "s2", None, None);

        let closed = reg.close(schema);
        assert_eq!(closed, vec![schema, class, inst]);
        assert_eq!(reg.len(), 1);
        assert!(reg.get(other).is_some());
        // Closing again is a no-op.
        assert!(reg.close(schema).is_empty());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut reg = WindowRegistry::new();
        let a = reg.insert(dummy(WindowKind::Schema), None, 0, "s", None, None);
        reg.close(a);
        let b = reg.insert(dummy(WindowKind::Schema), None, 0, "s", None, None);
        assert_ne!(a, b);
    }
}
