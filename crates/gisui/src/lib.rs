//! # gisui — the GIS user-interface layer
//!
//! The topmost layer of the paper's Fig. 1 architecture:
//!
//! * [`dispatcher`] — "the generic interface control module": captures
//!   user actions, generates the `Get_Schema` / `Get_Class` / `Get_Value`
//!   primitives the active mechanism intercepts, and maintains the
//!   Schema → Class-set → Instance window hierarchy ([`windows`]);
//! * [`session`] — per-user sessions carrying the `<user, category,
//!   application>` context that rule conditions check;
//! * [`modes`] — exploratory browsing (the paper's supported mode) plus
//!   the analysis / simulation / explanation extensions it describes;
//! * [`protocol`] — the weak-integration message protocol between the UI
//!   and the geographic system.
//!
//! The customization is *transparent*: "all the modules in the interface
//! have exactly the same behavior, with or without customization" — the
//! dispatcher code has no customization branches; it merely forwards
//! whatever payload the active engine selected to the builder.

pub mod dispatcher;
pub mod explain;
pub mod modes;
pub mod protocol;
pub mod screen;
pub mod session;
pub mod windows;

pub use dispatcher::{paper_dispatcher, Dispatcher, Result, StoredProgramReport, UiError};
pub use explain::{ExplanationLog, TraceRecord, DEFAULT_EXPLANATION_CAPACITY};
pub use modes::InteractionMode;
pub use protocol::{decode, encode, Request, Response, WindowDescriptor, PROTOCOL_VERSION};
pub use screen::{beside, session_screen};
pub use session::{Session, SessionId};
pub use windows::{ManagedWindow, WindowId, WindowRegistry};
