//! The dispatcher: generic interface control.
//!
//! "Each user action is captured by the interface where it is processed
//! by a dispatcher, which is responsible for creating and maintaining the
//! hierarchy of (Schema, Class set, Instance) windows … The dispatcher
//! recognizes different types of database interaction requests (schema
//! and extension manipulations), and generates the primitive events
//! captured by the active database mechanism."
//!
//! The full Fig. 1 loop lives here: a user gesture (`IEᵢ`) fires a
//! callback, the callback's signal becomes a database request whose
//! events (`DBEᵢ`) the active engine intercepts, the selected
//! customization (if any) goes to the generic interface builder, and the
//! built window returns to the screen.

use std::collections::HashMap;
use std::sync::Arc;

use active::{ActiveError, Engine, Event, SessionContext};
use builder::{BuildError, InterfaceBuilder, WindowKind};
use custlang::{AnalysisEnv, Customization, Diagnostic, ParseError};
use geodb::db::Database;
use geodb::error::GeoDbError;
use geodb::instance::Oid;
use geodb::query::{DbEvent, Predicate};
use geodb::repl::ReadRouter;
use geodb::store::{DbSnapshot, DbStore};
use geodb::value::Value;
use geodb::Epoch;
use uilib::{CallbackTable, Signal, UiEvent};

use crate::explain::{ExplanationLog, TraceRecord};
use crate::modes::InteractionMode;
use crate::protocol::{Request, Response, WindowDescriptor};
use crate::session::{Session, SessionId};
use crate::windows::{ManagedWindow, WindowId, WindowRegistry};

/// Report from loading the stored customization programs at boot:
/// `(programs installed, rules installed, skipped)` where each skipped
/// entry is `(program name, reason)`.
pub type StoredProgramReport = (usize, usize, Vec<(String, String)>);

/// Errors surfaced by the UI layer.
#[derive(Debug)]
pub enum UiError {
    Db(GeoDbError),
    Build(BuildError),
    Active(ActiveError),
    Parse(ParseError),
    /// The customization program failed semantic analysis.
    Analysis(Vec<Diagnostic>),
    UnknownSession(SessionId),
    UnknownWindow(WindowId),
    /// The session's interaction mode forbids the operation.
    ModeViolation(String),
}

impl std::fmt::Display for UiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UiError::Db(e) => write!(f, "database: {e}"),
            UiError::Build(e) => write!(f, "builder: {e}"),
            UiError::Active(e) => write!(f, "active mechanism: {e}"),
            UiError::Parse(e) => write!(f, "customization program: {e}"),
            UiError::Analysis(diags) => {
                write!(f, "customization program rejected:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            UiError::UnknownSession(s) => write!(f, "unknown session {s}"),
            UiError::UnknownWindow(w) => write!(f, "unknown window {w}"),
            UiError::ModeViolation(m) => write!(f, "mode violation: {m}"),
        }
    }
}

impl std::error::Error for UiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UiError::Db(e) => Some(e),
            UiError::Build(e) => Some(e),
            UiError::Active(e) => Some(e),
            UiError::Parse(e) => Some(e),
            UiError::Analysis(_)
            | UiError::UnknownSession(_)
            | UiError::UnknownWindow(_)
            | UiError::ModeViolation(_) => None,
        }
    }
}

/// Render a caught panic payload for error reporting.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

impl From<GeoDbError> for UiError {
    fn from(e: GeoDbError) -> Self {
        UiError::Db(e)
    }
}
impl From<BuildError> for UiError {
    fn from(e: BuildError) -> Self {
        UiError::Build(e)
    }
}
impl From<ActiveError> for UiError {
    fn from(e: ActiveError) -> Self {
        UiError::Active(e)
    }
}
impl From<ParseError> for UiError {
    fn from(e: ParseError) -> Self {
        UiError::Parse(e)
    }
}

/// Result alias for the UI layer.
pub type Result<T> = std::result::Result<T, UiError>;

/// The central controller tying database, active engine, builder,
/// callbacks and window registry together.
///
/// Since the shared-storage refactor the dispatcher owns no database:
/// it routes reads through a [`ReadRouter`] over a shared [`DbStore`].
/// Reads execute against the pinned immutable snapshot (one `Acquire`
/// epoch load per interaction, no locks) — served from the primary or,
/// under a replicated deployment, from a follower within the router's
/// staleness bound (see `docs/replication.md`). Writes always go through
/// the primary store's serialized writer and publish a new epoch that
/// every other dispatcher over the same store observes on its next pin.
pub struct Dispatcher {
    /// The primary store: the write path, and the handle [`Dispatcher::store`]
    /// clones out (reads may be served elsewhere).
    write_store: DbStore,
    router: ReadRouter,
    /// Epoch this dispatcher last served; when the pin observes a newer
    /// one, per-session caches keyed on database state are flushed.
    last_db_epoch: Epoch,
    engine: Engine<Customization>,
    builder: InterfaceBuilder,
    callbacks: CallbackTable,
    registry: WindowRegistry,
    sessions: HashMap<SessionId, Session>,
    next_session: u32,
    /// Structured rule traces of recent interactions (explanation mode).
    explain: ExplanationLog,
}

impl Dispatcher {
    /// Create a dispatcher over a database, with the generic callbacks
    /// pre-registered. The database moves into a private [`DbStore`];
    /// use [`Dispatcher::with_store`] to share one store across
    /// dispatchers.
    pub fn new(db: Database, builder: InterfaceBuilder) -> Dispatcher {
        Dispatcher::with_engine(db, builder, Engine::new())
    }

    /// Create a dispatcher around an existing engine handle (see
    /// `docs/scaling.md`), wrapping the database into a private store.
    pub fn with_engine(
        db: Database,
        builder: InterfaceBuilder,
        engine: Engine<Customization>,
    ) -> Dispatcher {
        Dispatcher::with_store(DbStore::new(db), builder, engine)
    }

    /// Create a dispatcher serving a *shared* versioned store — the hook
    /// the concurrent serving layer uses to give every shard its own
    /// session and windows over one database and one rule base
    /// (see `docs/storage.md`).
    pub fn with_store(
        store: DbStore,
        builder: InterfaceBuilder,
        engine: Engine<Customization>,
    ) -> Dispatcher {
        let router = ReadRouter::primary_only(store.reader());
        Dispatcher::with_router(store, router, builder, engine)
    }

    /// Create a dispatcher whose *reads* follow `router` — e.g. served
    /// from a replica within a staleness bound — while writes go through
    /// `store` (the primary). `with_store` is the primary-only special
    /// case.
    pub fn with_router(
        store: DbStore,
        router: ReadRouter,
        builder: InterfaceBuilder,
        engine: Engine<Customization>,
    ) -> Dispatcher {
        let mut callbacks = CallbackTable::new();
        // The generic (default) behaviors of the interface: every signal
        // is a request the dispatcher knows how to serve.
        callbacks.register(
            "open_class",
            Arc::new(|_, ev: &UiEvent| {
                let class = ev.detail.clone().unwrap_or_default();
                vec![Signal::new("open_class").arg("class", class.trim())]
            }),
        );
        callbacks.register(
            "open_schema",
            Arc::new(|_, _| vec![Signal::new("open_schema")]),
        );
        callbacks.register(
            "pick_instance",
            Arc::new(|_, ev: &UiEvent| {
                vec![Signal::new("pick_instance")
                    .arg("detail", ev.detail.clone().unwrap_or_default())]
            }),
        );
        callbacks.register(
            "close_window",
            Arc::new(|_, _| vec![Signal::new("close_window")]),
        );
        for noop in ["zoom", "select_mode", "control_changed"] {
            let name = noop.to_string();
            callbacks.register(
                noop,
                Arc::new(move |_, _| vec![Signal::new("status").arg("action", name.clone())]),
            );
        }
        let mut router = router;
        let (snap, _, _) = router.pin();
        let last_db_epoch = snap.epoch();
        let mut explain = ExplanationLog::default();
        explain.note_db_epoch(last_db_epoch);
        Dispatcher {
            write_store: store,
            router,
            last_db_epoch,
            engine,
            builder,
            callbacks,
            registry: WindowRegistry::new(),
            sessions: HashMap::new(),
            next_session: 1,
            explain,
        }
    }

    // -- accessors ----------------------------------------------------------

    /// A handle to the shared *primary* store this dispatcher writes
    /// through (cheap to clone; writes through it are visible to every
    /// dispatcher over the same store). Reads may be routed elsewhere —
    /// see [`Dispatcher::route_reads`].
    pub fn store(&self) -> DbStore {
        self.write_store.clone()
    }

    /// The database epoch this dispatcher last served.
    pub fn db_epoch(&self) -> Epoch {
        self.last_db_epoch
    }

    /// Swap the read-routing policy at run time (e.g. point reads at a
    /// freshly attached replica, or back at the primary before a
    /// promotion). Takes effect on the next interaction's pin.
    pub fn route_reads(&mut self, router: ReadRouter) {
        self.router = router;
    }

    /// Does this dispatcher currently route reads to a replica?
    pub fn reads_replicated(&self) -> bool {
        self.router.has_replica()
    }

    /// Revalidate the routed read pin — exactly one `Acquire` epoch load
    /// in steady state. When the epoch moved (some session committed a
    /// write), flush the winner cache (its entries were computed against
    /// the old data version) and stamp the new epoch — and the replica
    /// staleness the router measured — into the explanation log. Returns
    /// the pinned snapshot every read of the interaction runs against.
    fn revalidate(&mut self) -> Arc<DbSnapshot> {
        let (snap, _source, lag) = self.router.pin();
        let snap = Arc::clone(snap);
        let epoch = snap.epoch();
        if epoch != self.last_db_epoch {
            self.last_db_epoch = epoch;
            self.engine.invalidate_winner_cache();
            self.explain.note_db_epoch(epoch);
        }
        if lag != self.explain.staleness() {
            self.explain.note_staleness(lag);
        }
        snap
    }

    /// Pin the current database snapshot. All reads of one interaction
    /// run against the returned snapshot, so they see a single
    /// consistent epoch even while writers publish newer ones.
    pub fn snapshot(&mut self) -> Arc<DbSnapshot> {
        self.revalidate()
    }

    pub fn engine(&mut self) -> &mut Engine<Customization> {
        &mut self.engine
    }

    pub fn callbacks(&mut self) -> &mut CallbackTable {
        &mut self.callbacks
    }

    /// Mutable access to the interface-objects library, for run-time
    /// class additions ("the user can add or specialize controls in this
    /// library").
    pub fn builder_library_mut(&mut self) -> &mut uilib::Library {
        &mut self.builder.library
    }

    pub fn window(&self, id: WindowId) -> Option<&ManagedWindow> {
        self.registry.get(id)
    }

    pub fn open_windows(&self) -> Vec<&ManagedWindow> {
        self.registry.iter()
    }

    /// Rendered rule traces of this dispatcher's interactions so far
    /// (the most recent ones — the log is a bounded ring).
    pub fn explanation(&self) -> &[String] {
        self.explain.rendered()
    }

    /// The structured explanation log: recent traces with depths,
    /// matched/fired/shadowed rule names and sequence numbers.
    pub fn explanation_log(&self) -> &ExplanationLog {
        &self.explain
    }

    /// The most recent `n` structured traces, oldest of them first.
    pub fn recent_traces(&self, n: usize) -> Vec<&TraceRecord> {
        self.explain.recent(n)
    }

    /// Change how many traces the explanation log retains.
    pub fn set_explanation_capacity(&mut self, capacity: usize) {
        self.explain.set_capacity(capacity);
    }

    /// JSON export of the retained traces (the `:explain` pipeline).
    pub fn explanation_json(&self) -> String {
        self.explain.to_json()
    }

    // -- sessions -----------------------------------------------------------

    /// Open a session for a user context.
    pub fn open_session(&mut self, context: SessionContext) -> SessionId {
        obs::counter_add("dispatcher.sessions", 1);
        let id = SessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(id, Session::new(id, context));
        id
    }

    pub fn set_mode(&mut self, sid: SessionId, mode: InteractionMode) -> Result<()> {
        self.sessions
            .get_mut(&sid)
            .ok_or(UiError::UnknownSession(sid))?
            .mode = mode;
        Ok(())
    }

    pub fn session(&self, sid: SessionId) -> Option<&Session> {
        self.sessions.get(&sid)
    }

    fn context_of(&self, sid: SessionId) -> Result<SessionContext> {
        Ok(self
            .sessions
            .get(&sid)
            .ok_or(UiError::UnknownSession(sid))?
            .context
            .clone())
    }

    // -- customization program management ------------------------------------

    /// Parse, analyze, compile and install a customization program.
    /// Returns the number of rules installed. Reinstalling under the same
    /// `prefix` replaces the previous program.
    pub fn install_program(&mut self, source: &str, prefix: &str) -> Result<usize> {
        let program = custlang::parse(source)?;
        let snap = self.snapshot();
        let env = AnalysisEnv::new(snap.catalog(), &self.builder.library);
        let diags = custlang::analyze(&program, &env);
        if !custlang::is_clean(&diags) {
            return Err(UiError::Analysis(diags));
        }
        let rules = custlang::compile(&program, prefix);
        let n = rules.len();
        self.engine.remove_rules_with_prefix(&format!("{prefix}/"));
        self.engine.add_rules(rules)?;
        Ok(n)
    }

    /// Validate, persist *into the geographic database* and install a
    /// customization program — the paper's durable form: "customization
    /// rules stored in the database are derived from assertives written
    /// in this language".
    pub fn store_program(&mut self, source: &str, name: &str) -> Result<usize> {
        let n = self.install_program(source, name)?;
        self.store()
            .write(|db| custlang::save_program(db, name, source))?;
        Ok(n)
    }

    /// Compile and install every program stored in the database (the
    /// boot path after reopening a snapshot). Returns `(programs, rules)`
    /// counts. Programs that no longer analyze cleanly are skipped, each
    /// reported as `(name, error)` — the skip is also counted
    /// (`ui.programs_skipped`) and recorded in the explanation log, so a
    /// silently-missing customization can be diagnosed after the fact.
    pub fn load_stored_programs(&mut self) -> Result<StoredProgramReport> {
        let programs = custlang::load_programs_snap(&self.snapshot())?;
        let mut installed = 0;
        let mut rules = 0;
        let mut skipped = Vec::new();
        for (name, source) in programs {
            match self.install_program(&source, &name) {
                Ok(n) => {
                    installed += 1;
                    rules += n;
                }
                Err(e) => {
                    let cause = e.to_string();
                    obs::counter_add("ui.programs_skipped", 1);
                    self.explain
                        .push_degraded("stored_program", &format!("{name}: {cause}"));
                    skipped.push((name, cause));
                }
            }
        }
        Ok((installed, rules, skipped))
    }

    // -- the Fig. 1 event loop ------------------------------------------------

    /// Build a window, degrading gracefully: when the *customized* build
    /// fails (or panics — the builder runs behind a panic boundary), fall
    /// back to the generic default presentation, which is always
    /// available (paper Section 3.2: customization is transparent to the
    /// generic interface). The incident is counted (`ui.degraded_builds`)
    /// and recorded in the explanation log. Default builds take the
    /// direct path: with no customization there is nothing to degrade to,
    /// so their errors propagate.
    fn build_degradable<F>(
        &mut self,
        stage: &str,
        cust: Option<&Customization>,
        mut build: F,
    ) -> Result<builder::BuiltWindow>
    where
        F: FnMut(
            &mut Dispatcher,
            Option<&Customization>,
        ) -> std::result::Result<builder::BuiltWindow, BuildError>,
    {
        if cust.is_none() {
            return Ok(build(self, None)?);
        }
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| build(self, cust)));
        let cause = match attempt {
            Ok(Ok(built)) => return Ok(built),
            Ok(Err(e)) => e.to_string(),
            Err(payload) => panic_message(&*payload),
        };
        obs::counter_add("ui.degraded_builds", 1);
        self.explain.push_degraded(stage, &cause);
        Ok(build(self, None)?)
    }

    /// Feed database events through the active engine for a session;
    /// returns the first customization selected, if any.
    ///
    /// Reads no longer drain a queue out of the database: snapshot
    /// queries are side-effect free, so the dispatcher synthesizes the
    /// paper's primitive events (`Get_Schema` / `Get_Class` /
    /// `Get_Value`) itself, and writes hand back the events their
    /// [`geodb::store::Committed`] batch produced.
    fn dispatch_events(
        &mut self,
        ctx: &SessionContext,
        events: Vec<DbEvent>,
    ) -> Result<Option<Customization>> {
        let mut selected = None;
        let mut count = 0u64;
        for db_event in events {
            count += 1;
            let outcome = self.engine.dispatch(Event::Db(db_event), ctx)?;
            if !outcome.trace.entries.is_empty() {
                self.explain.push(outcome.trace);
            }
            if selected.is_none() {
                selected = outcome.customizations.into_iter().next();
            }
        }
        obs::counter_add("dispatcher.events", count);
        Ok(selected)
    }

    /// Feed one database event through the active engine for a session
    /// — the raw request primitive of the concurrent serving layer
    /// (`Get_Class` / `Get_Value` lookups that need rule selection but
    /// no window construction). Traces land in the explanation log like
    /// every other interaction.
    pub fn dispatch_db(
        &mut self,
        sid: SessionId,
        event: geodb::query::DbEvent,
    ) -> Result<active::Outcome<Customization>> {
        let _span = obs::span("dispatcher.dispatch_db");
        let event_kind = event.kind();
        let ctx = self.context_of(sid)?;
        // One atomic epoch load: the hot path notices concurrent commits
        // (and flushes the winner cache) without ever taking a lock.
        self.revalidate();
        let outcome = self.engine.dispatch(Event::Db(event), &ctx)?;
        if !outcome.trace.entries.is_empty() {
            self.explain.push(outcome.trace.clone());
        }
        obs::counter_add("dispatcher.events", 1);
        if obs::enabled() {
            obs::counter_add_labeled(
                "dispatcher.events_by_kind",
                &[("event_kind", &event_kind.to_string())],
                1,
            );
        }
        Ok(outcome)
    }

    /// Feed a batch of database events through the active engine for
    /// one session — the batched form of [`Dispatcher::dispatch_db`]
    /// that the session server's shard workers use. The session context
    /// is resolved and the reader pin revalidated once for the whole
    /// batch, and the engine's batch lane amortizes table-walk state
    /// across runs of identical events (the server pre-sorts by event
    /// discriminant, so runs are long). Returns one result per event,
    /// in input order; the outer `Err` is session-level (unknown
    /// session).
    pub fn dispatch_db_batch(
        &mut self,
        sid: SessionId,
        events: Vec<geodb::query::DbEvent>,
    ) -> Result<Vec<Result<active::Outcome<Customization>>>> {
        let _span = obs::span("dispatcher.dispatch_db_batch");
        let ctx = self.context_of(sid)?;
        // One atomic epoch load for the whole batch: every event runs
        // against the same pinned data version, like one interaction.
        self.revalidate();
        let kinds: Vec<_> = events.iter().map(|e| e.kind()).collect();
        let outcomes = self
            .engine
            .dispatch_batch(events.into_iter().map(Event::Db), &ctx);
        obs::counter_add("dispatcher.events", outcomes.len() as u64);
        let mut results = Vec::with_capacity(outcomes.len());
        for (outcome, kind) in outcomes.into_iter().zip(kinds) {
            if obs::enabled() {
                obs::counter_add_labeled(
                    "dispatcher.events_by_kind",
                    &[("event_kind", &kind.to_string())],
                    1,
                );
            }
            results.push(match outcome {
                Ok(o) => {
                    if !o.trace.entries.is_empty() {
                        self.explain.push(o.trace.clone());
                    }
                    Ok(o)
                }
                Err(e) => Err(e.into()),
            });
        }
        Ok(results)
    }

    /// Open the Schema window of a schema (the user "activates the
    /// generic interface, giving a db schema name as a parameter").
    /// Returns every window opened — more than one when a `Null` schema
    /// customization auto-opens class windows.
    pub fn open_schema(&mut self, sid: SessionId, schema: &str) -> Result<Vec<WindowId>> {
        let ctx = self.context_of(sid)?;
        let snap = self.snapshot();
        let schema_def = snap.get_schema(schema)?;
        let cust = self.dispatch_events(
            &ctx,
            vec![DbEvent::GetSchema {
                schema: schema.to_string(),
            }],
        )?;
        let built = self.build_degradable("schema_window", cust.as_ref(), |d, c| {
            d.builder.schema_window(&schema_def, snap.catalog(), c)
        })?;
        let auto_open = built.auto_open.clone();
        let id = self
            .registry
            .insert(built, None, sid.0, schema.to_string(), None, None);
        self.sessions
            .get_mut(&sid)
            .expect("checked by context_of")
            .track(id);
        let mut opened = vec![id];
        for class in auto_open {
            opened.push(self.open_class(sid, schema, &class, Some(id))?);
        }
        Ok(opened)
    }

    /// Open a Class-set window.
    pub fn open_class(
        &mut self,
        sid: SessionId,
        schema: &str,
        class: &str,
        parent: Option<WindowId>,
    ) -> Result<WindowId> {
        let ctx = self.context_of(sid)?;
        let instances = self.snapshot().get_class(schema, class, false)?;
        let cust = self.dispatch_events(
            &ctx,
            vec![DbEvent::GetClass {
                schema: schema.to_string(),
                class: class.to_string(),
            }],
        )?;
        let built = self.build_degradable("class_window", cust.as_ref(), |d, c| {
            d.builder.class_window(schema, class, &instances, c)
        })?;
        let id = self.registry.insert(
            built,
            parent,
            sid.0,
            schema.to_string(),
            Some(class.to_string()),
            None,
        );
        self.sessions
            .get_mut(&sid)
            .expect("checked by context_of")
            .track(id);
        Ok(id)
    }

    /// Open an Instance window for one object.
    pub fn open_instance(
        &mut self,
        sid: SessionId,
        oid: Oid,
        parent: Option<WindowId>,
    ) -> Result<WindowId> {
        let ctx = self.context_of(sid)?;
        let snap = self.snapshot();
        let inst = snap.get_value(oid)?;
        let schema = snap
            .locate(oid)
            .map(|(s, _)| s.to_string())
            .unwrap_or_default();
        let cust = self.dispatch_events(
            &ctx,
            vec![DbEvent::GetValue {
                schema: schema.clone(),
                class: inst.class.clone(),
                oid,
            }],
        )?;
        let built = self.build_degradable("instance_window", cust.as_ref(), |d, c| {
            d.builder.instance_window(&snap, &inst, c)
        })?;
        let id = self.registry.insert(
            built,
            parent,
            sid.0,
            schema,
            Some(inst.class.clone()),
            Some(oid),
        );
        self.sessions
            .get_mut(&sid)
            .expect("checked by context_of")
            .track(id);
        Ok(id)
    }

    /// Analysis mode: open a Class-set window restricted to a predicate.
    pub fn analysis_query(
        &mut self,
        sid: SessionId,
        schema: &str,
        class: &str,
        predicate: &Predicate,
    ) -> Result<WindowId> {
        let session = self
            .sessions
            .get(&sid)
            .ok_or(UiError::UnknownSession(sid))?;
        if !session.mode.allows_predicates() {
            return Err(UiError::ModeViolation(format!(
                "{} mode cannot run predicate queries",
                session.mode
            )));
        }
        let ctx = self.context_of(sid)?;
        let instances = self.snapshot().select(schema, class, predicate)?;
        // Selection is a Get_Class at the event level: rules customize the
        // resulting Class-set window identically.
        let cust = self.dispatch_events(
            &ctx,
            vec![DbEvent::GetClass {
                schema: schema.to_string(),
                class: class.to_string(),
            }],
        )?;
        let mut built = self.build_degradable("class_window", cust.as_ref(), |d, c| {
            d.builder.class_window(schema, class, &instances, c)
        })?;
        built.title = format!("{} [filtered: {} hits]", built.title, instances.len());
        let id = self.registry.insert(
            built,
            None,
            sid.0,
            schema.to_string(),
            Some(class.to_string()),
            None,
        );
        self.sessions
            .get_mut(&sid)
            .expect("checked above")
            .track(id);
        Ok(id)
    }

    /// Simulation mode: apply hypothetical updates to a sandbox copy of
    /// the database and return a Class-set window of the outcome. The
    /// real database is untouched.
    pub fn simulate(
        &mut self,
        sid: SessionId,
        schema: &str,
        class: &str,
        updates: Vec<(Oid, Vec<(String, Value)>)>,
    ) -> Result<WindowId> {
        let session = self
            .sessions
            .get(&sid)
            .ok_or(UiError::UnknownSession(sid))?;
        if !session.mode.allows_updates() {
            return Err(UiError::ModeViolation(format!(
                "{} mode cannot issue updates",
                session.mode
            )));
        }
        let ctx = self.context_of(sid)?;
        // Sandbox: serialize the pinned epoch and reload it as a private
        // mutable database — a deep copy through stable state that never
        // touches the shared store.
        let json = geodb::snapshot::save_snapshot(&self.snapshot())?;
        let mut sandbox = geodb::snapshot::load(&json)?;
        for (oid, changes) in updates {
            sandbox.update(oid, changes)?;
        }
        let instances = sandbox.get_class(schema, class, false)?;
        let cust = self.dispatch_events(
            &ctx,
            vec![DbEvent::GetClass {
                schema: schema.to_string(),
                class: class.to_string(),
            }],
        )?;
        let mut built = self.build_degradable("class_window", cust.as_ref(), |d, c| {
            d.builder.class_window(schema, class, &instances, c)
        })?;
        built.title = format!("{} [simulation]", built.title);
        let id = self.registry.insert(
            built,
            None,
            sid.0,
            schema.to_string(),
            Some(class.to_string()),
            None,
        );
        self.sessions
            .get_mut(&sid)
            .expect("checked above")
            .track(id);
        Ok(id)
    }

    /// Deliver a user gesture to a widget of a window; returns any windows
    /// opened in response.
    pub fn handle_gesture(
        &mut self,
        sid: SessionId,
        window: WindowId,
        path: &str,
        gesture: &str,
        detail: Option<String>,
    ) -> Result<Vec<WindowId>> {
        let _span = obs::span("dispatcher.gesture");
        obs::counter_add("dispatcher.gestures", 1);
        let managed = self
            .registry
            .get(window)
            .ok_or(UiError::UnknownWindow(window))?;
        let widget = managed
            .built
            .tree
            .find(path)
            .map_err(|_| UiError::UnknownWindow(window))?;
        let mut event = UiEvent::new(widget, path, gesture);
        if let Some(d) = detail {
            event = event.with_detail(d);
        }
        let schema = managed.schema.clone();
        let signals = self.callbacks.fire(&managed.built.tree, &event);

        let mut opened = Vec::new();
        for signal in signals {
            match signal.name.as_str() {
                "open_schema" => {
                    opened.extend(self.open_schema(sid, &schema)?);
                }
                "open_class" => {
                    let class = signal.get("class").unwrap_or_default().to_string();
                    if !class.is_empty() {
                        opened.push(self.open_class(sid, &schema, &class, Some(window))?);
                    }
                }
                "pick_instance" => {
                    if let Some(oid) = parse_oid(signal.get("detail").unwrap_or_default()) {
                        opened.push(self.open_instance(sid, Oid(oid), Some(window))?);
                    }
                }
                "close_window" => {
                    self.close_window(sid, window)?;
                }
                "status" if signal.get("action") == Some("zoom") => {
                    self.zoom_window(window, 0.5)?;
                }
                _ => {} // other status signals
            }
        }
        Ok(opened)
    }

    /// Zoom every map scene of a window by `factor` (< 1 zooms in),
    /// keeping the viewport center.
    pub fn zoom_window(&mut self, window: WindowId, factor: f64) -> Result<()> {
        let managed = self
            .registry
            .get_mut(window)
            .ok_or(UiError::UnknownWindow(window))?;
        for scene in managed.built.scenes.values_mut() {
            let v = scene.effective_viewport();
            let c = v.center();
            let hw = v.width() * factor / 2.0;
            let hh = v.height() * factor / 2.0;
            scene.viewport = Some(geodb::geometry::Rect::new(
                c.x - hw,
                c.y - hh,
                c.x + hw,
                c.y + hh,
            ));
        }
        Ok(())
    }

    /// Apply an update through the interface and refresh every open
    /// window that displays the object or its class.
    ///
    /// This is the *view refresh* facility of Diaz et al. [3], which the
    /// paper contrasts with its own focus: here the two compose — the
    /// refreshed window is rebuilt through the active mechanism, so it
    /// keeps the session's customization. Update events themselves still
    /// trigger only integrity/other rules (the paper does not customize
    /// update requests); exploratory sessions cannot call this.
    pub fn apply_update(
        &mut self,
        sid: SessionId,
        oid: Oid,
        changes: Vec<(String, Value)>,
    ) -> Result<Vec<WindowId>> {
        let session = self
            .sessions
            .get(&sid)
            .ok_or(UiError::UnknownSession(sid))?;
        if session.mode == InteractionMode::Exploratory {
            return Err(UiError::ModeViolation(
                "exploratory mode cannot issue updates".into(),
            ));
        }
        let ctx = self.context_of(sid)?;
        let committed = self.store().write(|db| {
            let located = db
                .locate(oid)
                .map(|(s, c)| (s.to_string(), c.to_string()))
                .ok_or(GeoDbError::UnknownOid(oid.0))?;
            db.update(oid, changes)?;
            Ok(located)
        })?;
        let (schema, class) = committed.value;
        // The Update event flows through the rules (integrity group).
        let events = committed.events;
        self.dispatch_events(&ctx, events)?;
        self.refresh_windows(&schema, &class, Some(oid))
    }

    /// Rebuild every open window showing `schema.class` (and, for
    /// Instance windows, the given object). Each window is rebuilt under
    /// *its own session's* context, so per-user customizations survive
    /// the refresh. Returns the refreshed window ids.
    pub fn refresh_windows(
        &mut self,
        schema: &str,
        class: &str,
        oid: Option<Oid>,
    ) -> Result<Vec<WindowId>> {
        let targets: Vec<(WindowId, u32, WindowKind, Option<Oid>)> = self
            .registry
            .iter()
            .into_iter()
            .filter(|w| {
                w.schema == schema
                    && w.class.as_deref() == Some(class)
                    && match w.built.kind {
                        WindowKind::ClassSet => true,
                        WindowKind::Instance => oid.is_none() || w.oid == oid,
                        WindowKind::Schema => false,
                    }
            })
            .map(|w| (w.id, w.session, w.built.kind, w.oid))
            .collect();

        let snap = self.snapshot();
        let mut refreshed = Vec::with_capacity(targets.len());
        for (id, session, kind, win_oid) in targets {
            let ctx = self
                .sessions
                .get(&SessionId(session))
                .map(|s| s.context.clone())
                .unwrap_or_default();
            let built = match kind {
                WindowKind::ClassSet => {
                    let instances = snap.get_class(schema, class, false)?;
                    let cust = self.dispatch_events(
                        &ctx,
                        vec![DbEvent::GetClass {
                            schema: schema.to_string(),
                            class: class.to_string(),
                        }],
                    )?;
                    self.build_degradable("class_window", cust.as_ref(), |d, c| {
                        d.builder.class_window(schema, class, &instances, c)
                    })?
                }
                WindowKind::Instance => {
                    let target = win_oid.expect("instance windows record their oid");
                    let inst = snap.get_value(target)?;
                    let cust = self.dispatch_events(
                        &ctx,
                        vec![DbEvent::GetValue {
                            schema: schema.to_string(),
                            class: class.to_string(),
                            oid: target,
                        }],
                    )?;
                    self.build_degradable("instance_window", cust.as_ref(), |d, c| {
                        d.builder.instance_window(&snap, &inst, c)
                    })?
                }
                WindowKind::Schema => continue,
            };
            if let Some(managed) = self.registry.get_mut(id) {
                managed.built = built;
                refreshed.push(id);
            }
        }
        Ok(refreshed)
    }

    /// Close a window and its children.
    pub fn close_window(&mut self, sid: SessionId, window: WindowId) -> Result<Vec<WindowId>> {
        let closed = self.registry.close(window);
        if let Some(s) = self.sessions.get_mut(&sid) {
            s.untrack(&closed);
        }
        Ok(closed)
    }

    /// ASCII rendering of a window.
    pub fn render(&self, window: WindowId) -> Result<String> {
        let _span = obs::span("dispatcher.render");
        Ok(self
            .registry
            .get(window)
            .ok_or(UiError::UnknownWindow(window))?
            .built
            .to_ascii())
    }

    // -- protocol endpoint ----------------------------------------------------

    fn descriptor(&self, id: WindowId) -> Option<WindowDescriptor> {
        self.registry.get(id).map(|m| WindowDescriptor {
            id: id.0,
            kind: m.built.kind.to_string(),
            title: m.built.title.clone(),
            visible: m.built.visible,
            ascii: m.built.to_ascii(),
            oid: m.oid,
        })
    }

    /// Serve one weak-integration protocol request for a session.
    ///
    /// This is the outermost containment boundary of the UI: a panic
    /// escaping any lower layer is caught here and reported as a normal
    /// [`Response::Error`], so one faulty interaction can never take the
    /// whole interface down.
    pub fn handle_request(&mut self, sid: SessionId, request: Request) -> Response {
        // A protocol request is a request boundary: when trace sampling
        // is armed and no outer trace exists (the embedded single-user
        // path), start one here.
        let _span = obs::trace_root("dispatcher.request");
        obs::counter_add("dispatcher.requests", 1);
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.handle_request_inner(sid, request)
        })) {
            Ok(response) => response,
            Err(payload) => {
                let cause = panic_message(&*payload);
                obs::counter_add("ui.request_panics", 1);
                self.explain.push_degraded("request", &cause);
                Response::Error { message: cause }
            }
        }
    }

    fn handle_request_inner(&mut self, sid: SessionId, request: Request) -> Response {
        let result: Result<Response> = (|| match request {
            Request::OpenSchema { schema } => {
                let ids = self.open_schema(sid, &schema)?;
                Ok(Response::Windows(
                    ids.iter().filter_map(|&i| self.descriptor(i)).collect(),
                ))
            }
            Request::OpenClass { schema, class } => {
                let id = self.open_class(sid, &schema, &class, None)?;
                Ok(Response::Windows(self.descriptor(id).into_iter().collect()))
            }
            Request::OpenInstance { oid } => {
                let id = self.open_instance(sid, Oid(oid), None)?;
                Ok(Response::Windows(self.descriptor(id).into_iter().collect()))
            }
            Request::UiGesture {
                window,
                path,
                gesture,
                detail,
            } => {
                let ids = self.handle_gesture(sid, WindowId(window), &path, &gesture, detail)?;
                Ok(Response::Windows(
                    ids.iter().filter_map(|&i| self.descriptor(i)).collect(),
                ))
            }
            Request::CloseWindow { window } => {
                let closed = self.close_window(sid, WindowId(window))?;
                Ok(Response::Closed(closed.iter().map(|w| w.0).collect()))
            }
            Request::Analyze {
                schema,
                class,
                predicate,
            } => {
                let id = self.analysis_query(sid, &schema, &class, &predicate)?;
                Ok(Response::Windows(self.descriptor(id).into_iter().collect()))
            }
            Request::Explain => Ok(Response::Explanation(self.explain.rendered().to_vec())),
        })();
        result.unwrap_or_else(|e| Response::Error {
            message: e.to_string(),
        })
    }

    /// The window kind counts currently open — used by the C4 census.
    pub fn census(&self) -> HashMap<WindowKind, usize> {
        let mut out = HashMap::new();
        for w in self.registry.iter() {
            *out.entry(w.built.kind).or_insert(0) += 1;
        }
        out
    }
}

/// Parse an OID out of gesture detail text such as `"7"`, `"#7"` or
/// `"#7 name=…"`.
fn parse_oid(detail: &str) -> Option<u64> {
    let trimmed = detail.trim().trim_start_matches('#');
    let digits: String = trimmed.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Convenience: a dispatcher over a generated phone-net database with the
/// paper's widget library, ready for the Fig. 4/7 walkthrough.
pub fn paper_dispatcher(cfg: &geodb::gen::TelecomConfig) -> Result<Dispatcher> {
    let (db, _) = geodb::gen::phone_net_db(cfg)?;
    Ok(Dispatcher::new(db, InterfaceBuilder::with_paper_library()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use custlang::FIG6_PROGRAM;
    use geodb::gen::TelecomConfig;

    fn juliano() -> SessionContext {
        SessionContext::new("juliano", "planner", "pole_manager")
    }

    fn dispatcher() -> Dispatcher {
        paper_dispatcher(&TelecomConfig::small()).unwrap()
    }

    #[test]
    fn default_browse_session_walks_three_windows() {
        let mut d = dispatcher();
        let sid = d.open_session(SessionContext::new("guest", "visitor", "browse"));

        // 1. Schema window.
        let opened = d.open_schema(sid, "phone_net").unwrap();
        assert_eq!(opened.len(), 1);
        let schema_win = opened[0];
        assert!(d.render(schema_win).unwrap().contains("Schema: phone_net"));

        // 2. Select "Pole" in the class list.
        let opened = d
            .handle_gesture(
                sid,
                schema_win,
                "schema_window/body/classes",
                "select",
                Some("Pole".into()),
            )
            .unwrap();
        assert_eq!(opened.len(), 1);
        let class_win = opened[0];
        let art = d.render(class_win).unwrap();
        assert!(art.contains("Class: Pole"));
        assert!(art.contains("[ Zoom ]"));

        // 3. Pick an instance in the display area.
        let poles = d.snapshot().get_class("phone_net", "Pole", false).unwrap();
        let oid = poles[0].oid;
        let opened = d
            .handle_gesture(
                sid,
                class_win,
                "class_window/body/presentation/map",
                "click",
                Some(format!("#{}", oid.0)),
            )
            .unwrap();
        assert_eq!(opened.len(), 1);
        let inst_win = opened[0];
        let art = d.render(inst_win).unwrap();
        assert!(art.contains("pole_type"));

        // Window hierarchy: schema -> class -> instance.
        assert_eq!(d.window(class_win).unwrap().parent, Some(schema_win));
        assert_eq!(d.window(inst_win).unwrap().parent, Some(class_win));
        assert_eq!(d.session(sid).unwrap().windows.len(), 3);
    }

    #[test]
    fn fig6_program_customizes_juliano_only() {
        let mut d = dispatcher();
        d.install_program(FIG6_PROGRAM, "fig6").unwrap();

        // Juliano: Null schema window + auto-opened customized Pole window.
        let sid = d.open_session(juliano());
        let opened = d.open_schema(sid, "phone_net").unwrap();
        assert_eq!(opened.len(), 2);
        let schema_win = d.window(opened[0]).unwrap();
        assert!(!schema_win.built.visible);
        let class_art = d.render(opened[1]).unwrap();
        assert!(class_art.contains("O="), "poleWidget slider:\n{class_art}");
        assert!(!class_art.contains("[ Zoom ]"));

        // Another user still gets the default interface.
        let other = d.open_session(SessionContext::new("claudia", "admin", "inventory"));
        let opened = d.open_schema(other, "phone_net").unwrap();
        assert_eq!(opened.len(), 1);
        assert!(d.window(opened[0]).unwrap().built.visible);
    }

    #[test]
    fn failed_customized_build_degrades_to_default_window() {
        let mut d = dispatcher();
        // A payload referencing a widget the library lacks, installed
        // straight into the engine (bypassing custlang analysis, the way
        // a stale stored rule could after a library change).
        d.engine()
            .add_rule(active::Rule::customization(
                "bad_widget",
                active::EventPattern::db(geodb::query::DbEventKind::GetClass),
                active::ContextPattern::any(),
                Customization::ClassWindow {
                    schema: "phone_net".into(),
                    class: "Pole".into(),
                    control: Some("no_such_widget".into()),
                    presentation: None,
                },
            ))
            .unwrap();
        let sid = d.open_session(juliano());
        let win = d.open_class(sid, "phone_net", "Pole", None).unwrap();
        // The window still opened — with the generic default controls.
        let art = d.render(win).unwrap();
        assert!(art.contains("[ Zoom ]"), "default control area:\n{art}");
        let degradations: Vec<_> = d.explanation_log().degradations().collect();
        assert_eq!(degradations.len(), 1);
        assert!(degradations[0].rendered.contains("no_such_widget"));
    }

    #[test]
    fn ui_error_chain_exposes_sources() {
        use std::error::Error as _;
        let e = UiError::Build(BuildError::Db(GeoDbError::UnknownSchema("ghost".into())));
        let build = e.source().expect("UiError -> BuildError");
        assert!(build.to_string().contains("ghost"));
        let db = build.source().expect("BuildError -> GeoDbError");
        assert!(db.to_string().contains("ghost"));
        assert!(db.source().is_none());
        assert!(UiError::UnknownWindow(WindowId(3)).source().is_none());
    }

    #[test]
    fn install_program_rejects_bad_programs() {
        let mut d = dispatcher();
        assert!(matches!(
            d.install_program("for user u schema nope display as", "p"),
            Err(UiError::Parse(_))
        ));
        assert!(matches!(
            d.install_program(
                "for user u schema ghost display as default class C display",
                "p"
            ),
            Err(UiError::Analysis(_))
        ));
    }

    #[test]
    fn reinstalling_a_program_replaces_it() {
        let mut d = dispatcher();
        let n1 = d.install_program(FIG6_PROGRAM, "fig6").unwrap();
        let n2 = d.install_program(FIG6_PROGRAM, "fig6").unwrap();
        assert_eq!(n1, n2);
        assert_eq!(d.engine().len(), n2);
    }

    #[test]
    fn analysis_mode_gates_predicate_queries() {
        let mut d = dispatcher();
        let sid = d.open_session(juliano());
        let tall = Predicate::cmp(
            "pole_composition.pole_height",
            geodb::query::CmpOp::Gt,
            10.0,
        );
        // Exploratory mode refuses.
        assert!(matches!(
            d.analysis_query(sid, "phone_net", "Pole", &tall),
            Err(UiError::ModeViolation(_))
        ));
        // Analysis mode runs the query.
        d.set_mode(sid, InteractionMode::Analysis).unwrap();
        let win = d.analysis_query(sid, "phone_net", "Pole", &tall).unwrap();
        let title = &d.window(win).unwrap().built.title;
        assert!(title.contains("filtered"), "{title}");
    }

    #[test]
    fn simulation_mode_sandboxes_updates() {
        let mut d = dispatcher();
        let sid = d.open_session(juliano());
        d.set_mode(sid, InteractionMode::Simulation).unwrap();
        let poles = d.snapshot().get_class("phone_net", "Pole", false).unwrap();
        let oid = poles[0].oid;
        let win = d
            .simulate(
                sid,
                "phone_net",
                "Pole",
                vec![(oid, vec![("pole_type".into(), Value::Int(99))])],
            )
            .unwrap();
        assert!(d.window(win).unwrap().built.title.contains("simulation"));
        // The real database is untouched.
        let pole = d.snapshot().peek(oid).unwrap();
        assert_ne!(pole.get("pole_type"), &Value::Int(99));
    }

    #[test]
    fn explanation_traces_accumulate() {
        let mut d = dispatcher();
        d.install_program(FIG6_PROGRAM, "fig6").unwrap();
        let sid = d.open_session(juliano());
        d.open_schema(sid, "phone_net").unwrap();
        let lines = d.explanation().join("\n");
        assert!(lines.contains("Get_Schema(phone_net)"));
        assert!(lines.contains("fig6/0/juliano:*:pole_manager/schema"));
    }

    #[test]
    fn protocol_round_trip_drives_the_dispatcher() {
        let mut d = dispatcher();
        let sid = d.open_session(juliano());
        let resp = d.handle_request(
            sid,
            Request::OpenSchema {
                schema: "phone_net".into(),
            },
        );
        let Response::Windows(wins) = resp else {
            panic!("expected windows, got {resp:?}");
        };
        assert_eq!(wins.len(), 1);
        assert!(wins[0].ascii.contains("Schema: phone_net"));

        let resp = d.handle_request(sid, Request::CloseWindow { window: wins[0].id });
        assert!(matches!(resp, Response::Closed(ids) if ids.len() == 1));

        let resp = d.handle_request(
            sid,
            Request::OpenSchema {
                schema: "no_such".into(),
            },
        );
        assert!(matches!(resp, Response::Error { .. }));
    }

    #[test]
    fn close_cascades_through_hierarchy() {
        let mut d = dispatcher();
        let sid = d.open_session(juliano());
        let schema_win = d.open_schema(sid, "phone_net").unwrap()[0];
        let class_win = d
            .open_class(sid, "phone_net", "Pole", Some(schema_win))
            .unwrap();
        let closed = d.close_window(sid, schema_win).unwrap();
        assert!(closed.contains(&schema_win));
        assert!(closed.contains(&class_win));
        assert!(d.session(sid).unwrap().windows.is_empty());
    }

    #[test]
    fn census_counts_window_kinds() {
        let mut d = dispatcher();
        let sid = d.open_session(juliano());
        d.open_schema(sid, "phone_net").unwrap();
        d.open_class(sid, "phone_net", "Pole", None).unwrap();
        d.open_class(sid, "phone_net", "Duct", None).unwrap();
        let census = d.census();
        assert_eq!(census[&WindowKind::Schema], 1);
        assert_eq!(census[&WindowKind::ClassSet], 2);
    }

    #[test]
    fn parse_oid_variants() {
        assert_eq!(parse_oid("7"), Some(7));
        assert_eq!(parse_oid("#7"), Some(7));
        assert_eq!(parse_oid(" #12 supplier=Acme"), Some(12));
        assert_eq!(parse_oid("Pole"), None);
        assert_eq!(parse_oid(""), None);
    }
}

#[cfg(test)]
mod refresh_tests {
    use super::*;
    use custlang::FIG6_PROGRAM;
    use geodb::gen::TelecomConfig;
    use geodb::geometry::{Geometry, Point};

    fn dispatcher() -> Dispatcher {
        paper_dispatcher(&TelecomConfig::small()).unwrap()
    }

    #[test]
    fn exploratory_sessions_cannot_update() {
        let mut d = dispatcher();
        let sid = d.open_session(SessionContext::new("m", "op", "maint"));
        let poles = d.snapshot().get_class("phone_net", "Pole", false).unwrap();
        let err = d.apply_update(sid, poles[0].oid, vec![("pole_type".into(), Value::Int(9))]);
        assert!(matches!(err, Err(UiError::ModeViolation(_))));
    }

    #[test]
    fn update_refreshes_open_class_and_instance_windows() {
        let mut d = dispatcher();
        let maint = d.open_session(SessionContext::new("m", "op", "maint"));
        d.set_mode(maint, InteractionMode::Analysis).unwrap();
        let viewer = d.open_session(SessionContext::new("v", "op", "browse"));

        let class_win = d.open_class(viewer, "phone_net", "Pole", None).unwrap();
        let poles = d.snapshot().get_class("phone_net", "Pole", false).unwrap();
        let oid = poles[0].oid;
        let inst_win = d.open_instance(viewer, oid, None).unwrap();
        let before_class = d.render(class_win).unwrap();
        let before_inst = d.render(inst_win).unwrap();

        // Move the pole far away and change its type.
        let refreshed = d
            .apply_update(
                maint,
                oid,
                vec![
                    ("pole_type".into(), Value::Int(99)),
                    (
                        "pole_location".into(),
                        Geometry::Point(Point::new(9999.0, 9999.0)).into(),
                    ),
                ],
            )
            .unwrap();
        assert!(refreshed.contains(&class_win));
        assert!(refreshed.contains(&inst_win));

        let after_class = d.render(class_win).unwrap();
        let after_inst = d.render(inst_win).unwrap();
        assert_ne!(before_class, after_class, "map scene must change");
        assert_ne!(before_inst, after_inst);
        assert!(after_inst.contains("pole_type: 99"));
    }

    #[test]
    fn refresh_preserves_per_session_customization() {
        let mut d = dispatcher();
        d.install_program(FIG6_PROGRAM, "fig6").unwrap();
        let juliano = d.open_session(SessionContext::new("juliano", "planner", "pole_manager"));
        let maint = d.open_session(SessionContext::new("m", "op", "maint"));
        d.set_mode(maint, InteractionMode::Analysis).unwrap();

        // Juliano's customized window and a generic window stay distinct
        // through a refresh triggered by a third party.
        let jwin = d.open_class(juliano, "phone_net", "Pole", None).unwrap();
        let gwin = d.open_class(maint, "phone_net", "Pole", None).unwrap();
        let poles = d.snapshot().get_class("phone_net", "Pole", false).unwrap();
        d.apply_update(
            maint,
            poles[0].oid,
            vec![("pole_type".into(), Value::Int(7))],
        )
        .unwrap();

        assert!(d.render(jwin).unwrap().contains("O="), "slider kept");
        assert!(d.render(gwin).unwrap().contains("[ Zoom ]"), "generic kept");
    }

    #[test]
    fn update_events_reach_integrity_rules() {
        use std::sync::Mutex;
        let mut d = dispatcher();
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = log.clone();
        d.engine()
            .add_rule(active::Rule::integrity(
                "audit_updates",
                active::EventPattern::db(geodb::query::DbEventKind::Update),
                Arc::new(move |e, _| {
                    log2.lock().unwrap().push(e.describe());
                    vec![]
                }),
            ))
            .unwrap();
        let sid = d.open_session(SessionContext::new("m", "op", "maint"));
        d.set_mode(sid, InteractionMode::Analysis).unwrap();
        let poles = d.snapshot().get_class("phone_net", "Pole", false).unwrap();
        d.apply_update(sid, poles[0].oid, vec![("pole_type".into(), Value::Int(3))])
            .unwrap();
        assert_eq!(log.lock().unwrap().len(), 1);
        assert!(log.lock().unwrap()[0].contains("Update"));
    }
}

#[cfg(test)]
mod zoom_tests {
    use super::*;
    use geodb::gen::TelecomConfig;

    #[test]
    fn zoom_button_shrinks_the_viewport() {
        let mut d = paper_dispatcher(&TelecomConfig::small()).unwrap();
        let sid = d.open_session(SessionContext::new("g", "v", "browse"));
        let win = d.open_class(sid, "phone_net", "Pole", None).unwrap();
        let before = d.render(win).unwrap();

        // Click the generic Zoom button.
        d.handle_gesture(sid, win, "class_window/body/control/zoom", "click", None)
            .unwrap();
        let after = d.render(win).unwrap();
        assert_ne!(before, after, "zoom must change the rendered map");

        // The viewport halves each click.
        let scene = d.window(win).unwrap().built.scenes.values().next().unwrap();
        let v1 = scene.effective_viewport();
        d.handle_gesture(sid, win, "class_window/body/control/zoom", "click", None)
            .unwrap();
        let scene = d.window(win).unwrap().built.scenes.values().next().unwrap();
        let v2 = scene.effective_viewport();
        assert!((v2.width() - v1.width() / 2.0).abs() < 1e-9);
        // Centers are preserved.
        assert!((v2.center().x - v1.center().x).abs() < 1e-9);
    }

    #[test]
    fn zoom_on_unknown_window_errors() {
        let mut d = paper_dispatcher(&TelecomConfig::small()).unwrap();
        assert!(matches!(
            d.zoom_window(WindowId(42), 0.5),
            Err(UiError::UnknownWindow(_))
        ));
    }
}

#[cfg(test)]
mod stored_program_tests {
    use super::*;
    use custlang::FIG6_PROGRAM;
    use geodb::gen::TelecomConfig;

    #[test]
    fn stored_programs_survive_a_snapshot_reboot() {
        // Session 1: store the program in the database.
        let mut d = paper_dispatcher(&TelecomConfig::small()).unwrap();
        let n = d.store_program(FIG6_PROGRAM, "fig6").unwrap();
        assert_eq!(n, 3);
        let snapshot = geodb::snapshot::save_snapshot(&d.snapshot()).unwrap();

        // Session 2: fresh dispatcher over the restored database.
        let mut db = geodb::snapshot::load(&snapshot).unwrap();
        geodb::gen::register_phone_net_methods(&mut db).unwrap();
        let mut d2 = Dispatcher::new(db, builder::InterfaceBuilder::with_paper_library());
        assert_eq!(d2.engine().len(), 0);
        let (programs, rules, skipped) = d2.load_stored_programs().unwrap();
        assert_eq!((programs, rules), (1, 3));
        assert!(skipped.is_empty());

        // And the customization is live again.
        let sid = d2.open_session(SessionContext::new("juliano", "planner", "pole_manager"));
        let windows = d2.open_schema(sid, "phone_net").unwrap();
        assert_eq!(windows.len(), 2);
    }

    #[test]
    fn invalid_stored_programs_are_skipped_not_fatal() {
        let mut d = paper_dispatcher(&TelecomConfig::small()).unwrap();
        d.store_program(FIG6_PROGRAM, "good").unwrap();
        // Sneak an invalid program into storage directly (e.g. the schema
        // it references was dropped later).
        d.store()
            .write(|db| {
                custlang::save_program(
                    db,
                    "stale",
                    "for user u schema ghost display as default class C display",
                )
            })
            .unwrap();
        let (programs, _, skipped) = d.load_stored_programs().unwrap();
        assert_eq!(programs, 1);
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].0, "stale");
        // The reason the program was skipped is preserved...
        assert!(
            skipped[0].1.contains("ghost"),
            "error should name the missing schema: {}",
            skipped[0].1
        );
        // ...and the skip is visible in the explanation stream.
        let degradations: Vec<_> = d.explanation_log().degradations().collect();
        assert_eq!(degradations.len(), 1);
        assert!(degradations[0].rendered.contains("stale"));
    }

    #[test]
    fn store_program_validates_before_persisting() {
        let mut d = paper_dispatcher(&TelecomConfig::small()).unwrap();
        assert!(d.store_program("not a program", "bad").is_err());
        // Nothing was persisted.
        assert!(custlang::load_programs_snap(&d.snapshot())
            .unwrap()
            .is_empty());
    }
}

#[cfg(test)]
mod shared_store_tests {
    use super::*;
    use geodb::gen::TelecomConfig;

    /// Two dispatchers over one store: what one commits, the other reads.
    fn pair() -> (Dispatcher, Dispatcher) {
        let (db, _) = geodb::gen::phone_net_db(&TelecomConfig::small()).unwrap();
        let store = DbStore::new(db);
        let a = Dispatcher::with_store(
            store.clone(),
            InterfaceBuilder::with_paper_library(),
            Engine::new(),
        );
        let b =
            Dispatcher::with_store(store, InterfaceBuilder::with_paper_library(), Engine::new());
        (a, b)
    }

    #[test]
    fn writes_are_visible_across_dispatchers() {
        let (mut a, mut b) = pair();
        let writer = a.open_session(SessionContext::new("w", "op", "maint"));
        a.set_mode(writer, InteractionMode::Analysis).unwrap();
        let reader = b.open_session(SessionContext::new("r", "op", "browse"));

        let oid = b.snapshot().get_class("phone_net", "Pole", false).unwrap()[0].oid;
        let epoch_before = b.db_epoch();
        a.apply_update(writer, oid, vec![("pole_type".into(), Value::Int(42))])
            .unwrap();

        // B's next interaction pins the new epoch and serves the write.
        let win = b.open_instance(reader, oid, None).unwrap();
        assert!(b.render(win).unwrap().contains("pole_type: 42"));
        assert!(b.db_epoch() > epoch_before, "epoch advanced for b");
        assert_eq!(a.db_epoch(), b.db_epoch());
    }

    #[test]
    fn epoch_change_stamps_explanation_records() {
        let (mut a, mut b) = pair();
        a.install_program(custlang::FIG6_PROGRAM, "fig6").unwrap();
        let writer = b.open_session(SessionContext::new("w", "op", "maint"));
        b.set_mode(writer, InteractionMode::Analysis).unwrap();
        let juliano = a.open_session(SessionContext::new("juliano", "planner", "pole_manager"));

        a.open_schema(juliano, "phone_net").unwrap();
        let first_epoch = a.db_epoch();
        let oid = a.snapshot().get_class("phone_net", "Pole", false).unwrap()[0].oid;
        b.apply_update(writer, oid, vec![("pole_type".into(), Value::Int(7))])
            .unwrap();
        a.open_schema(juliano, "phone_net").unwrap();

        let epochs: Vec<Epoch> = a.explanation_log().records().map(|r| r.db_epoch).collect();
        assert!(epochs.contains(&first_epoch));
        assert!(
            epochs.iter().any(|&e| e > first_epoch),
            "later traces carry the newer epoch: {epochs:?}"
        );
    }

    #[test]
    fn replica_routed_reads_stamp_staleness_and_fall_back_within_bound() {
        let (db, _) = geodb::gen::phone_net_db(&TelecomConfig::small()).unwrap();
        let store = DbStore::new(db);
        let replica = geodb::repl::ReplicaStore::attach(&store, "r1").unwrap();
        let router = ReadRouter::with_replica(store.reader(), replica.reader(), Some(1));
        let mut d = Dispatcher::with_router(
            store.clone(),
            router,
            InterfaceBuilder::with_paper_library(),
            Engine::new(),
        );
        assert!(d.reads_replicated());
        let writer = d.open_session(SessionContext::new("w", "op", "maint"));
        d.set_mode(writer, InteractionMode::Analysis).unwrap();
        let oid = d.snapshot().get_class("phone_net", "Pole", false).unwrap()[0].oid;

        // Two primary commits the replica has not applied: lag 2 exceeds
        // the bound of 1, so the read falls back to the primary — it
        // must serve the fresh value, and the trace records staleness 0.
        d.apply_update(writer, oid, vec![("pole_type".into(), Value::Int(8))])
            .unwrap();
        d.apply_update(writer, oid, vec![("pole_type".into(), Value::Int(9))])
            .unwrap();
        let sid = d.open_session(SessionContext::new("r", "op", "browse"));
        let win = d.open_instance(sid, oid, None).unwrap();
        assert!(d.render(win).unwrap().contains("pole_type: 9"));
        assert_eq!(d.db_epoch(), store.epoch());

        // Catch the replica up, then lag by one: within the bound the
        // read is served from the follower and the lag is stamped into
        // the explanation records.
        replica.sync_to_latest().unwrap();
        d.apply_update(writer, oid, vec![("pole_type".into(), Value::Int(10))])
            .unwrap();
        d.open_instance(sid, oid, None).unwrap();
        assert_eq!(d.db_epoch(), replica.epoch());
        assert_eq!(d.db_epoch() + 1, store.epoch());
        let last = d.explanation_log().records().last().unwrap();
        assert_eq!(last.staleness, 1);
        assert_eq!(last.db_epoch, replica.epoch());
    }

    #[test]
    fn stored_programs_round_trip_through_the_shared_store() {
        let (mut a, mut b) = pair();
        a.store_program(custlang::FIG6_PROGRAM, "fig6").unwrap();
        // B loads the program straight out of the shared database.
        let (programs, rules, skipped) = b.load_stored_programs().unwrap();
        assert_eq!((programs, rules), (1, 3));
        assert!(skipped.is_empty());
    }

    #[test]
    fn commits_flush_the_winner_cache() {
        let (mut a, mut b) = pair();
        a.install_program(custlang::FIG6_PROGRAM, "fig6").unwrap();
        let juliano = a.open_session(SessionContext::new("juliano", "planner", "pole_manager"));
        // Prime the winner cache.
        a.open_schema(juliano, "phone_net").unwrap();
        a.open_schema(juliano, "phone_net").unwrap();
        let before = a.engine().cache_stats();

        let writer = b.open_session(SessionContext::new("w", "op", "maint"));
        b.set_mode(writer, InteractionMode::Analysis).unwrap();
        let oid = b.snapshot().get_class("phone_net", "Pole", false).unwrap()[0].oid;
        b.apply_update(writer, oid, vec![("pole_type".into(), Value::Int(5))])
            .unwrap();

        // A's next pin observes the commit and flushes its cache.
        a.snapshot();
        let after = a.engine().cache_stats();
        assert!(
            after.invalidations > before.invalidations,
            "winner cache invalidated on epoch change: {before:?} -> {after:?}"
        );
    }
}
