//! The explanation log: a bounded ring buffer of structured traces.
//!
//! The paper's explanation mode says "users want to know why and how the
//! system presented a specific answer to a query". The dispatcher keeps
//! the rule trace of every interaction here — as structured
//! [`active::Trace`] values, not pre-flattened text — so the answer can
//! be exported (JSON), filtered, or rendered. The buffer is bounded and
//! the capacity is configurable: long-lived sessions keep the most
//! recent traces instead of growing without limit.

use std::collections::VecDeque;

use active::Trace;
use geodb::Epoch;
use serde::{Deserialize, Serialize};

/// Default number of traces retained.
pub const DEFAULT_EXPLANATION_CAPACITY: usize = 128;

/// Event-string prefix of the synthetic trace entries recorded by
/// [`ExplanationLog::push_degraded`]. Degradations share the trace
/// stream (and its JSON export) instead of widening `TraceRecord`.
pub const DEGRADED_EVENT_PREFIX: &str = "degraded";

/// One recorded interaction: the structured cascade plus its rendered
/// explanation text and a monotonic sequence number (stable even after
/// older records are evicted).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Position in the dispatcher's lifetime stream of traces (0-based).
    pub seq: u64,
    /// The database epoch the interaction was served against (0 when the
    /// dispatcher predates versioned storage — e.g. records deserialized
    /// from an older export).
    #[serde(default)]
    pub db_epoch: Epoch,
    /// How many epochs behind the primary's frontier the pinned snapshot
    /// was when the interaction ran — non-zero only for reads routed to
    /// a replica (0 on a primary-served read or in older exports).
    #[serde(default)]
    pub staleness: u64,
    /// The obs request-trace id the interaction ran under (0 when no
    /// trace was being recorded, or for records from older exports).
    /// Cross-links explanation entries with `obs::find_trace` both
    /// ways: `:trace <id>` answers "what did the system do", this
    /// record answers "which rules decided it".
    #[serde(default)]
    pub trace_id: u64,
    /// The structured cascade, entry depths and shadowing intact.
    pub trace: Trace,
    /// Human-readable rendering, as served by `Dispatcher::explanation`.
    pub rendered: String,
}

/// Bounded ring of [`TraceRecord`]s. Keeps a parallel vector of rendered
/// lines so the legacy `&[String]` explanation view stays a contiguous
/// borrow.
#[derive(Debug)]
pub struct ExplanationLog {
    capacity: usize,
    next_seq: u64,
    /// Epoch stamped into records pushed from here on (see
    /// [`Self::note_db_epoch`]).
    db_epoch: Epoch,
    /// Replica lag stamped into records pushed from here on (see
    /// [`Self::note_staleness`]).
    staleness: u64,
    records: VecDeque<TraceRecord>,
    rendered: Vec<String>,
}

impl Default for ExplanationLog {
    fn default() -> Self {
        ExplanationLog::new(DEFAULT_EXPLANATION_CAPACITY)
    }
}

impl ExplanationLog {
    /// A log retaining at most `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> ExplanationLog {
        ExplanationLog {
            capacity: capacity.max(1),
            next_seq: 0,
            db_epoch: Epoch::ZERO,
            staleness: 0,
            records: VecDeque::new(),
            rendered: Vec::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resize the ring; shrinking evicts the oldest records.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.records.len() > self.capacity {
            self.records.pop_front();
            self.rendered.remove(0);
        }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Traces recorded over the log's lifetime, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// The dispatcher pinned a new database epoch: stamp it into every
    /// trace recorded from here on, so an exported explanation says not
    /// just *which rules* fired but *which version of the data* the
    /// interaction saw.
    pub fn note_db_epoch(&mut self, epoch: Epoch) {
        self.db_epoch = epoch;
    }

    /// The epoch currently stamped into new records.
    pub fn db_epoch(&self) -> Epoch {
        self.db_epoch
    }

    /// The read was served from a replica `lag` epochs behind the
    /// primary's frontier (0 = primary-fresh): stamp the lag into every
    /// trace recorded from here on, so an exported explanation says not
    /// just which version the interaction saw but how stale that version
    /// was allowed to be.
    pub fn note_staleness(&mut self, lag: u64) {
        self.staleness = lag;
    }

    /// The staleness currently stamped into new records.
    pub fn staleness(&self) -> u64 {
        self.staleness
    }

    /// Record a trace, evicting the oldest record when full.
    pub fn push(&mut self, trace: Trace) {
        let record = TraceRecord {
            seq: self.next_seq,
            db_epoch: self.db_epoch,
            staleness: self.staleness,
            trace_id: obs::current_trace_id(),
            rendered: trace.render(),
            trace,
        };
        self.next_seq += 1;
        self.rendered.push(record.rendered.clone());
        self.records.push_back(record);
        if self.records.len() > self.capacity {
            self.records.pop_front();
            self.rendered.remove(0);
        }
    }

    /// Record a graceful-degradation incident — a customized build that
    /// fell back to the default presentation, a stored program that was
    /// skipped at boot, a contained panic — as a synthetic single-entry
    /// trace, so degradations appear in the same explanation stream the
    /// user already consults to ask "why does my window look like this?".
    pub fn push_degraded(&mut self, stage: &str, detail: &str) {
        // A degradation retains the surrounding request trace even when
        // the sampler did not pick it.
        obs::trace_mark_fault();
        self.push(Trace {
            entries: vec![active::TraceEntry {
                depth: 0,
                event: format!("{DEGRADED_EVENT_PREFIX}({stage}): {detail}"),
                matched: Vec::new(),
                fired: Vec::new(),
                shadowed: Vec::new(),
            }],
        });
    }

    /// Retained degradation records (see [`Self::push_degraded`]),
    /// oldest first.
    pub fn degradations(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(|r| {
            r.trace.entries.first().is_some_and(|e| {
                e.event.starts_with(DEGRADED_EVENT_PREFIX)
                    && e.event[DEGRADED_EVENT_PREFIX.len()..].starts_with('(')
            })
        })
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// The most recent `n` records, oldest of them first.
    pub fn recent(&self, n: usize) -> Vec<&TraceRecord> {
        let skip = self.records.len().saturating_sub(n);
        self.records.iter().skip(skip).collect()
    }

    /// Rendered explanation lines, in lockstep with [`Self::records`].
    pub fn rendered(&self) -> &[String] {
        &self.rendered
    }

    /// JSON export of the retained records (oldest first).
    pub fn to_json(&self) -> String {
        let records: Vec<&TraceRecord> = self.records.iter().collect();
        serde_json::to_string_pretty(&records).expect("trace records serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use active::trace::TraceEntry;

    fn trace(event: &str) -> Trace {
        Trace {
            entries: vec![TraceEntry {
                depth: 0,
                event: event.to_string(),
                matched: vec!["r".into()],
                fired: vec!["r".into()],
                shadowed: vec!["s".into()],
            }],
        }
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_sequence_numbers() {
        let mut log = ExplanationLog::new(3);
        for i in 0..5 {
            log.push(trace(&format!("E{i}")));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_recorded(), 5);
        let seqs: Vec<u64> = log.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        // Rendered lines stay in lockstep with the records.
        assert_eq!(log.rendered().len(), 3);
        assert!(log.rendered()[0].contains("E2"));
        assert!(log.rendered()[2].contains("E4"));
    }

    #[test]
    fn recent_returns_the_tail() {
        let mut log = ExplanationLog::new(10);
        for i in 0..4 {
            log.push(trace(&format!("E{i}")));
        }
        let recent: Vec<u64> = log.recent(2).iter().map(|r| r.seq).collect();
        assert_eq!(recent, vec![2, 3]);
        assert_eq!(log.recent(99).len(), 4);
    }

    #[test]
    fn shrinking_capacity_trims_the_front() {
        let mut log = ExplanationLog::new(8);
        for i in 0..6 {
            log.push(trace(&format!("E{i}")));
        }
        log.set_capacity(2);
        let seqs: Vec<u64> = log.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
        assert_eq!(log.rendered().len(), 2);
    }

    #[test]
    fn db_epoch_stamps_records_from_the_note_onward() {
        let mut log = ExplanationLog::new(8);
        log.push(trace("E0"));
        log.note_db_epoch(Epoch(3));
        log.push(trace("E1"));
        log.note_staleness(2);
        log.push(trace("E2"));
        log.note_db_epoch(Epoch(4));
        log.note_staleness(0);
        log.push(trace("E3"));
        let epochs: Vec<Epoch> = log.records().map(|r| r.db_epoch).collect();
        assert_eq!(epochs, vec![Epoch(0), Epoch(3), Epoch(3), Epoch(4)]);
        let stale: Vec<u64> = log.records().map(|r| r.staleness).collect();
        assert_eq!(stale, vec![0, 0, 2, 0]);
        assert_eq!(log.db_epoch(), Epoch(4));
        // Old exports (no db_epoch / staleness / trace_id fields) still
        // deserialize.
        let legacy = r#"{"seq":9,"trace":{"entries":[]},"rendered":""}"#;
        let rec: TraceRecord = serde_json::from_str(legacy).unwrap();
        assert_eq!(rec.db_epoch, 0);
        assert_eq!(rec.staleness, 0);
        assert_eq!(rec.trace_id, 0);
    }

    #[test]
    fn json_export_preserves_structure() {
        let mut log = ExplanationLog::new(4);
        log.push(trace("Get_Schema(phone_net)"));
        let json = log.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v[0]["seq"].as_u64(), Some(0));
        assert_eq!(
            v[0]["trace"]["entries"][0]["event"].as_str(),
            Some("Get_Schema(phone_net)")
        );
        assert_eq!(
            v[0]["trace"]["entries"][0]["shadowed"][0].as_str(),
            Some("s")
        );
        // Round-trips back into structured records.
        let records: Vec<TraceRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].trace.entries[0].fired, vec!["r".to_string()]);
    }
}
