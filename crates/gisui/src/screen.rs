//! Screen composition: tile a session's open windows into one text
//! screen, the way Fig. 4 and Fig. 7 of the paper show the three
//! interaction windows side by side.

use crate::dispatcher::Dispatcher;
use crate::session::SessionId;

/// Join multi-line blocks horizontally, top-aligned, with a gutter.
pub fn beside(blocks: &[String]) -> String {
    let gutter = "  ";
    let split: Vec<Vec<&str>> = blocks
        .iter()
        .map(|b| b.lines().collect::<Vec<_>>())
        .collect();
    let widths: Vec<usize> = split
        .iter()
        .map(|lines| lines.iter().map(|l| l.chars().count()).max().unwrap_or(0))
        .collect();
    let height = split.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = String::new();
    for row in 0..height {
        let mut line = String::new();
        for (block, width) in split.iter().zip(&widths) {
            let cell = block.get(row).copied().unwrap_or("");
            line.push_str(cell);
            let pad = width.saturating_sub(cell.chars().count());
            line.push_str(&" ".repeat(pad));
            line.push_str(gutter);
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Render every *visible* window of a session, opening order, side by
/// side — "a typical browsing session iterates through (Schema, {Class,
/// {Instance}}) windows" and this is that session at a glance.
pub fn session_screen(dispatcher: &Dispatcher, sid: SessionId) -> String {
    let Some(session) = dispatcher.session(sid) else {
        return String::new();
    };
    let blocks: Vec<String> = session
        .windows
        .iter()
        .filter_map(|&w| dispatcher.window(w))
        .filter(|m| m.built.visible)
        .map(|m| m.built.to_ascii())
        .collect();
    beside(&blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::paper_dispatcher;
    use active::SessionContext;
    use geodb::gen::TelecomConfig;

    #[test]
    fn beside_joins_blocks_top_aligned() {
        let a = "aa\naa\naa".to_string();
        let b = "bbb".to_string();
        let s = beside(&[a, b]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "aa  bbb");
        assert_eq!(lines[1], "aa");
        assert_eq!(lines[2], "aa");
    }

    #[test]
    fn beside_of_nothing_is_empty() {
        assert_eq!(beside(&[]), "");
    }

    #[test]
    fn session_screen_shows_the_walkthrough() {
        let mut d = paper_dispatcher(&TelecomConfig::small()).unwrap();
        let sid = d.open_session(SessionContext::new("m", "op", "browse"));
        d.open_schema(sid, "phone_net").unwrap();
        d.open_class(sid, "phone_net", "Pole", None).unwrap();
        let screen = session_screen(&d, sid);
        // Both windows appear on one screen, schema first.
        let first_line = screen.lines().next().unwrap();
        let schema_at = first_line.find("Schema: phone_net").unwrap();
        let class_at = first_line.find("Class: Pole").unwrap();
        assert!(schema_at < class_at);
    }

    #[test]
    fn hidden_windows_are_skipped() {
        let mut d = paper_dispatcher(&TelecomConfig::small()).unwrap();
        d.install_program(custlang::FIG6_PROGRAM, "fig6").unwrap();
        let sid = d.open_session(SessionContext::new("juliano", "planner", "pole_manager"));
        d.open_schema(sid, "phone_net").unwrap();
        let screen = session_screen(&d, sid);
        assert!(!screen.contains("Schema: phone_net"));
        assert!(screen.contains("Class: Pole"));
    }

    #[test]
    fn unknown_session_is_empty() {
        let d = paper_dispatcher(&TelecomConfig::small()).unwrap();
        assert_eq!(session_screen(&d, SessionId(99)), "");
    }
}
