//! Interaction modes.
//!
//! "Common interaction modes include *exploratory* (metadata browsing),
//! *analysis* (condition evaluation via query predicates), *simulation*
//! (scenario building) and *explanation* (why/how an answer was
//! produced)." The paper's prototype supports only the exploratory mode;
//! the others are listed as what the architecture should grow into, so
//! they are implemented here as extensions (see EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

/// Session interaction mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InteractionMode {
    /// Browse schema and extension (the paper's supported mode).
    #[default]
    Exploratory,
    /// Evaluate predicates over extensions.
    Analysis,
    /// Hypothetical updates in a sandboxed database copy.
    Simulation,
    /// Inspect rule-firing traces.
    Explanation,
}

impl InteractionMode {
    /// May this mode issue update requests? The paper: "it does not
    /// consider customization of update requests, just of database
    /// queries … a direct consequence of the fact that we only support
    /// the exploratory interaction mode". Updates are confined to the
    /// simulation sandbox.
    pub fn allows_updates(&self) -> bool {
        matches!(self, InteractionMode::Simulation)
    }

    /// May this mode run predicate queries (beyond plain browsing)?
    pub fn allows_predicates(&self) -> bool {
        matches!(
            self,
            InteractionMode::Analysis | InteractionMode::Simulation
        )
    }
}

impl std::fmt::Display for InteractionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InteractionMode::Exploratory => "exploratory",
            InteractionMode::Analysis => "analysis",
            InteractionMode::Simulation => "simulation",
            InteractionMode::Explanation => "explanation",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_exploratory() {
        assert_eq!(InteractionMode::default(), InteractionMode::Exploratory);
    }

    #[test]
    fn capability_matrix() {
        assert!(!InteractionMode::Exploratory.allows_updates());
        assert!(!InteractionMode::Exploratory.allows_predicates());
        assert!(!InteractionMode::Analysis.allows_updates());
        assert!(InteractionMode::Analysis.allows_predicates());
        assert!(InteractionMode::Simulation.allows_updates());
        assert!(InteractionMode::Simulation.allows_predicates());
        assert!(!InteractionMode::Explanation.allows_updates());
    }
}
