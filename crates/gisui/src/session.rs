//! User sessions: a context, an interaction mode, and open windows.

use active::SessionContext;

use crate::modes::InteractionMode;
use crate::windows::WindowId;

/// Identifier of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u32);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One user's session with the GIS.
#[derive(Debug, Clone)]
pub struct Session {
    pub id: SessionId,
    /// The context the active rules' conditions check.
    pub context: SessionContext,
    pub mode: InteractionMode,
    /// Windows this session opened, in opening order.
    pub windows: Vec<WindowId>,
}

impl Session {
    pub fn new(id: SessionId, context: SessionContext) -> Session {
        Session {
            id,
            context,
            mode: InteractionMode::default(),
            windows: Vec::new(),
        }
    }

    pub fn with_mode(mut self, mode: InteractionMode) -> Session {
        self.mode = mode;
        self
    }

    pub(crate) fn track(&mut self, w: WindowId) {
        if !self.windows.contains(&w) {
            self.windows.push(w);
        }
    }

    pub(crate) fn untrack(&mut self, closed: &[WindowId]) {
        self.windows.retain(|w| !closed.contains(w));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_windows_without_duplicates() {
        let mut s = Session::new(
            SessionId(1),
            SessionContext::new("juliano", "planner", "pole_manager"),
        );
        s.track(WindowId(1));
        s.track(WindowId(2));
        s.track(WindowId(1));
        assert_eq!(s.windows, vec![WindowId(1), WindowId(2)]);
        s.untrack(&[WindowId(1)]);
        assert_eq!(s.windows, vec![WindowId(2)]);
    }

    #[test]
    fn mode_builder() {
        let s = Session::new(SessionId(1), SessionContext::default())
            .with_mode(InteractionMode::Analysis);
        assert_eq!(s.mode, InteractionMode::Analysis);
    }
}
