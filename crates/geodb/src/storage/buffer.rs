//! The buffer pool.
//!
//! The paper singles buffer management out: "the volume of data manipulated
//! in gis is usually very high and the interface has to provide large
//! buffers to temporarily store and manipulate the data retrieved from the
//! spatial dbms … Efficient management of buffers is thus a typical dbms
//! problem that the gis interface must deal with." Experiment C3 measures
//! hit rates and eviction policies on map-browsing workloads.

use std::collections::HashMap;

use crate::error::Result;

use super::page::PAGE_SIZE;
use super::store::{PageId, PageStore};

/// Replacement policy for the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least-recently-used by access counter.
    Lru,
    /// Second-chance clock.
    Clock,
}

/// Cumulative counters, exposed to benches and the EXPERIMENTS report.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub dirty_writebacks: u64,
}

impl BufferStats {
    /// Fraction of accesses served from memory (1.0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Frame {
    pid: PageId,
    data: Box<[u8]>,
    dirty: bool,
    last_used: u64,
    referenced: bool,
}

/// A fixed-capacity page cache in front of a [`PageStore`].
#[derive(Debug)]
pub struct BufferPool<S: PageStore> {
    store: S,
    capacity: usize,
    policy: EvictionPolicy,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    tick: u64,
    clock_hand: usize,
    stats: BufferStats,
}

impl<S: PageStore> BufferPool<S> {
    /// Create a pool of `capacity` frames (must be ≥ 1).
    pub fn new(store: S, capacity: usize, policy: EvictionPolicy) -> BufferPool<S> {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            store,
            capacity,
            policy,
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            tick: 0,
            clock_hand: 0,
            stats: BufferStats::default(),
        }
    }

    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Allocate a fresh page in the backing store.
    pub fn allocate_page(&mut self) -> Result<PageId> {
        self.store.allocate()
    }

    pub fn num_pages(&self) -> u64 {
        self.store.num_pages()
    }

    /// Read access to a page through the cache.
    pub fn with_page<R>(&mut self, pid: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let idx = self.fetch(pid)?;
        self.touch(idx);
        Ok(f(&self.frames[idx].data))
    }

    /// Write access to a page through the cache; marks the frame dirty.
    pub fn with_page_mut<R>(&mut self, pid: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let idx = self.fetch(pid)?;
        self.touch(idx);
        self.frames[idx].dirty = true;
        Ok(f(&mut self.frames[idx].data))
    }

    /// Write every dirty frame back to the store.
    pub fn flush_all(&mut self) -> Result<()> {
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                self.store
                    .write_page(self.frames[i].pid, &self.frames[i].data)?;
                self.frames[i].dirty = false;
                self.stats.dirty_writebacks += 1;
            }
        }
        Ok(())
    }

    /// Drop every cached frame (after flushing). Used by tests to force
    /// cold reads.
    pub fn clear(&mut self) -> Result<()> {
        self.flush_all()?;
        self.frames.clear();
        self.map.clear();
        self.clock_hand = 0;
        Ok(())
    }

    /// Reset statistics counters (frames stay cached).
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    fn touch(&mut self, idx: usize) {
        self.tick += 1;
        self.frames[idx].last_used = self.tick;
        self.frames[idx].referenced = true;
    }

    /// Ensure `pid` is resident; return its frame index.
    fn fetch(&mut self, pid: PageId) -> Result<usize> {
        if let Some(&idx) = self.map.get(&pid) {
            self.stats.hits += 1;
            return Ok(idx);
        }
        self.stats.misses += 1;

        let idx = if self.frames.len() < self.capacity {
            // Cold frame available.
            self.frames.push(Frame {
                pid,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                dirty: false,
                last_used: 0,
                referenced: false,
            });
            self.frames.len() - 1
        } else {
            let victim = self.choose_victim();
            self.stats.evictions += 1;
            if self.frames[victim].dirty {
                self.store
                    .write_page(self.frames[victim].pid, &self.frames[victim].data)?;
                self.stats.dirty_writebacks += 1;
            }
            self.map.remove(&self.frames[victim].pid);
            self.frames[victim].pid = pid;
            self.frames[victim].dirty = false;
            self.frames[victim].referenced = false;
            victim
        };

        self.store.read_page(pid, &mut self.frames[idx].data)?;
        self.map.insert(pid, idx);
        Ok(idx)
    }

    fn choose_victim(&mut self) -> usize {
        match self.policy {
            EvictionPolicy::Lru => self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .expect("pool is full when evicting"),
            EvictionPolicy::Clock => loop {
                let i = self.clock_hand;
                self.clock_hand = (self.clock_hand + 1) % self.frames.len();
                if self.frames[i].referenced {
                    self.frames[i].referenced = false;
                } else {
                    return i;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::store::MemStore;

    fn pool(cap: usize, policy: EvictionPolicy) -> (BufferPool<MemStore>, Vec<PageId>) {
        let mut pool = BufferPool::new(MemStore::new(), cap, policy);
        let pids: Vec<PageId> = (0..8).map(|_| pool.allocate_page().unwrap()).collect();
        // Stamp each page with its index for identification.
        for (i, &pid) in pids.iter().enumerate() {
            pool.with_page_mut(pid, |d| d[0] = i as u8).unwrap();
        }
        pool.flush_all().unwrap();
        pool.clear().unwrap();
        pool.reset_stats();
        (pool, pids)
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        BufferPool::new(MemStore::new(), 0, EvictionPolicy::Lru);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (mut pool, pids) = pool(4, EvictionPolicy::Lru);
        pool.with_page(pids[0], |d| assert_eq!(d[0], 0)).unwrap();
        pool.with_page(pids[0], |_| ()).unwrap();
        pool.with_page(pids[1], |d| assert_eq!(d[0], 1)).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (mut pool, pids) = pool(2, EvictionPolicy::Lru);
        pool.with_page(pids[0], |_| ()).unwrap(); // miss
        pool.with_page(pids[1], |_| ()).unwrap(); // miss
        pool.with_page(pids[0], |_| ()).unwrap(); // hit -> 1 is LRU
        pool.with_page(pids[2], |_| ()).unwrap(); // miss, evicts 1
        pool.with_page(pids[0], |_| ()).unwrap(); // still resident: hit
        pool.with_page(pids[1], |_| ()).unwrap(); // evicted: miss
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 4);
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn clock_gives_second_chances() {
        let (mut pool, pids) = pool(2, EvictionPolicy::Clock);
        pool.with_page(pids[0], |_| ()).unwrap();
        pool.with_page(pids[1], |_| ()).unwrap();
        // Both referenced; clock clears 0 then 1, wraps, evicts 0.
        pool.with_page(pids[2], |_| ()).unwrap();
        pool.with_page(pids[1], |_| ()).unwrap(); // expected hit
        let s = pool.stats();
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let (mut pool, pids) = pool(1, EvictionPolicy::Lru);
        pool.with_page_mut(pids[3], |d| d[100] = 0xEE).unwrap();
        // Evict by touching other pages through the 1-frame pool.
        pool.with_page(pids[4], |_| ()).unwrap();
        pool.with_page(pids[5], |_| ()).unwrap();
        // Read back.
        pool.with_page(pids[3], |d| assert_eq!(d[100], 0xEE))
            .unwrap();
        assert!(pool.stats().dirty_writebacks >= 1);
    }

    #[test]
    fn working_set_larger_than_pool_thrashes() {
        let (mut pool, pids) = pool(2, EvictionPolicy::Lru);
        // Cyclic scan of 4 pages through 2 frames: classic LRU worst case.
        for _ in 0..10 {
            for &pid in &pids[..4] {
                pool.with_page(pid, |_| ()).unwrap();
            }
        }
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn working_set_fitting_pool_all_hits_after_warmup() {
        let (mut pool, pids) = pool(4, EvictionPolicy::Lru);
        for _ in 0..10 {
            for &pid in &pids[..4] {
                pool.with_page(pid, |_| ()).unwrap();
            }
        }
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 36);
    }

    #[test]
    fn flush_all_persists_to_store() {
        let mut pool = BufferPool::new(MemStore::new(), 2, EvictionPolicy::Lru);
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |d| d[0] = 42).unwrap();
        pool.flush_all().unwrap();
        pool.clear().unwrap();
        pool.with_page(pid, |d| assert_eq!(d[0], 42)).unwrap();
    }
}
