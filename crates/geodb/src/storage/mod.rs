//! Storage layer: slotted pages, page stores, the buffer pool, and heap
//! files. Persistence of a whole database is handled by
//! [`crate::snapshot`], which serializes the logical state rather than the
//! physical pages.

pub mod buffer;
pub mod heap;
pub mod page;
pub mod store;

pub use buffer::{BufferPool, BufferStats, EvictionPolicy};
pub use heap::{HeapFile, RecordId};
pub use page::{SlottedPage, SlottedPageRef, MAX_RECORD, PAGE_SIZE};
pub use store::{AnyStore, FileStore, MemStore, PageId, PageStore};
