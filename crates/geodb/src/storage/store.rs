//! Page stores: the "disk" beneath the buffer pool.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::{GeoDbError, Result};

use super::page::PAGE_SIZE;

/// Identifier of a page within one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Abstract page-granular storage.
pub trait PageStore {
    /// Read page `pid` into `buf` (`PAGE_SIZE` bytes).
    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<()>;

    /// Write `buf` (`PAGE_SIZE` bytes) to page `pid`.
    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<()>;

    /// Allocate a fresh zeroed page and return its id.
    fn allocate(&mut self) -> Result<PageId>;

    /// Number of allocated pages.
    fn num_pages(&self) -> u64;
}

/// In-memory page store; the default backing for tests and benches.
#[derive(Debug, Default)]
pub struct MemStore {
    pages: Vec<Box<[u8]>>,
}

impl MemStore {
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl PageStore for MemStore {
    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<()> {
        let page = self
            .pages
            .get(pid.0 as usize)
            .ok_or_else(|| GeoDbError::Storage(format!("read of unallocated page {pid}")))?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<()> {
        let page = self
            .pages
            .get_mut(pid.0 as usize)
            .ok_or_else(|| GeoDbError::Storage(format!("write of unallocated page {pid}")))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&mut self) -> Result<PageId> {
        self.pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        Ok(PageId(self.pages.len() as u64 - 1))
    }

    fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }
}

/// File-backed page store.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    num_pages: u64,
}

impl FileStore {
    /// Open (or create) a page file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<FileStore> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path.as_ref())
            .map_err(|e| GeoDbError::Storage(format!("open {:?}: {e}", path.as_ref())))?;
        let len = file
            .metadata()
            .map_err(|e| GeoDbError::Storage(e.to_string()))?
            .len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(GeoDbError::Storage(format!(
                "file length {len} is not a multiple of the page size"
            )));
        }
        Ok(FileStore {
            file,
            num_pages: len / PAGE_SIZE as u64,
        })
    }
}

impl PageStore for FileStore {
    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<()> {
        if pid.0 >= self.num_pages {
            return Err(GeoDbError::Storage(format!(
                "read of unallocated page {pid}"
            )));
        }
        self.file
            .seek(SeekFrom::Start(pid.0 * PAGE_SIZE as u64))
            .and_then(|_| self.file.read_exact(buf))
            .map_err(|e| GeoDbError::Storage(format!("read {pid}: {e}")))
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<()> {
        if pid.0 >= self.num_pages {
            return Err(GeoDbError::Storage(format!(
                "write of unallocated page {pid}"
            )));
        }
        self.file
            .seek(SeekFrom::Start(pid.0 * PAGE_SIZE as u64))
            .and_then(|_| self.file.write_all(buf))
            .map_err(|e| GeoDbError::Storage(format!("write {pid}: {e}")))
    }

    fn allocate(&mut self) -> Result<PageId> {
        let pid = PageId(self.num_pages);
        let zeros = vec![0u8; PAGE_SIZE];
        self.file
            .seek(SeekFrom::Start(pid.0 * PAGE_SIZE as u64))
            .and_then(|_| self.file.write_all(&zeros))
            .map_err(|e| GeoDbError::Storage(format!("allocate {pid}: {e}")))?;
        self.num_pages += 1;
        Ok(pid)
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn PageStore) {
        assert_eq!(store.num_pages(), 0);
        let p0 = store.allocate().unwrap();
        let p1 = store.allocate().unwrap();
        assert_eq!(p0, PageId(0));
        assert_eq!(p1, PageId(1));

        let mut buf = vec![0u8; PAGE_SIZE];
        store.read_page(p0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "fresh pages are zeroed");

        let payload = vec![0x5A; PAGE_SIZE];
        store.write_page(p1, &payload).unwrap();
        store.read_page(p1, &mut buf).unwrap();
        assert_eq!(buf, payload);

        // p0 unaffected by writing p1.
        store.read_page(p0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));

        assert!(store.read_page(PageId(99), &mut buf).is_err());
        assert!(store.write_page(PageId(99), &payload).is_err());
    }

    #[test]
    fn mem_store_behaves() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn file_store_behaves_and_persists() {
        let dir = std::env::temp_dir().join(format!("geodb-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        {
            let mut fs = FileStore::open(&path).unwrap();
            exercise(&mut fs);
        }
        // Re-open: pages survive.
        let mut fs = FileStore::open(&path).unwrap();
        assert_eq!(fs.num_pages(), 2);
        let mut buf = vec![0u8; PAGE_SIZE];
        fs.read_page(PageId(1), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x5A));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_store_rejects_torn_files() {
        let dir = std::env::temp_dir().join(format!("geodb-test-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.db");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 1]).unwrap();
        assert!(FileStore::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}

/// A page store that is either in-memory or file-backed, letting
/// [`crate::db::Database`] choose its backing at run time without
/// generics leaking into every signature.
#[derive(Debug)]
pub enum AnyStore {
    Mem(MemStore),
    File(FileStore),
}

impl PageStore for AnyStore {
    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<()> {
        match self {
            AnyStore::Mem(s) => s.read_page(pid, buf),
            AnyStore::File(s) => s.read_page(pid, buf),
        }
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<()> {
        match self {
            AnyStore::Mem(s) => s.write_page(pid, buf),
            AnyStore::File(s) => s.write_page(pid, buf),
        }
    }

    fn allocate(&mut self) -> Result<PageId> {
        match self {
            AnyStore::Mem(s) => s.allocate(),
            AnyStore::File(s) => s.allocate(),
        }
    }

    fn num_pages(&self) -> u64 {
        match self {
            AnyStore::Mem(s) => s.num_pages(),
            AnyStore::File(s) => s.num_pages(),
        }
    }
}

#[cfg(test)]
mod any_store_tests {
    use super::*;

    #[test]
    fn any_store_delegates() {
        let mut s = AnyStore::Mem(MemStore::new());
        let pid = s.allocate().unwrap();
        let buf = vec![7u8; PAGE_SIZE];
        s.write_page(pid, &buf).unwrap();
        let mut out = vec![0u8; PAGE_SIZE];
        s.read_page(pid, &mut out).unwrap();
        assert_eq!(out, buf);
        assert_eq!(s.num_pages(), 1);
    }
}
