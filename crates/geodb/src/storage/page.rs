//! Slotted data pages.
//!
//! Layout (all little-endian):
//!
//! ```text
//! 0..2    u16  slot count
//! 2..4    u16  (reserved)
//! 4..     slot directory, 4 bytes per slot: (offset: u16, len: u16)
//! ...     free space
//! ...     record payloads, packed from the END of the page downward
//! ```
//!
//! A slot with `offset == 0` is dead (records can never start at offset 0
//! because the header occupies it). Deleting leaves a hole; insertion
//! compacts the page lazily when total free space suffices but the
//! contiguous gap does not.

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 4096;

const HEADER: usize = 4;
const SLOT: usize = 4;

/// Maximum payload a single slot can hold on an empty page.
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER - SLOT;

/// Read-only view over a page buffer.
pub struct SlottedPageRef<'a> {
    data: &'a [u8],
}

impl<'a> SlottedPageRef<'a> {
    /// Wrap an existing page buffer (must be `PAGE_SIZE` long).
    pub fn new(data: &'a [u8]) -> SlottedPageRef<'a> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        SlottedPageRef { data }
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    /// Number of slots (live and dead).
    pub fn slot_count(&self) -> usize {
        self.read_u16(0) as usize
    }

    fn slot(&self, i: usize) -> (usize, usize) {
        let base = HEADER + i * SLOT;
        (
            self.read_u16(base) as usize,
            self.read_u16(base + 2) as usize,
        )
    }

    /// Read a live record.
    pub fn get(&self, slot: usize) -> Option<&'a [u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == 0 {
            return None;
        }
        Some(&self.data[off..off + len])
    }

    /// Iterate live `(slot, bytes)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &'a [u8])> + '_ {
        (0..self.slot_count()).filter_map(move |i| self.get(i).map(|r| (i, r)))
    }
}

/// Zero-copy view over a page buffer with slotted-page operations.
pub struct SlottedPage<'a> {
    data: &'a mut [u8],
}

impl<'a> SlottedPage<'a> {
    /// Wrap an existing page buffer (must be `PAGE_SIZE` long).
    pub fn new(data: &'a mut [u8]) -> SlottedPage<'a> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        SlottedPage { data }
    }

    /// Initialize an empty page in-place.
    pub fn init(data: &'a mut [u8]) -> SlottedPage<'a> {
        data[..HEADER].fill(0);
        SlottedPage::new(data)
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots (live and dead).
    pub fn slot_count(&self) -> usize {
        self.read_u16(0) as usize
    }

    fn set_slot_count(&mut self, n: usize) {
        self.write_u16(0, n as u16);
    }

    fn slot(&self, i: usize) -> (usize, usize) {
        let base = HEADER + i * SLOT;
        (
            self.read_u16(base) as usize,
            self.read_u16(base + 2) as usize,
        )
    }

    fn set_slot(&mut self, i: usize, offset: usize, len: usize) {
        let base = HEADER + i * SLOT;
        self.write_u16(base, offset as u16);
        self.write_u16(base + 2, len as u16);
    }

    /// Lowest record offset (PAGE_SIZE when no live records).
    fn low_water(&self) -> usize {
        let mut low = PAGE_SIZE;
        for i in 0..self.slot_count() {
            let (off, _) = self.slot(i);
            if off != 0 {
                low = low.min(off);
            }
        }
        low
    }

    /// Total free bytes (contiguous or not), assuming one new slot entry.
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + self.slot_count() * SLOT;
        let mut live: usize = 0;
        for i in 0..self.slot_count() {
            let (off, len) = self.slot(i);
            if off != 0 {
                live += len;
            }
        }
        PAGE_SIZE - dir_end - live
    }

    /// Can a record of `len` bytes be inserted (possibly after compaction)?
    pub fn can_insert(&self, len: usize) -> bool {
        let needs_new_slot = !self.has_dead_slot();
        let overhead = if needs_new_slot { SLOT } else { 0 };
        self.free_space() >= len + overhead && len <= MAX_RECORD
    }

    fn has_dead_slot(&self) -> bool {
        (0..self.slot_count()).any(|i| self.slot(i).0 == 0)
    }

    /// Insert a record; returns its slot number, or `None` when it cannot
    /// fit even after compaction.
    pub fn insert(&mut self, record: &[u8]) -> Option<usize> {
        if !self.can_insert(record.len()) {
            return None;
        }
        // Reuse a dead slot if available, else append a new one.
        let slot_idx = (0..self.slot_count())
            .find(|&i| self.slot(i).0 == 0)
            .unwrap_or_else(|| {
                let n = self.slot_count();
                self.set_slot_count(n + 1);
                self.set_slot(n, 0, 0);
                n
            });

        let dir_end = HEADER + self.slot_count() * SLOT;
        let mut low = self.low_water();
        if low < dir_end + record.len() {
            self.compact();
            low = self.low_water();
        }
        debug_assert!(low >= dir_end + record.len());
        let off = low - record.len();
        self.data[off..off + record.len()].copy_from_slice(record);
        self.set_slot(slot_idx, off, record.len());
        Some(slot_idx)
    }

    /// Read a live record.
    pub fn get(&self, slot: usize) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == 0 {
            return None;
        }
        Some(&self.data[off..off + len])
    }

    /// Delete a record; returns true if it was live.
    pub fn delete(&mut self, slot: usize) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let (off, _) = self.slot(slot);
        if off == 0 {
            return false;
        }
        self.set_slot(slot, 0, 0);
        true
    }

    /// Slide all live records to the end of the page, closing holes.
    fn compact(&mut self) {
        let mut entries: Vec<(usize, usize, usize)> = (0..self.slot_count())
            .filter_map(|i| {
                let (off, len) = self.slot(i);
                (off != 0).then_some((i, off, len))
            })
            .collect();
        // Move highest-offset records first so copies never overlap wrongly.
        entries.sort_by_key(|&(_, off, _)| std::cmp::Reverse(off));
        let mut dest = PAGE_SIZE;
        for (slot, off, len) in entries {
            dest -= len;
            self.data.copy_within(off..off + len, dest);
            self.set_slot(slot, dest, len);
        }
    }

    /// Iterate live `(slot, bytes)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u8])> {
        (0..self.slot_count()).filter_map(move |i| self.get(i).map(|r| (i, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_buf() -> Vec<u8> {
        vec![0u8; PAGE_SIZE]
    }

    #[test]
    fn insert_get_round_trip() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0).unwrap(), b"hello");
        assert_eq!(p.get(s1).unwrap(), b"world!");
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn delete_then_slot_reuse() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        let s0 = p.insert(b"aaaa").unwrap();
        let _s1 = p.insert(b"bbbb").unwrap();
        assert!(p.delete(s0));
        assert!(!p.delete(s0));
        assert!(p.get(s0).is_none());
        // New insert reuses the dead slot.
        let s2 = p.insert(b"cccc").unwrap();
        assert_eq!(s2, s0);
        assert_eq!(p.get(s2).unwrap(), b"cccc");
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn fills_to_capacity_and_rejects_overflow() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        let rec = vec![0xAB; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 104 bytes per record (100 + slot) into ~4092 usable.
        assert!(n >= 39, "only {n} records fit");
        assert!(!p.can_insert(100));
        assert!(p.insert(&rec).is_none());
    }

    #[test]
    fn compaction_reclaims_holes() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        // Fill with 10 records of ~400 bytes.
        let rec = vec![7u8; 400];
        let slots: Vec<usize> = (0..10).map(|_| p.insert(&rec).unwrap()).collect();
        assert!(p.insert(&rec).is_none());
        // Free alternating records: 2000 bytes free but fragmented.
        for &s in slots.iter().step_by(2) {
            assert!(p.delete(s));
        }
        // A 1500-byte record only fits after compaction.
        let big = vec![9u8; 1500];
        let s = p.insert(&big).unwrap();
        assert_eq!(p.get(s).unwrap(), &big[..]);
        // Survivors are intact.
        for &s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.get(s).unwrap(), &rec[..]);
        }
    }

    #[test]
    fn max_record_fits_exactly() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        let rec = vec![1u8; MAX_RECORD];
        let s = p.insert(&rec).unwrap();
        assert_eq!(p.get(s).unwrap().len(), MAX_RECORD);
        assert!(!p.can_insert(1));

        let mut buf2 = page_buf();
        let mut p2 = SlottedPage::init(&mut buf2);
        assert!(p2.insert(&vec![1u8; MAX_RECORD + 1]).is_none());
    }

    #[test]
    fn iter_yields_live_records_only() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(b);
        let got: Vec<(usize, Vec<u8>)> = p.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(got, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }

    #[test]
    fn empty_record_is_allowed() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s).unwrap(), b"");
    }

    #[test]
    fn get_out_of_range_is_none() {
        let mut buf = page_buf();
        let p = SlottedPage::init(&mut buf);
        assert!(p.get(0).is_none());
        assert!(p.get(99).is_none());
    }
}
