//! Heap files: unordered record storage over the buffer pool, with
//! overflow chains for records larger than a page (bitmap attributes).

use crate::error::{GeoDbError, Result};

use super::buffer::BufferPool;
use super::page::{SlottedPage, SlottedPageRef, MAX_RECORD, PAGE_SIZE};
use super::store::{PageId, PageStore};

/// Location of a record: page + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordId {
    pub page: PageId,
    pub slot: u16,
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

const TAG_INLINE: u8 = 0;
const TAG_OVERFLOW: u8 = 1;
/// Inline payload limit: record bytes minus the tag byte.
const INLINE_MAX: usize = MAX_RECORD - 1;
/// Overflow page header: next page id (u64) + used bytes (u16).
const OVF_HEADER: usize = 10;
const OVF_CAPACITY: usize = PAGE_SIZE - OVF_HEADER;
const NO_PAGE: u64 = u64::MAX;

/// An unordered collection of variable-length records.
///
/// The heap file does not own the buffer pool — one pool serves every
/// extent in a database — so operations borrow it explicitly.
#[derive(Debug, Default)]
pub struct HeapFile {
    /// Slotted data pages, in allocation order (scan order).
    data_pages: Vec<PageId>,
    /// Overflow pages freed by deletions, available for reuse.
    free_overflow: Vec<PageId>,
    /// Live record count.
    len: usize,
}

impl HeapFile {
    pub fn new() -> HeapFile {
        HeapFile::default()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slotted data pages (not counting overflow pages).
    pub fn data_page_count(&self) -> usize {
        self.data_pages.len()
    }

    /// Insert a record, returning its id.
    pub fn insert<S: PageStore>(
        &mut self,
        pool: &mut BufferPool<S>,
        payload: &[u8],
    ) -> Result<RecordId> {
        let head = if payload.len() <= INLINE_MAX {
            let mut rec = Vec::with_capacity(payload.len() + 1);
            rec.push(TAG_INLINE);
            rec.extend_from_slice(payload);
            rec
        } else {
            let first = self.write_overflow_chain(pool, payload)?;
            let mut rec = Vec::with_capacity(13);
            rec.push(TAG_OVERFLOW);
            rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            rec.extend_from_slice(&first.0.to_le_bytes());
            rec
        };
        let rid = self.place_record(pool, &head)?;
        self.len += 1;
        Ok(rid)
    }

    /// Find (or allocate) a page with room and insert the head record.
    fn place_record<S: PageStore>(
        &mut self,
        pool: &mut BufferPool<S>,
        rec: &[u8],
    ) -> Result<RecordId> {
        // Try the most recently used data page first — the common case for
        // append-heavy loads — then fall back to a scan.
        let candidates: Vec<PageId> = self
            .data_pages
            .last()
            .copied()
            .into_iter()
            .chain(self.data_pages.iter().rev().skip(1).copied())
            .collect();
        for pid in candidates {
            let slot = pool.with_page_mut(pid, |data| SlottedPage::new(data).insert(rec))?;
            if let Some(slot) = slot {
                return Ok(RecordId {
                    page: pid,
                    slot: slot as u16,
                });
            }
        }
        // No room anywhere: new page.
        let pid = pool.allocate_page()?;
        let slot = pool.with_page_mut(pid, |data| SlottedPage::init(data).insert(rec))?;
        let slot =
            slot.ok_or_else(|| GeoDbError::Storage("record too large for empty page".into()))?;
        self.data_pages.push(pid);
        Ok(RecordId {
            page: pid,
            slot: slot as u16,
        })
    }

    fn take_overflow_page<S: PageStore>(&mut self, pool: &mut BufferPool<S>) -> Result<PageId> {
        match self.free_overflow.pop() {
            Some(p) => Ok(p),
            None => pool.allocate_page(),
        }
    }

    fn write_overflow_chain<S: PageStore>(
        &mut self,
        pool: &mut BufferPool<S>,
        payload: &[u8],
    ) -> Result<PageId> {
        let chunks: Vec<&[u8]> = payload.chunks(OVF_CAPACITY).collect();
        let pages: Vec<PageId> = (0..chunks.len())
            .map(|_| self.take_overflow_page(pool))
            .collect::<Result<_>>()?;
        for (i, chunk) in chunks.iter().enumerate() {
            let next = pages.get(i + 1).map(|p| p.0).unwrap_or(NO_PAGE);
            pool.with_page_mut(pages[i], |data| {
                data[0..8].copy_from_slice(&next.to_le_bytes());
                data[8..10].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                data[OVF_HEADER..OVF_HEADER + chunk.len()].copy_from_slice(chunk);
            })?;
        }
        Ok(pages[0])
    }

    fn read_overflow_chain<S: PageStore>(
        &self,
        pool: &mut BufferPool<S>,
        first: PageId,
        total: usize,
    ) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(total);
        let mut cur = first.0;
        while cur != NO_PAGE {
            let (next, chunk) = pool.with_page(PageId(cur), |data| {
                let next = u64::from_le_bytes(data[0..8].try_into().expect("8 bytes"));
                let used = u16::from_le_bytes(data[8..10].try_into().expect("2 bytes")) as usize;
                (next, data[OVF_HEADER..OVF_HEADER + used].to_vec())
            })?;
            out.extend_from_slice(&chunk);
            cur = next;
        }
        if out.len() != total {
            return Err(GeoDbError::Storage(format!(
                "overflow chain length mismatch: expected {total}, got {}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// Read a record's full payload.
    pub fn get<S: PageStore>(&self, pool: &mut BufferPool<S>, rid: RecordId) -> Result<Vec<u8>> {
        let head = pool.with_page(rid.page, |data| {
            SlottedPageRef::new(data)
                .get(rid.slot as usize)
                .map(|r| r.to_vec())
        })?;
        let head = head.ok_or_else(|| GeoDbError::Storage(format!("no record at {rid}")))?;
        match head.first() {
            Some(&TAG_INLINE) => Ok(head[1..].to_vec()),
            Some(&TAG_OVERFLOW) => {
                let total = u32::from_le_bytes(head[1..5].try_into().expect("4 bytes")) as usize;
                let first = PageId(u64::from_le_bytes(head[5..13].try_into().expect("8 bytes")));
                self.read_overflow_chain(pool, first, total)
            }
            _ => Err(GeoDbError::Storage(format!("corrupt record head at {rid}"))),
        }
    }

    /// Delete a record; overflow pages return to the free list.
    pub fn delete<S: PageStore>(&mut self, pool: &mut BufferPool<S>, rid: RecordId) -> Result<()> {
        let head = pool.with_page(rid.page, |data| {
            SlottedPageRef::new(data)
                .get(rid.slot as usize)
                .map(|r| r.to_vec())
        })?;
        let head = head.ok_or_else(|| GeoDbError::Storage(format!("no record at {rid}")))?;
        if head.first() == Some(&TAG_OVERFLOW) {
            let mut cur = u64::from_le_bytes(head[5..13].try_into().expect("8 bytes"));
            while cur != NO_PAGE {
                let next = pool.with_page(PageId(cur), |data| {
                    u64::from_le_bytes(data[0..8].try_into().expect("8 bytes"))
                })?;
                self.free_overflow.push(PageId(cur));
                cur = next;
            }
        }
        let deleted = pool.with_page_mut(rid.page, |data| {
            SlottedPage::new(data).delete(rid.slot as usize)
        })?;
        if !deleted {
            return Err(GeoDbError::Storage(format!("no record at {rid}")));
        }
        self.len -= 1;
        Ok(())
    }

    /// Replace a record's payload, possibly relocating it.
    pub fn update<S: PageStore>(
        &mut self,
        pool: &mut BufferPool<S>,
        rid: RecordId,
        payload: &[u8],
    ) -> Result<RecordId> {
        self.delete(pool, rid)?;
        self.insert(pool, payload)
    }

    /// Materialize every live record as `(rid, payload)` pairs in scan order.
    pub fn scan<S: PageStore>(&self, pool: &mut BufferPool<S>) -> Result<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::with_capacity(self.len);
        for &pid in &self.data_pages {
            let heads: Vec<(u16, Vec<u8>)> = pool.with_page(pid, |data| {
                SlottedPageRef::new(data)
                    .iter()
                    .map(|(s, r)| (s as u16, r.to_vec()))
                    .collect()
            })?;
            for (slot, head) in heads {
                let rid = RecordId { page: pid, slot };
                let payload = match head.first() {
                    Some(&TAG_INLINE) => head[1..].to_vec(),
                    Some(&TAG_OVERFLOW) => {
                        let total =
                            u32::from_le_bytes(head[1..5].try_into().expect("4 bytes")) as usize;
                        let first =
                            PageId(u64::from_le_bytes(head[5..13].try_into().expect("8 bytes")));
                        self.read_overflow_chain(pool, first, total)?
                    }
                    _ => return Err(GeoDbError::Storage(format!("corrupt record head at {rid}"))),
                };
                out.push((rid, payload));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::buffer::EvictionPolicy;
    use crate::storage::store::MemStore;

    fn pool() -> BufferPool<MemStore> {
        BufferPool::new(MemStore::new(), 16, EvictionPolicy::Lru)
    }

    #[test]
    fn insert_get_round_trip() {
        let mut pool = pool();
        let mut heap = HeapFile::new();
        let a = heap.insert(&mut pool, b"alpha").unwrap();
        let b = heap.insert(&mut pool, b"beta").unwrap();
        assert_eq!(heap.get(&mut pool, a).unwrap(), b"alpha");
        assert_eq!(heap.get(&mut pool, b).unwrap(), b"beta");
        assert_eq!(heap.len(), 2);
    }

    #[test]
    fn large_record_uses_overflow_chain() {
        let mut pool = pool();
        let mut heap = HeapFile::new();
        // ~3 pages worth of payload.
        let big: Vec<u8> = (0..12_000).map(|i| (i % 251) as u8).collect();
        let rid = heap.insert(&mut pool, &big).unwrap();
        assert_eq!(heap.get(&mut pool, rid).unwrap(), big);
        // The head itself lives in a slotted page.
        assert_eq!(heap.data_page_count(), 1);
    }

    #[test]
    fn delete_frees_overflow_pages_for_reuse() {
        let mut pool = pool();
        let mut heap = HeapFile::new();
        let big = vec![0xCD; 10_000];
        let rid = heap.insert(&mut pool, &big).unwrap();
        let pages_before = pool.num_pages();
        heap.delete(&mut pool, rid).unwrap();
        assert_eq!(heap.len(), 0);
        // Re-inserting an equally large record reuses the freed chain.
        let rid2 = heap.insert(&mut pool, &big).unwrap();
        assert_eq!(pool.num_pages(), pages_before);
        assert_eq!(heap.get(&mut pool, rid2).unwrap(), big);
    }

    #[test]
    fn get_after_delete_fails() {
        let mut pool = pool();
        let mut heap = HeapFile::new();
        let rid = heap.insert(&mut pool, b"x").unwrap();
        heap.delete(&mut pool, rid).unwrap();
        assert!(heap.get(&mut pool, rid).is_err());
        assert!(heap.delete(&mut pool, rid).is_err());
    }

    #[test]
    fn update_relocates_and_preserves_payload() {
        let mut pool = pool();
        let mut heap = HeapFile::new();
        let rid = heap.insert(&mut pool, b"short").unwrap();
        let big = vec![0x11; 9_000];
        let rid2 = heap.update(&mut pool, rid, &big).unwrap();
        assert_eq!(heap.get(&mut pool, rid2).unwrap(), big);
        assert_eq!(heap.len(), 1);
    }

    #[test]
    fn scan_returns_all_live_records() {
        let mut pool = pool();
        let mut heap = HeapFile::new();
        let mut rids = Vec::new();
        for i in 0..200u32 {
            let payload = format!("record-{i}").into_bytes();
            rids.push((heap.insert(&mut pool, &payload).unwrap(), payload));
        }
        // Delete a few.
        heap.delete(&mut pool, rids[10].0).unwrap();
        heap.delete(&mut pool, rids[50].0).unwrap();
        let scanned = heap.scan(&mut pool).unwrap();
        assert_eq!(scanned.len(), 198);
        let payloads: std::collections::HashSet<Vec<u8>> =
            scanned.into_iter().map(|(_, p)| p).collect();
        assert!(!payloads.contains(&rids[10].1));
        assert!(payloads.contains(&rids[0].1));
        assert!(payloads.contains(&rids[199].1));
    }

    #[test]
    fn many_records_spill_to_multiple_pages() {
        let mut pool = pool();
        let mut heap = HeapFile::new();
        let payload = vec![0u8; 500];
        for _ in 0..100 {
            heap.insert(&mut pool, &payload).unwrap();
        }
        assert!(heap.data_page_count() > 10);
        assert_eq!(heap.scan(&mut pool).unwrap().len(), 100);
    }

    #[test]
    fn mixed_inline_and_overflow_scan() {
        let mut pool = pool();
        let mut heap = HeapFile::new();
        heap.insert(&mut pool, b"small").unwrap();
        heap.insert(&mut pool, &vec![0xAA; 8000]).unwrap();
        heap.insert(&mut pool, b"another").unwrap();
        let scanned = heap.scan(&mut pool).unwrap();
        assert_eq!(scanned.len(), 3);
        assert!(scanned.iter().any(|(_, p)| p.len() == 8000));
    }
}
