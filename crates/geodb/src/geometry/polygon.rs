//! Simple polygons — administrative regions, coverage zones, building
//! footprints in the workloads.

use serde::{Deserialize, Serialize};

use super::point::Point;
use super::polyline::segments_intersect;
use super::rect::Rect;
use crate::error::{GeoDbError, Result};

/// A simple polygon given by its exterior ring (not self-intersecting,
/// without an explicit closing vertex — the ring wraps implicitly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    ring: Vec<Point>,
}

impl Polygon {
    /// Create a polygon; fails with fewer than three vertices or a
    /// duplicated closing vertex that would make the ring degenerate.
    pub fn new(mut ring: Vec<Point>) -> Result<Polygon> {
        // Tolerate an explicit closing vertex and strip it.
        if ring.len() >= 2 && ring.first() == ring.last() {
            ring.pop();
        }
        if ring.len() < 3 {
            return Err(GeoDbError::InvalidGeometry(format!(
                "polygon needs >= 3 distinct points, got {}",
                ring.len()
            )));
        }
        Ok(Polygon { ring })
    }

    /// Axis-aligned rectangle as a polygon.
    pub fn from_rect(r: &Rect) -> Polygon {
        Polygon {
            ring: vec![
                r.min,
                Point::new(r.max.x, r.min.y),
                r.max,
                Point::new(r.min.x, r.max.y),
            ],
        }
    }

    pub fn ring(&self) -> &[Point] {
        &self.ring
    }

    /// Edges of the ring, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = (&Point, &Point)> {
        let n = self.ring.len();
        (0..n).map(move |i| (&self.ring[i], &self.ring[(i + 1) % n]))
    }

    /// Signed area via the shoelace formula (positive when CCW).
    pub fn signed_area(&self) -> f64 {
        let mut acc = 0.0;
        for (a, b) in self.edges() {
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }

    /// Absolute enclosed area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Ring perimeter.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|(a, b)| a.distance(b)).sum()
    }

    /// Centroid of the enclosed region (falls back to vertex mean for
    /// zero-area rings).
    pub fn centroid(&self) -> Point {
        let a = self.signed_area();
        if a == 0.0 {
            let n = self.ring.len() as f64;
            let (sx, sy) = self
                .ring
                .iter()
                .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
            return Point::new(sx / n, sy / n);
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for (p, q) in self.edges() {
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Tight axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        self.ring
            .iter()
            .fold(Rect::empty(), |acc, p| acc.union(&Rect::from_point(*p)))
    }

    /// Even-odd point-in-polygon test; boundary points count as inside.
    pub fn contains_point(&self, p: &Point) -> bool {
        // Boundary check first, so edge/vertex hits are deterministic.
        for (a, b) in self.edges() {
            if p.distance_to_segment(a, b) == 0.0 {
                return true;
            }
        }
        let mut inside = false;
        for (a, b) in self.edges() {
            let crosses = (a.y > p.y) != (b.y > p.y);
            if crosses {
                let x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x_at {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// True when the polygons share any point (edge crossing or one
    /// containing a vertex of the other).
    pub fn intersects(&self, other: &Polygon) -> bool {
        if !self.bbox().intersects(&other.bbox()) {
            return false;
        }
        for (a, b) in self.edges() {
            for (c, d) in other.edges() {
                if segments_intersect(a, b, c, d) {
                    return true;
                }
            }
        }
        self.contains_point(&other.ring[0]) || other.contains_point(&self.ring[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(pts: &[(f64, f64)]) -> Polygon {
        Polygon::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn unit_square() -> Polygon {
        poly(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])
    }

    #[test]
    fn rejects_degenerate_rings() {
        assert!(Polygon::new(vec![]).is_err());
        assert!(Polygon::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]).is_err());
    }

    #[test]
    fn strips_explicit_closing_vertex() {
        let open = poly(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        let closed = poly(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (0.0, 0.0)]);
        assert_eq!(open, closed);
    }

    #[test]
    fn area_of_unit_square() {
        assert_eq!(unit_square().area(), 1.0);
        assert_eq!(unit_square().perimeter(), 4.0);
    }

    #[test]
    fn signed_area_reflects_winding() {
        let ccw = unit_square();
        let cw = poly(&[(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)]);
        assert!(ccw.signed_area() > 0.0);
        assert!(cw.signed_area() < 0.0);
        assert_eq!(ccw.area(), cw.area());
    }

    #[test]
    fn centroid_of_square_is_center() {
        let c = unit_square().centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn point_in_polygon() {
        let sq = unit_square();
        assert!(sq.contains_point(&Point::new(0.5, 0.5)));
        assert!(!sq.contains_point(&Point::new(1.5, 0.5)));
        assert!(!sq.contains_point(&Point::new(-0.1, 0.5)));
        // Boundary and vertex count as inside.
        assert!(sq.contains_point(&Point::new(1.0, 0.5)));
        assert!(sq.contains_point(&Point::new(0.0, 0.0)));
    }

    #[test]
    fn point_in_concave_polygon() {
        // A "U" shape: the notch at the top middle is outside.
        let u = poly(&[
            (0.0, 0.0),
            (3.0, 0.0),
            (3.0, 3.0),
            (2.0, 3.0),
            (2.0, 1.0),
            (1.0, 1.0),
            (1.0, 3.0),
            (0.0, 3.0),
        ]);
        assert!(u.contains_point(&Point::new(0.5, 2.0)));
        assert!(u.contains_point(&Point::new(2.5, 2.0)));
        assert!(!u.contains_point(&Point::new(1.5, 2.0)));
        assert!(u.contains_point(&Point::new(1.5, 0.5)));
    }

    #[test]
    fn overlapping_polygons_intersect() {
        let a = unit_square();
        let b = poly(&[(0.5, 0.5), (1.5, 0.5), (1.5, 1.5), (0.5, 1.5)]);
        assert!(a.intersects(&b));
    }

    #[test]
    fn nested_polygons_intersect() {
        let outer = poly(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let inner = poly(&[(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]);
        assert!(outer.intersects(&inner));
        assert!(inner.intersects(&outer));
    }

    #[test]
    fn disjoint_polygons_do_not_intersect() {
        let a = unit_square();
        let b = poly(&[(5.0, 5.0), (6.0, 5.0), (6.0, 6.0), (5.0, 6.0)]);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn from_rect_round_trips() {
        let r = Rect::new(1.0, 2.0, 4.0, 6.0);
        let p = Polygon::from_rect(&r);
        assert_eq!(p.bbox(), r);
        assert_eq!(p.area(), r.area());
    }
}
