//! 2-D point in a projected (planar) coordinate system.
//!
//! All geo-referenced data in the paper's examples (pole locations, duct
//! endpoints) are planar map coordinates, so a Euclidean model is adequate.

use serde::{Deserialize, Serialize};

/// A point in planar map coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Create a new point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared distance — cheaper when only comparing distances.
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise midpoint.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Translate by `(dx, dy)`.
    pub fn translate(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// 2-D cross product of `(b - a)` and `(c - a)`; sign gives orientation.
    pub fn cross(a: &Point, b: &Point, c: &Point) -> f64 {
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    }

    /// Distance from this point to the segment `[a, b]`.
    pub fn distance_to_segment(&self, a: &Point, b: &Point) -> f64 {
        let abx = b.x - a.x;
        let aby = b.y - a.y;
        let len_sq = abx * abx + aby * aby;
        if len_sq == 0.0 {
            return self.distance(a);
        }
        let t = ((self.x - a.x) * abx + (self.y - a.y) * aby) / len_sq;
        let t = t.clamp(0.0, 1.0);
        let proj = Point::new(a.x + t * abx, a.y + t * aby);
        self.distance(&proj)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(7.25, -3.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.midpoint(&b), a.lerp(&b, 0.5));
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn cross_sign_gives_orientation() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let left = Point::new(0.5, 1.0);
        let right = Point::new(0.5, -1.0);
        assert!(Point::cross(&a, &b, &left) > 0.0);
        assert!(Point::cross(&a, &b, &right) < 0.0);
        let colinear = Point::new(2.0, 0.0);
        assert_eq!(Point::cross(&a, &b, &colinear), 0.0);
    }

    #[test]
    fn distance_to_segment_clamps_to_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        // Perpendicular foot inside the segment.
        assert_eq!(Point::new(5.0, 3.0).distance_to_segment(&a, &b), 3.0);
        // Beyond endpoint b -> distance to b.
        assert_eq!(Point::new(13.0, 4.0).distance_to_segment(&a, &b), 5.0);
        // Degenerate segment.
        assert_eq!(Point::new(3.0, 4.0).distance_to_segment(&a, &a), 5.0);
    }

    #[test]
    fn translate_moves_point() {
        assert_eq!(
            Point::new(1.0, 2.0).translate(2.0, -1.0),
            Point::new(3.0, 1.0)
        );
    }
}
