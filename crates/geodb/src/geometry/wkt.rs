//! A minimal Well-Known-Text reader/writer for the supported geometry types.
//!
//! Supported forms: `POINT (x y)`, `LINESTRING (x y, x y, ...)`,
//! `POLYGON ((x y, x y, ...))` — enough to exchange data with external
//! tools and to keep snapshots human-readable.

use super::{Geometry, Point, Polygon, Polyline};
use crate::error::{GeoDbError, Result};

/// Render a geometry as WKT.
pub fn to_wkt(g: &Geometry) -> String {
    match g {
        Geometry::Point(p) => format!("POINT ({} {})", p.x, p.y),
        Geometry::Polyline(l) => format!("LINESTRING ({})", coord_list(l.points())),
        Geometry::Polygon(p) => {
            // Emit the closed ring as WKT requires.
            let mut pts: Vec<Point> = p.ring().to_vec();
            pts.push(pts[0]);
            format!("POLYGON (({}))", coord_list(&pts))
        }
    }
}

fn coord_list(pts: &[Point]) -> String {
    pts.iter()
        .map(|p| format!("{} {}", p.x, p.y))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parse a WKT string into a geometry.
pub fn from_wkt(s: &str) -> Result<Geometry> {
    let s = s.trim();
    let upper = s.to_ascii_uppercase();
    if let Some(rest) = upper.strip_prefix("POINT") {
        let body = strip_parens(rest.trim(), s, "POINT")?;
        let coords = parse_coords(body)?;
        if coords.len() != 1 {
            return Err(GeoDbError::WktParse(format!(
                "POINT takes exactly one coordinate, got {}",
                coords.len()
            )));
        }
        Ok(Geometry::Point(coords[0]))
    } else if let Some(rest) = upper.strip_prefix("LINESTRING") {
        let body = strip_parens(rest.trim(), s, "LINESTRING")?;
        let coords = parse_coords(body)?;
        Ok(Geometry::Polyline(Polyline::new(coords)?))
    } else if let Some(rest) = upper.strip_prefix("POLYGON") {
        let body = strip_parens(rest.trim(), s, "POLYGON")?;
        let inner = strip_parens(body.trim(), s, "POLYGON ring")?;
        let coords = parse_coords(inner)?;
        Ok(Geometry::Polygon(Polygon::new(coords)?))
    } else {
        Err(GeoDbError::WktParse(format!("unrecognized WKT: `{s}`")))
    }
}

/// Return the slice between the outermost parentheses of `upper_rest`,
/// mapped back onto the original string `orig` so coordinate text keeps
/// its original case (digits are case-free, but error messages improve).
fn strip_parens<'a>(upper_rest: &'a str, orig: &str, what: &str) -> Result<&'a str> {
    let open = upper_rest
        .find('(')
        .ok_or_else(|| GeoDbError::WktParse(format!("{what}: missing '(' in `{orig}`")))?;
    let close = upper_rest
        .rfind(')')
        .ok_or_else(|| GeoDbError::WktParse(format!("{what}: missing ')' in `{orig}`")))?;
    if close < open {
        return Err(GeoDbError::WktParse(format!(
            "{what}: mismatched parentheses in `{orig}`"
        )));
    }
    Ok(&upper_rest[open + 1..close])
}

fn parse_coords(body: &str) -> Result<Vec<Point>> {
    body.split(',')
        .map(|pair| {
            let mut it = pair.split_whitespace();
            let x = it
                .next()
                .ok_or_else(|| GeoDbError::WktParse(format!("empty coordinate in `{pair}`")))?;
            let y = it
                .next()
                .ok_or_else(|| GeoDbError::WktParse(format!("missing y in `{pair}`")))?;
            if it.next().is_some() {
                return Err(GeoDbError::WktParse(format!(
                    "extra token in coordinate `{pair}`"
                )));
            }
            let x: f64 = x
                .parse()
                .map_err(|_| GeoDbError::WktParse(format!("bad number `{x}`")))?;
            let y: f64 = y
                .parse()
                .map_err(|_| GeoDbError::WktParse(format!("bad number `{y}`")))?;
            Ok(Point::new(x, y))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_round_trip() {
        let g = Geometry::Point(Point::new(1.5, -2.25));
        let wkt = to_wkt(&g);
        assert_eq!(wkt, "POINT (1.5 -2.25)");
        assert_eq!(from_wkt(&wkt).unwrap(), g);
    }

    #[test]
    fn linestring_round_trip() {
        let g = Geometry::Polyline(
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)]).unwrap(),
        );
        let wkt = to_wkt(&g);
        assert_eq!(wkt, "LINESTRING (0 0, 3 4)");
        assert_eq!(from_wkt(&wkt).unwrap(), g);
    }

    #[test]
    fn polygon_round_trip_closes_ring() {
        let g = Geometry::Polygon(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(4.0, 4.0),
            ])
            .unwrap(),
        );
        let wkt = to_wkt(&g);
        assert_eq!(wkt, "POLYGON ((0 0, 4 0, 4 4, 0 0))");
        assert_eq!(from_wkt(&wkt).unwrap(), g);
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        assert!(from_wkt("  point (1 2)  ").is_ok());
        assert!(from_wkt("LineString(0 0, 1 1)").is_ok());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_wkt("CIRCLE (1 2)").is_err());
        assert!(from_wkt("POINT 1 2").is_err());
        assert!(from_wkt("POINT (1)").is_err());
        assert!(from_wkt("POINT (1 2 3)").is_err());
        assert!(from_wkt("POINT (a b)").is_err());
        assert!(from_wkt("LINESTRING (1 2)").is_err()); // too few points
        assert!(from_wkt("POLYGON ((1 2, 3 4))").is_err()); // too few points
        assert!(from_wkt("POINT )1 2(").is_err());
    }
}
