//! Spatial data types for the geographic DBMS.
//!
//! The paper's data model stores "georeferenced data … connected to the
//! surface of the earth (e.g., vegetation and road networks)". We model
//! them with three planar types — [`Point`], [`Polyline`], [`Polygon`] —
//! unified by the [`Geometry`] enum, plus axis-aligned [`Rect`]s used by
//! the spatial indexes and window queries.

pub mod point;
pub mod polygon;
pub mod polyline;
pub mod rect;
pub mod wkt;

pub use point::Point;
pub use polygon::Polygon;
pub use polyline::Polyline;
pub use rect::Rect;

use serde::{Deserialize, Serialize};

/// Any supported spatial value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Geometry {
    Point(Point),
    Polyline(Polyline),
    Polygon(Polygon),
}

impl Geometry {
    /// Kind tag, used in presentation defaults ("points draw as dots,
    /// lines as strokes, polygons as filled shapes").
    pub fn kind(&self) -> GeometryKind {
        match self {
            Geometry::Point(_) => GeometryKind::Point,
            Geometry::Polyline(_) => GeometryKind::Polyline,
            Geometry::Polygon(_) => GeometryKind::Polygon,
        }
    }

    /// Tight axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        match self {
            Geometry::Point(p) => Rect::from_point(*p),
            Geometry::Polyline(l) => l.bbox(),
            Geometry::Polygon(p) => p.bbox(),
        }
    }

    /// A representative point (the point itself, arc midpoint, centroid).
    pub fn representative_point(&self) -> Point {
        match self {
            Geometry::Point(p) => *p,
            Geometry::Polyline(l) => l.point_at(0.5),
            Geometry::Polygon(p) => p.centroid(),
        }
    }

    /// Minimum distance from the geometry to a point.
    pub fn distance_to_point(&self, q: &Point) -> f64 {
        match self {
            Geometry::Point(p) => p.distance(q),
            Geometry::Polyline(l) => l.distance_to_point(q),
            Geometry::Polygon(p) => {
                if p.contains_point(q) {
                    0.0
                } else {
                    p.edges()
                        .map(|(a, b)| q.distance_to_segment(a, b))
                        .fold(f64::INFINITY, f64::min)
                }
            }
        }
    }

    /// True when the geometry lies entirely inside `r`.
    pub fn within(&self, r: &Rect) -> bool {
        r.contains_rect(&self.bbox())
    }

    /// Conservative-exact intersection with a query rectangle: exact for
    /// points and polygons-vs-rect, segment-exact for polylines.
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        match self {
            Geometry::Point(p) => r.contains_point(p),
            Geometry::Polyline(l) => {
                if !l.bbox().intersects(r) {
                    return false;
                }
                let rect_poly = Polygon::from_rect(r);
                l.points().iter().any(|p| r.contains_point(p))
                    || l.segments().any(|(a, b)| {
                        rect_poly
                            .edges()
                            .any(|(c, d)| polyline::segments_intersect(a, b, c, d))
                    })
            }
            Geometry::Polygon(p) => {
                if !p.bbox().intersects(r) {
                    return false;
                }
                p.intersects(&Polygon::from_rect(r))
            }
        }
    }
}

/// The three spatial kinds, as used by presentation defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GeometryKind {
    Point,
    Polyline,
    Polygon,
}

impl std::fmt::Display for GeometryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryKind::Point => write!(f, "point"),
            GeometryKind::Polyline => write!(f, "polyline"),
            GeometryKind::Polygon => write!(f, "polygon"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(pts: &[(f64, f64)]) -> Geometry {
        Geometry::Polyline(
            Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap(),
        )
    }

    fn square(x0: f64, y0: f64, side: f64) -> Geometry {
        Geometry::Polygon(
            Polygon::new(vec![
                Point::new(x0, y0),
                Point::new(x0 + side, y0),
                Point::new(x0 + side, y0 + side),
                Point::new(x0, y0 + side),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn kind_and_bbox() {
        let p = Geometry::Point(Point::new(2.0, 3.0));
        assert_eq!(p.kind(), GeometryKind::Point);
        assert_eq!(p.bbox(), Rect::new(2.0, 3.0, 2.0, 3.0));

        let l = line(&[(0.0, 0.0), (4.0, 2.0)]);
        assert_eq!(l.kind(), GeometryKind::Polyline);
        assert_eq!(l.bbox(), Rect::new(0.0, 0.0, 4.0, 2.0));
    }

    #[test]
    fn within_rect() {
        let g = square(1.0, 1.0, 2.0);
        assert!(g.within(&Rect::new(0.0, 0.0, 5.0, 5.0)));
        assert!(!g.within(&Rect::new(0.0, 0.0, 2.0, 5.0)));
    }

    #[test]
    fn point_rect_intersection_is_containment() {
        let g = Geometry::Point(Point::new(1.0, 1.0));
        assert!(g.intersects_rect(&Rect::new(0.0, 0.0, 2.0, 2.0)));
        assert!(!g.intersects_rect(&Rect::new(2.0, 2.0, 3.0, 3.0)));
    }

    #[test]
    fn polyline_crossing_rect_without_vertices_inside() {
        // Line passes straight through the rect; no vertex inside.
        let g = line(&[(-1.0, 1.0), (3.0, 1.0)]);
        assert!(g.intersects_rect(&Rect::new(0.0, 0.0, 2.0, 2.0)));
        // Line entirely to the left.
        let g2 = line(&[(-5.0, 1.0), (-3.0, 1.0)]);
        assert!(!g2.intersects_rect(&Rect::new(0.0, 0.0, 2.0, 2.0)));
    }

    #[test]
    fn polygon_containing_rect_intersects() {
        let g = square(0.0, 0.0, 10.0);
        assert!(g.intersects_rect(&Rect::new(4.0, 4.0, 5.0, 5.0)));
    }

    #[test]
    fn representative_point_lies_sensibly() {
        assert_eq!(
            line(&[(0.0, 0.0), (10.0, 0.0)]).representative_point(),
            Point::new(5.0, 0.0)
        );
        let c = square(0.0, 0.0, 2.0).representative_point();
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_inside_polygon_is_zero() {
        let g = square(0.0, 0.0, 2.0);
        assert_eq!(g.distance_to_point(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(g.distance_to_point(&Point::new(4.0, 1.0)), 2.0);
    }
}
