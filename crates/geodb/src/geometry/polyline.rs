//! Polylines — ducts, cables and street segments in the telephone-network
//! workload are open line strings.

use serde::{Deserialize, Serialize};

use super::point::Point;
use super::rect::Rect;
use crate::error::{GeoDbError, Result};

/// An open chain of line segments with at least two vertices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<Point>,
}

impl Polyline {
    /// Create a polyline; fails with fewer than two vertices.
    pub fn new(points: Vec<Point>) -> Result<Polyline> {
        if points.len() < 2 {
            return Err(GeoDbError::InvalidGeometry(format!(
                "polyline needs >= 2 points, got {}",
                points.len()
            )));
        }
        Ok(Polyline { points })
    }

    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Consecutive vertex pairs.
    pub fn segments(&self) -> impl Iterator<Item = (&Point, &Point)> {
        self.points.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// Total length of all segments.
    pub fn length(&self) -> f64 {
        self.segments().map(|(a, b)| a.distance(b)).sum()
    }

    /// Tight axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        self.points
            .iter()
            .fold(Rect::empty(), |acc, p| acc.union(&Rect::from_point(*p)))
    }

    /// Minimum distance from a point to the polyline.
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        self.segments()
            .map(|(a, b)| p.distance_to_segment(a, b))
            .fold(f64::INFINITY, f64::min)
    }

    /// The point at arc-length fraction `t in [0, 1]` along the polyline.
    pub fn point_at(&self, t: f64) -> Point {
        let t = t.clamp(0.0, 1.0);
        let total = self.length();
        if total == 0.0 {
            return self.points[0];
        }
        let mut remaining = t * total;
        for (a, b) in self.segments() {
            let seg = a.distance(b);
            if remaining <= seg {
                let frac = if seg == 0.0 { 0.0 } else { remaining / seg };
                return a.lerp(b, frac);
            }
            remaining -= seg;
        }
        *self.points.last().expect("polyline has >= 2 points")
    }

    /// True when any segment of `self` comes within `eps` of crossing or
    /// touching any segment of `other`.
    pub fn intersects(&self, other: &Polyline) -> bool {
        if !self.bbox().intersects(&other.bbox()) {
            return false;
        }
        for (a, b) in self.segments() {
            for (c, d) in other.segments() {
                if segments_intersect(a, b, c, d) {
                    return true;
                }
            }
        }
        false
    }
}

/// Proper or touching intersection test between segments `[a,b]` and `[c,d]`.
pub(crate) fn segments_intersect(a: &Point, b: &Point, c: &Point, d: &Point) -> bool {
    let d1 = Point::cross(c, d, a);
    let d2 = Point::cross(c, d, b);
    let d3 = Point::cross(a, b, c);
    let d4 = Point::cross(a, b, d);

    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    // Colinear / endpoint-touching cases.
    (d1 == 0.0 && on_segment(c, d, a))
        || (d2 == 0.0 && on_segment(c, d, b))
        || (d3 == 0.0 && on_segment(a, b, c))
        || (d4 == 0.0 && on_segment(a, b, d))
}

/// With `p` colinear to `[a,b]`, is it within the segment's bounds?
fn on_segment(a: &Point, b: &Point, p: &Point) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(pts: &[(f64, f64)]) -> Polyline {
        Polyline::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn rejects_degenerate() {
        assert!(Polyline::new(vec![]).is_err());
        assert!(Polyline::new(vec![Point::ORIGIN]).is_err());
        assert!(Polyline::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]).is_ok());
    }

    #[test]
    fn length_sums_segments() {
        let p = pl(&[(0.0, 0.0), (3.0, 4.0), (3.0, 10.0)]);
        assert_eq!(p.length(), 11.0);
    }

    #[test]
    fn bbox_is_tight() {
        let p = pl(&[(1.0, 5.0), (-2.0, 0.0), (4.0, 2.0)]);
        assert_eq!(p.bbox(), Rect::new(-2.0, 0.0, 4.0, 5.0));
    }

    #[test]
    fn point_at_walks_arc_length() {
        let p = pl(&[(0.0, 0.0), (10.0, 0.0)]);
        assert_eq!(p.point_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(p.point_at(0.5), Point::new(5.0, 0.0));
        assert_eq!(p.point_at(1.0), Point::new(10.0, 0.0));
        // Clamped outside [0, 1].
        assert_eq!(p.point_at(2.0), Point::new(10.0, 0.0));

        let bent = pl(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)]);
        assert_eq!(bent.point_at(0.75), Point::new(10.0, 5.0));
    }

    #[test]
    fn distance_to_point_picks_nearest_segment() {
        let p = pl(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0)]);
        assert_eq!(p.distance_to_point(&Point::new(5.0, 2.0)), 2.0);
        assert_eq!(p.distance_to_point(&Point::new(12.0, 5.0)), 2.0);
    }

    #[test]
    fn crossing_polylines_intersect() {
        let a = pl(&[(0.0, 0.0), (10.0, 10.0)]);
        let b = pl(&[(0.0, 10.0), (10.0, 0.0)]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
    }

    #[test]
    fn touching_at_endpoint_intersects() {
        let a = pl(&[(0.0, 0.0), (5.0, 5.0)]);
        let b = pl(&[(5.0, 5.0), (9.0, 1.0)]);
        assert!(a.intersects(&b));
    }

    #[test]
    fn parallel_disjoint_do_not_intersect() {
        let a = pl(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = pl(&[(0.0, 1.0), (10.0, 1.0)]);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn colinear_overlapping_intersect() {
        let a = pl(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = pl(&[(5.0, 0.0), (15.0, 0.0)]);
        assert!(a.intersects(&b));
    }

    #[test]
    fn far_apart_bbox_early_out() {
        let a = pl(&[(0.0, 0.0), (1.0, 1.0)]);
        let b = pl(&[(100.0, 100.0), (101.0, 101.0)]);
        assert!(!a.intersects(&b));
    }
}
