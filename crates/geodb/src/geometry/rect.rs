//! Axis-aligned bounding rectangles — the workhorse of the spatial indexes.

use serde::{Deserialize, Serialize};

use super::point::Point;

/// An axis-aligned rectangle with `min` ≤ `max` on both axes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    pub min: Point,
    pub max: Point,
}

impl Rect {
    /// Build a rectangle from two corner points in any order.
    pub fn from_corners(a: Point, b: Point) -> Rect {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Build from explicit bounds; callers must guarantee `min ≤ max`.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Rect {
        debug_assert!(min_x <= max_x && min_y <= max_y);
        Rect {
            min: Point::new(min_x, min_y),
            max: Point::new(max_x, max_y),
        }
    }

    /// Degenerate rectangle covering a single point.
    pub fn from_point(p: Point) -> Rect {
        Rect { min: p, max: p }
    }

    /// The empty rectangle: union-identity, intersects nothing.
    pub fn empty() -> Rect {
        Rect {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// True when this is the `empty()` rectangle.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half the perimeter; the classic R-tree "margin" measure.
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// Smallest rectangle enclosing both.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Area added to `self` if it had to enclose `other` too.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// True if the rectangles share any point (boundaries count).
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The overlapping region, or `empty()` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Rect {
        if !self.intersects(other) {
            return Rect::empty();
        }
        Rect {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        }
    }

    /// True if `other` lies fully inside `self` (boundaries count).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// True if the point lies inside or on the boundary.
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Minimum distance from the rectangle to a point (0 when inside).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Grow (or shrink, with negative `d`) the rectangle on all sides.
    pub fn inflate(&self, d: f64) -> Rect {
        Rect::from_corners(
            Point::new(self.min.x - d, self.min.y - d),
            Point::new(self.max.x + d, self.max.y + d),
        )
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d)
    }

    #[test]
    fn from_corners_normalizes_order() {
        let rect = Rect::from_corners(Point::new(5.0, 1.0), Point::new(2.0, 8.0));
        assert_eq!(rect, r(2.0, 1.0, 5.0, 8.0));
    }

    #[test]
    fn empty_behaves_as_identity_for_union() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(Rect::empty().is_empty());
        assert_eq!(Rect::empty().union(&a), a);
        assert_eq!(a.union(&Rect::empty()), a);
        assert_eq!(Rect::empty().area(), 0.0);
    }

    #[test]
    fn empty_intersects_nothing() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(!Rect::empty().intersects(&a));
        assert!(!a.intersects(&Rect::empty()));
        assert!(!Rect::empty().intersects(&Rect::empty()));
    }

    #[test]
    fn union_encloses_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(3.0, -2.0, 4.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, -2.0, 4.0, 1.0));
    }

    #[test]
    fn intersection_and_intersects_agree() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(2.0, 2.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), r(2.0, 2.0, 4.0, 4.0));

        let c = r(5.0, 5.0, 6.0, 6.0);
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn touching_boundaries_intersect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).area(), 0.0);
    }

    #[test]
    fn containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(1.0, 1.0, 2.0, 2.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
        assert!(outer.contains_point(&Point::new(10.0, 10.0)));
        assert!(!outer.contains_point(&Point::new(10.1, 10.0)));
    }

    #[test]
    fn enlargement_is_zero_for_contained() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(1.0, 1.0, 2.0, 2.0);
        assert_eq!(outer.enlargement(&inner), 0.0);
        assert!(inner.enlargement(&outer) > 0.0);
    }

    #[test]
    fn distance_to_point() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.distance_to_point(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(a.distance_to_point(&Point::new(5.0, 2.0)), 3.0);
        assert_eq!(a.distance_to_point(&Point::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn margin_and_inflate() {
        let a = r(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(a.inflate(1.0), r(-1.0, -1.0, 3.0, 4.0));
    }
}
