//! # geodb — object-oriented geographic DBMS substrate
//!
//! The storage and query foundation beneath the *Active Customization of
//! GIS User Interfaces* reproduction (Medeiros, Oliveira & Cilia, ICDE
//! 1997). The paper assumes "an (object-oriented) geographic database,
//! which is the expected underlying system"; this crate is that system:
//!
//! * an object-oriented **data model** — class schemas with single
//!   inheritance, tuple / reference / geometry / bitmap attributes, and
//!   method signatures ([`schema`], [`value`], [`instance`], [`catalog`]);
//! * planar **spatial types** and operations ([`geometry`]);
//! * **spatial indexes**: an R-tree and a uniform grid ([`index`]);
//! * a **storage engine**: slotted pages, heap files with overflow chains,
//!   and a buffer pool with LRU/clock eviction ([`storage`]);
//! * **query primitives** — `Get_Schema`, `Get_Class`, `Get_Value` plus
//!   predicate selection — and the [`query::DbEvent`] stream the active
//!   mechanism intercepts ([`query`], [`db`]);
//! * JSON **snapshots** ([`snapshot`]) and a deterministic telephone-network
//!   **workload generator** ([`gen`]);
//! * a **durable write path** — checksummed write-ahead log, group
//!   commit, checkpoints and crash recovery over the versioned store
//!   ([`wal`], [`store`]);
//! * **epoch replication** — delta shipping to follower stores, routed
//!   follower reads with bounded staleness, and WAL-tail failover
//!   ([`repl`]).
//!
//! ## Quick example
//!
//! ```
//! use geodb::gen::{phone_net_db, TelecomConfig};
//! use geodb::geometry::Rect;
//!
//! let (mut db, stats) = phone_net_db(&TelecomConfig::small()).unwrap();
//! assert!(stats.poles > 0);
//! // Browse the poles in a map viewport (uses the R-tree).
//! let visible = db
//!     .window_query("phone_net", "Pole", Rect::new(0.0, 0.0, 200.0, 200.0))
//!     .unwrap();
//! assert!(!visible.is_empty());
//! ```

pub mod catalog;
pub mod db;
pub mod epoch;
pub mod error;
pub mod gen;
pub mod geometry;
pub mod index;
pub mod instance;
pub mod query;
pub mod repl;
pub mod schema;
pub mod snapshot;
pub mod storage;
pub mod store;
pub mod value;
pub mod wal;
pub mod walcodec;

pub use catalog::Catalog;
pub use db::{Aggregate, Database, IndexKind, MethodFn, QueryStats, RefResolver};
pub use epoch::Epoch;
pub use error::{GeoDbError, Result, SnapshotCause};
pub use geometry::{Geometry, GeometryKind, Point, Polygon, Polyline, Rect};
pub use instance::{Instance, Oid};
pub use query::{CmpOp, DbEvent, DbEventKind, Predicate};
pub use repl::{PromotionReport, ReadRouter, ReadSource, ReplicaStatus, ReplicaStore, SyncOutcome};
pub use schema::{AttrDef, ClassDef, MethodDef, SchemaDef};
pub use store::{Committed, DbReader, DbSnapshot, DbStore};
pub use value::{AttrType, Value};
pub use wal::{RecoveryReport, WalConfig, WalStatus};
