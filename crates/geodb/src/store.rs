//! Versioned storage: copy-on-write epoch snapshots over [`Database`].
//!
//! The paper puts customization *inside the DBMS*, so the database — not
//! the UI layer — is the component every concurrent session shares. This
//! module applies the same COW/epoch pattern the rule engine uses for its
//! `RuleBase` one layer down, to the data itself:
//!
//! * [`DbSnapshot`] — an immutable point-in-time view (catalog + class
//!   partitions + spatial indexes + locator), structurally shared via
//!   `Arc` per class so a write clones only the touched class, never the
//!   world. All query primitives (`get_schema` / `get_class` /
//!   `get_value` / `select` / `aggregate` / `nearest` / `window_query`)
//!   run against it without locks or `&mut`.
//! * [`DbStore`] — the shared handle: a serialized writer (the one
//!   mutable [`Database`] lives inside it) that watches the database's
//!   own event stream through a subscription, rebuilds exactly the
//!   dirty partitions after each write, and publishes the next snapshot
//!   under a new epoch (`Mutex<Arc<DbSnapshot>>` slot + `AtomicU64`
//!   epoch).
//! * [`DbReader`] — a per-session pin: one `Acquire` epoch load per
//!   request; the published slot's lock is taken only when the epoch
//!   actually moved.
//!
//! Readers therefore never block on writers: a reader pinned to epoch N
//! keeps serving N (its `Arc` keeps the partitions alive) while the
//! writer publishes N+1.
//!
//! ## Durability and group commit
//!
//! With a WAL attached ([`DbStore::attach_wal`], [`crate::wal`]), a
//! write is acknowledged only after its record is on disk *and* its
//! epoch is published — durability precedes visibility. Writers commit
//! through a leader/follower queue: each writer serializes its redo
//! record under the writer lock (preserving WAL epoch order), enqueues
//! it, and the first writer to find no active leader drains the whole
//! queue with **one** WAL append run + **one** fsync + **one** epoch
//! publish (of the batch's newest snapshot). A tunable group window
//! lets the leader wait for stragglers already inside `write`. A WAL
//! failure (injected crash) *poisons* the store: every later write
//! fails fast, reads keep serving the last published epoch, and the
//! process model recovers from disk via [`crate::wal::recover`].
//!
//! ## Pins, retention and GC
//!
//! Reader pins are tracked explicitly (epoch → pin count): the *pin
//! watermark* is the oldest pinned epoch, and the store retains recent
//! snapshots down to that watermark — bounded by a hard cap
//! ([`DbStore::set_retention`], default 8) so one long-pinned reader
//! cannot make the retained ring grow without bound (the reader's own
//! `Arc` keeps its snapshot alive either way; the store just stops
//! tracking it). `db.epochs_retained` gauges the ring size. Replicas
//! ([`crate::repl`]) pin the primary at their applied epoch through the
//! same registry, so a lagging replica holds its delta base alive — up
//! to the cap, past which it falls back to a full sync.
//!
//! ## Roles
//!
//! The read surface — publish slot, epoch watermark, pins, retention —
//! lives in a role-agnostic [`ReadCore`] shared by two owners: the
//! *primary* [`DbStore`] (which adds the writer, WAL and group commit)
//! and the *replica* [`crate::repl::ReplicaStore`] (which publishes
//! epochs applied from shipped deltas). [`DbReader`] pins work
//! identically against either role. Likewise the writer's partition
//! mirror ([`Mirror`]) — catalog, partitions, locator — is the shared
//! machinery replicas use to rebuild snapshots from applied frames.
//!
//! Lock order (outermost first): `writer` → `wal` → `commit` →
//! `published` → `retained` → `pins`. Any code path taking two of
//! these must respect it.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};

use crate::catalog::Catalog;
use crate::db::{
    aggregate_rows, Aggregate, Database, IndexKind, MethodFn, QueryStats, RefResolver,
};
use crate::epoch::Epoch;
use crate::error::{GeoDbError, Result};
use crate::geometry::{Point, Rect};
use crate::index::{GridIndex, RTree, SpatialIndex};
use crate::instance::{Instance, Oid};
use crate::query::{DbEvent, Predicate};
use crate::schema::SchemaDef;
use crate::value::Value;
use crate::wal::{self, Wal, WalOp, WalRecord, WalStatus};

/// The `geodb.query` failpoint — snapshot reads honour the same fault
/// hook as the mutable query primitives so the fault harness covers both
/// paths.
fn query_failpoint() -> Result<()> {
    faultsim::fire("geodb.query").map_err(|f| GeoDbError::Storage(f.to_string()))
}

// ---------------------------------------------------------------------------
// ClassPartition
// ---------------------------------------------------------------------------

/// Immutable per-class slice of a snapshot: the extent's instances (in
/// insertion order) plus a mirror of its spatial index. Snapshots share
/// partitions via `Arc`; the writer clones-and-patches only the
/// partitions a write actually touched.
pub struct ClassPartition {
    instances: HashMap<Oid, Arc<Instance>>,
    /// Insertion order, so extensions list deterministically.
    order: Vec<Oid>,
    spatial: Option<Box<dyn SpatialIndex>>,
    geom_attr: Option<String>,
    kind: IndexKind,
}

impl Clone for ClassPartition {
    fn clone(&self) -> ClassPartition {
        ClassPartition {
            instances: self.instances.clone(),
            order: self.order.clone(),
            spatial: self.spatial.as_ref().map(|s| s.clone_box()),
            geom_attr: self.geom_attr.clone(),
            kind: self.kind,
        }
    }
}

impl ClassPartition {
    /// Build from a full extent capture (initial snapshot, new schema,
    /// store restore).
    fn from_capture(cap: crate::db::ExtentCapture) -> ClassPartition {
        let spatial: Option<Box<dyn SpatialIndex>> = match (&cap.geom_attr, cap.kind) {
            (Some(_), IndexKind::RTree) => Some(Box::new(RTree::new())),
            (Some(_), IndexKind::Grid { cell }) => Some(Box::new(GridIndex::new(cell))),
            _ => None,
        };
        let mut part = ClassPartition {
            instances: HashMap::with_capacity(cap.instances.len()),
            order: Vec::with_capacity(cap.instances.len()),
            spatial,
            geom_attr: cap.geom_attr,
            kind: cap.kind,
        };
        for inst in cap.instances {
            part.upsert(inst);
        }
        part
    }

    /// Insert or replace one instance, keeping order and index in step.
    fn upsert(&mut self, inst: Instance) {
        let oid = inst.oid;
        let bbox = self
            .geom_attr
            .as_ref()
            .and_then(|a| inst.get(a).as_geometry())
            .map(|g| g.bbox());
        if self.instances.insert(oid, Arc::new(inst)).is_none() {
            self.order.push(oid);
        }
        if let Some(idx) = self.spatial.as_mut() {
            idx.remove(oid);
            if let Some(bbox) = bbox {
                idx.insert(oid, bbox);
            }
        }
    }

    /// Remove one instance if present.
    fn remove(&mut self, oid: Oid) {
        if self.instances.remove(&oid).is_some() {
            self.order.retain(|o| *o != oid);
        }
        if let Some(idx) = self.spatial.as_mut() {
            idx.remove(oid);
        }
    }

    fn get(&self, oid: Oid) -> Option<&Arc<Instance>> {
        self.instances.get(&oid)
    }

    fn len(&self) -> usize {
        self.instances.len()
    }

    /// The extent's instances in insertion order (delta shipping
    /// serializes a touched partition wholesale).
    pub(crate) fn instances_ordered(&self) -> Vec<Instance> {
        self.order
            .iter()
            .map(|oid| (**self.instances.get(oid).expect("ordered oid present")).clone())
            .collect()
    }

    /// The extent's OIDs in insertion order.
    pub(crate) fn oids(&self) -> &[Oid] {
        &self.order
    }
}

// ---------------------------------------------------------------------------
// OidMap — sharded locator
// ---------------------------------------------------------------------------

const OID_BUCKETS: u64 = 64;

/// One locator bucket: oid → interned (schema, class).
type OidBucket = HashMap<Oid, (Arc<str>, Arc<str>)>;

/// oid → (schema, class), sharded into `Arc` buckets so a publish clones
/// 1/64th of the map (the touched bucket) instead of every entry.
#[derive(Clone)]
struct OidMap {
    buckets: Vec<Arc<OidBucket>>,
}

impl OidMap {
    fn new() -> OidMap {
        OidMap {
            buckets: (0..OID_BUCKETS).map(|_| Arc::new(HashMap::new())).collect(),
        }
    }

    fn bucket(oid: Oid) -> usize {
        (oid.0 % OID_BUCKETS) as usize
    }

    fn get(&self, oid: Oid) -> Option<&(Arc<str>, Arc<str>)> {
        self.buckets[Self::bucket(oid)].get(&oid)
    }

    fn insert(&mut self, oid: Oid, schema: Arc<str>, class: Arc<str>) {
        Arc::make_mut(&mut self.buckets[Self::bucket(oid)]).insert(oid, (schema, class));
    }

    fn remove(&mut self, oid: Oid) {
        Arc::make_mut(&mut self.buckets[Self::bucket(oid)]).remove(&oid);
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Every (oid, schema, class), in OID order.
    fn entries_sorted(&self) -> Vec<(Oid, Arc<str>, Arc<str>)> {
        let mut out: Vec<_> = self
            .buckets
            .iter()
            .flat_map(|b| b.iter().map(|(o, (s, c))| (*o, s.clone(), c.clone())))
            .collect();
        out.sort_by_key(|(o, _, _)| *o);
        out
    }
}

// ---------------------------------------------------------------------------
// DbSnapshot
// ---------------------------------------------------------------------------

/// An immutable point-in-time view of the database, safe to read from
/// any thread without locks. Obtained from [`DbStore::snapshot`] or a
/// pinned [`DbReader`].
pub struct DbSnapshot {
    epoch: Epoch,
    name: Arc<str>,
    catalog: Arc<Catalog>,
    partitions: HashMap<(String, String), Arc<ClassPartition>>,
    locator: OidMap,
    methods: Arc<HashMap<(String, String), MethodFn>>,
}

/// Resolves `Ref` attributes against a pinned snapshot so registered
/// method bodies run on the lock-free read path.
struct SnapshotResolver<'a> {
    snap: &'a DbSnapshot,
}

impl RefResolver for SnapshotResolver<'_> {
    fn resolve(&mut self, oid: Oid) -> Result<Instance> {
        self.snap.peek(oid)
    }
}

impl DbSnapshot {
    /// The epoch this snapshot was published under.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The structurally-shared partition map (delta shipping compares
    /// partitions by `Arc` identity to find what a span of epochs
    /// touched).
    pub(crate) fn partitions(&self) -> &HashMap<(String, String), Arc<ClassPartition>> {
        &self.partitions
    }

    /// The shared method registry (replicas reuse the primary's bodies —
    /// code does not travel in frames).
    pub(crate) fn methods_arc(&self) -> Arc<HashMap<(String, String), MethodFn>> {
        Arc::clone(&self.methods)
    }

    /// The shared catalog (delta shipping compares catalogs by `Arc`
    /// identity to decide whether schemas must travel).
    pub(crate) fn catalog_arc(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All schema definitions (snapshot dumps, weak integration).
    pub fn schemas(&self) -> Vec<SchemaDef> {
        self.catalog
            .schema_names()
            .into_iter()
            .map(|n| self.catalog.schema(n).expect("listed schema").clone())
            .collect()
    }

    /// Schema and class of a stored object.
    pub fn locate(&self, oid: Oid) -> Option<(&str, &str)> {
        self.locator.get(oid).map(|(s, c)| (&**s, &**c))
    }

    /// Total stored objects.
    pub fn object_count(&self) -> usize {
        self.locator.len()
    }

    /// Number of stored instances of a class (own extent only).
    pub fn extent_size(&self, schema: &str, class: &str) -> usize {
        self.partitions
            .get(&(schema.to_string(), class.to_string()))
            .map(|p| p.len())
            .unwrap_or(0)
    }

    fn partition(&self, schema: &str, class: &str) -> Result<&Arc<ClassPartition>> {
        self.partitions
            .get(&(schema.to_string(), class.to_string()))
            .ok_or_else(|| GeoDbError::UnknownClass(class.to_string()))
    }

    /// `Get_Schema` primitive against the pinned view.
    pub fn get_schema(&self, schema: &str) -> Result<SchemaDef> {
        let _span = obs::span("geodb.get_schema");
        query_failpoint()?;
        let def = self.catalog.schema(schema)?.clone();
        obs::counter_add("geodb.queries", 1);
        Ok(def)
    }

    /// `Get_Class` primitive: the class extension (pass `with_subclasses`
    /// for the polymorphic extension), in insertion order per class.
    pub fn get_class(
        &self,
        schema: &str,
        class: &str,
        with_subclasses: bool,
    ) -> Result<Vec<Instance>> {
        let _span = obs::span("geodb.get_class");
        query_failpoint()?;
        self.catalog.class(schema, class)?;
        let mut classes = vec![class.to_string()];
        if with_subclasses {
            let mut queue = vec![class.to_string()];
            while let Some(c) = queue.pop() {
                for sub in self.catalog.subclasses(schema, &c)? {
                    classes.push(sub.name.clone());
                    queue.push(sub.name.clone());
                }
            }
        }
        let mut out = Vec::new();
        for c in &classes {
            if let Some(part) = self.partitions.get(&(schema.to_string(), c.clone())) {
                for oid in &part.order {
                    out.push((**part.get(*oid).expect("ordered oid present")).clone());
                }
            }
        }
        if obs::enabled() {
            obs::counter_add("geodb.queries", 1);
            obs::counter_add("geodb.instances_fetched", out.len() as u64);
        }
        Ok(out)
    }

    /// `Get_Value` primitive: fetch one instance.
    pub fn get_value(&self, oid: Oid) -> Result<Instance> {
        let _span = obs::span("geodb.get_value");
        query_failpoint()?;
        let inst = self.peek(oid)?;
        if obs::enabled() {
            obs::counter_add("geodb.queries", 1);
            obs::counter_add("geodb.instances_fetched", 1);
        }
        Ok(inst)
    }

    /// Fetch without counters (internal plumbing, rendering).
    pub fn peek(&self, oid: Oid) -> Result<Instance> {
        let (schema, class) = self.locator.get(oid).ok_or(GeoDbError::UnknownOid(oid.0))?;
        let part = self
            .partitions
            .get(&(schema.to_string(), class.to_string()))
            .ok_or(GeoDbError::UnknownOid(oid.0))?;
        part.get(oid)
            .map(|i| (**i).clone())
            .ok_or(GeoDbError::UnknownOid(oid.0))
    }

    /// Selection with optional spatial-index acceleration; returns the
    /// rows plus the stats [`Database::last_query_stats`] would report.
    pub fn select_with_stats(
        &self,
        schema: &str,
        class: &str,
        pred: &Predicate,
    ) -> Result<(Vec<Instance>, QueryStats)> {
        let _span = obs::span("geodb.select");
        query_failpoint()?;
        self.catalog.class(schema, class)?;
        let part = self.partition(schema, class)?;
        let window = pred.index_window();
        let (candidates, index_used): (Vec<Oid>, bool) = match (&part.spatial, &window) {
            (Some(idx), Some((attr, rect))) if Some(attr.as_str()) == part.geom_attr.as_deref() => {
                (idx.query_rect(rect), true)
            }
            _ => (part.order.clone(), false),
        };
        let n_candidates = candidates.len();
        let mut out = Vec::new();
        for oid in candidates {
            let inst = part.get(oid).expect("candidate oid present");
            if pred.eval(inst) {
                out.push((**inst).clone());
            }
        }
        out.sort_by_key(|i| i.oid);
        let stats = QueryStats {
            candidates: n_candidates,
            returned: out.len(),
            index_used,
        };
        if obs::enabled() {
            obs::counter_add("geodb.queries", 1);
            obs::counter_add("geodb.instances_fetched", n_candidates as u64);
            obs::counter_add(
                if index_used {
                    "geodb.index_hits"
                } else {
                    "geodb.index_scans"
                },
                1,
            );
        }
        Ok((out, stats))
    }

    /// Selection without the stats.
    pub fn select(&self, schema: &str, class: &str, pred: &Predicate) -> Result<Vec<Instance>> {
        self.select_with_stats(schema, class, pred).map(|(r, _)| r)
    }

    /// Aggregate an attribute over the (optionally filtered) extension.
    pub fn aggregate(
        &self,
        schema: &str,
        class: &str,
        path: &str,
        agg: Aggregate,
        pred: &Predicate,
    ) -> Result<Value> {
        let rows = self.select(schema, class, pred)?;
        aggregate_rows(&rows, path, agg)
    }

    /// k-nearest-neighbour query (exact re-rank of index candidates).
    pub fn nearest(&self, schema: &str, class: &str, p: Point, k: usize) -> Result<Vec<Instance>> {
        self.catalog.class(schema, class)?;
        let part = self.partition(schema, class)?;
        let geom_attr = part.geom_attr.clone().ok_or_else(|| {
            GeoDbError::InvalidQuery(format!("class `{class}` has no geometry attribute"))
        })?;
        let candidates: Vec<Oid> = match &part.spatial {
            Some(idx) => idx.nearest(&p, (2 * k).max(8)),
            None => part.order.clone(),
        };
        let mut ranked: Vec<(f64, Instance)> = Vec::with_capacity(candidates.len());
        for oid in candidates {
            let inst = part.get(oid).expect("candidate oid present");
            if let Some(g) = inst.get(&geom_attr).as_geometry() {
                ranked.push((g.distance_to_point(&p), (**inst).clone()));
            }
        }
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
        ranked.truncate(k);
        Ok(ranked.into_iter().map(|(_, i)| i).collect())
    }

    /// Spatial window shortcut: everything intersecting `rect`.
    pub fn window_query(&self, schema: &str, class: &str, rect: Rect) -> Result<Vec<Instance>> {
        let part = self.partition(schema, class)?;
        let attr = part.geom_attr.clone().ok_or_else(|| {
            GeoDbError::InvalidQuery(format!("class `{class}` has no geometry attribute"))
        })?;
        self.select(schema, class, &Predicate::IntersectsRect { attr, rect })
    }

    /// Invoke a registered method body against the pinned view.
    pub fn call_method(&self, inst: &Instance, method: &str, args: &[Value]) -> Result<Value> {
        let f = self
            .methods
            .get(&(inst.class.clone(), method.to_string()))
            .cloned()
            .ok_or_else(|| GeoDbError::UnknownMethod {
                class: inst.class.clone(),
                method: method.to_string(),
            })?;
        let mut resolver = SnapshotResolver { snap: self };
        f(&mut resolver, inst, args)
    }

    /// Every stored object with its schema, in OID order (snapshot dump).
    pub fn dump_objects(&self) -> Vec<(String, Instance)> {
        self.locator
            .entries_sorted()
            .into_iter()
            .map(|(oid, schema, class)| {
                let inst = self
                    .partitions
                    .get(&(schema.to_string(), class.to_string()))
                    .and_then(|p| p.get(oid))
                    .expect("located instance present in partition");
                (schema.to_string(), (**inst).clone())
            })
            .collect()
    }

    /// Approximate logical data footprint: serialized bytes of every
    /// stored instance. One snapshot's worth is what *all* shards share;
    /// the per-copy model of the old serving layer paid this per shard.
    pub fn approx_data_bytes(&self) -> usize {
        self.locator
            .entries_sorted()
            .iter()
            .filter_map(|(oid, schema, class)| {
                self.partitions
                    .get(&(schema.to_string(), class.to_string()))
                    .and_then(|p| p.get(*oid))
                    .and_then(|i| serde_json::to_vec(&**i).ok())
                    .map(|b| b.len())
            })
            .sum()
    }
}

impl std::fmt::Debug for DbSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbSnapshot")
            .field("epoch", &self.epoch)
            .field("name", &self.name)
            .field("objects", &self.locator.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// DbStore
// ---------------------------------------------------------------------------

/// Result of a committed write: the closure's value, the database events
/// it produced (for the active mechanism), and the epoch the resulting
/// snapshot was published under.
#[derive(Debug)]
pub struct Committed<R> {
    pub value: R,
    pub events: Vec<DbEvent>,
    pub epoch: Epoch,
}

/// The role-agnostic partition mirror of a [`Database`]: catalog,
/// structurally-shared class partitions and the OID locator. The
/// primary's writer folds committed events into it; a replica folds
/// applied frames into its own through the same code.
pub(crate) struct Mirror {
    name: Arc<str>,
    catalog: Arc<Catalog>,
    parts: HashMap<(String, String), Arc<ClassPartition>>,
    locator: OidMap,
    /// Interned schema/class names for locator entries.
    interned: HashMap<String, Arc<str>>,
}

impl Mirror {
    pub(crate) fn new() -> Mirror {
        Mirror {
            name: Arc::from(""),
            catalog: Arc::new(Catalog::new()),
            parts: HashMap::new(),
            locator: OidMap::new(),
            interned: HashMap::new(),
        }
    }

    fn intern(&mut self, s: &str) -> Arc<str> {
        if let Some(a) = self.interned.get(s) {
            return a.clone();
        }
        let a: Arc<str> = Arc::from(s);
        self.interned.insert(s.to_string(), a.clone());
        a
    }

    /// Full capture of the database (initial snapshot, restore, replica
    /// full sync).
    pub(crate) fn capture_all(&mut self, db: &mut Database) -> Result<()> {
        self.name = Arc::from(db.name());
        self.catalog = Arc::new(db.catalog().clone());
        self.parts.clear();
        self.locator = OidMap::new();
        for key in db.extent_keys() {
            let cap = db.capture_extent(&key.0, &key.1)?;
            let part = ClassPartition::from_capture(cap);
            let (schema_a, class_a) = (self.intern(&key.0), self.intern(&key.1));
            for oid in &part.order {
                self.locator.insert(*oid, schema_a.clone(), class_a.clone());
            }
            self.parts.insert(key, Arc::new(part));
        }
        Ok(())
    }

    /// Refresh the catalog mirror and capture any extents that have no
    /// partition yet (new schemas). Returns the freshly captured keys —
    /// their captures already reflect the current database state.
    pub(crate) fn capture_new_extents(
        &mut self,
        db: &mut Database,
    ) -> Result<HashSet<(String, String)>> {
        let mut fresh: HashSet<(String, String)> = HashSet::new();
        self.catalog = Arc::new(db.catalog().clone());
        for key in db.extent_keys() {
            if !self.parts.contains_key(&key) {
                let cap = db.capture_extent(&key.0, &key.1)?;
                self.parts
                    .insert(key.clone(), Arc::new(ClassPartition::from_capture(cap)));
                fresh.insert(key);
            }
        }
        Ok(fresh)
    }

    /// Recapture one extent wholesale, replacing its partition and
    /// locator entries (replica delta apply).
    pub(crate) fn recapture(&mut self, db: &mut Database, key: &(String, String)) -> Result<()> {
        if let Some(old) = self.parts.get(key) {
            for oid in old.oids().to_vec() {
                self.locator.remove(oid);
            }
        }
        let cap = db.capture_extent(&key.0, &key.1)?;
        let part = ClassPartition::from_capture(cap);
        let (schema_a, class_a) = (self.intern(&key.0), self.intern(&key.1));
        for oid in &part.order {
            self.locator.insert(*oid, schema_a.clone(), class_a.clone());
        }
        self.parts.insert(key.clone(), Arc::new(part));
        Ok(())
    }

    /// Incremental sync: fold the drained events into the partition map,
    /// rebuilding only what changed.
    pub(crate) fn sync_events(&mut self, db: &mut Database, events: &[DbEvent]) -> Result<()> {
        // New schemas first: refresh the catalog and capture any extents
        // we have no partition for yet. Captures taken here already
        // reflect every event of this write, so data events against
        // freshly captured classes must not be re-applied.
        let fresh = if events
            .iter()
            .any(|e| matches!(e, DbEvent::SchemaRegistered { .. }))
        {
            self.capture_new_extents(db)?
        } else {
            HashSet::new()
        };

        // Locator maintenance in event order; group data events per
        // class as `(oid, removed)` pairs.
        type ClassChanges = Vec<(Oid, bool)>;
        let mut per_class: Vec<((String, String), ClassChanges)> = Vec::new();
        for e in events {
            let (schema, class, oid, removed) = match e {
                DbEvent::Insert { schema, class, oid } | DbEvent::Update { schema, class, oid } => {
                    (schema, class, *oid, false)
                }
                DbEvent::Delete { schema, class, oid } => (schema, class, *oid, true),
                _ => continue,
            };
            if removed {
                self.locator.remove(oid);
            } else {
                let (s, c) = (self.intern(schema), self.intern(class));
                self.locator.insert(oid, s, c);
            }
            let key = (schema.clone(), class.clone());
            match per_class.iter_mut().find(|(k, _)| *k == key) {
                Some((_, evs)) => evs.push((oid, removed)),
                None => per_class.push((key, vec![(oid, removed)])),
            }
        }

        for (key, evs) in per_class {
            if fresh.contains(&key) {
                continue;
            }
            let base = self
                .parts
                .get(&key)
                .ok_or_else(|| GeoDbError::UnknownClass(key.1.clone()))?;
            let mut part = (**base).clone();
            for (oid, removed) in evs {
                if removed {
                    part.remove(oid);
                    continue;
                }
                // An instance inserted and deleted within the same write
                // is already gone from the database; treat it as removed.
                match db.fetch_instance(&key.0, &key.1, oid) {
                    Ok(inst) => part.upsert(inst),
                    Err(GeoDbError::UnknownOid(_)) => part.remove(oid),
                    Err(e) => return Err(e),
                }
            }
            self.parts.insert(key, Arc::new(part));
        }
        Ok(())
    }

    /// Derive the redo operations of one committed write: the final
    /// image of every touched object (events carry only identities, so
    /// the post-images come from the freshly synced partition mirror),
    /// preceded by any schemas registered during the write. Ops are
    /// post-state, making WAL replay idempotent.
    fn redo_ops(&self, events: &[DbEvent]) -> Vec<WalOp> {
        let mut ops = Vec::new();
        let mut touched: Vec<(String, String, Oid)> = Vec::new();
        let mut seen: HashSet<Oid> = HashSet::new();
        for e in events {
            match e {
                DbEvent::SchemaRegistered { schema } => {
                    if let Ok(def) = self.catalog.schema(schema) {
                        ops.push(WalOp::Schema { def: def.clone() });
                    }
                }
                DbEvent::Insert { schema, class, oid }
                | DbEvent::Update { schema, class, oid }
                | DbEvent::Delete { schema, class, oid }
                    if seen.insert(*oid) =>
                {
                    touched.push((schema.clone(), class.clone(), *oid));
                }
                _ => {}
            }
        }
        for (schema, class, oid) in touched {
            match self
                .parts
                .get(&(schema.clone(), class))
                .and_then(|p| p.get(oid))
            {
                Some(inst) => ops.push(WalOp::Upsert {
                    schema,
                    instance: (**inst).clone(),
                }),
                None => ops.push(WalOp::Delete { oid }),
            }
        }
        ops
    }

    pub(crate) fn build_snapshot(
        &self,
        epoch: Epoch,
        methods: Arc<HashMap<(String, String), MethodFn>>,
    ) -> DbSnapshot {
        DbSnapshot {
            epoch,
            name: self.name.clone(),
            catalog: self.catalog.clone(),
            partitions: self.parts.clone(),
            locator: self.locator.clone(),
            methods,
        }
    }
}

struct WriterState {
    db: Database,
    /// Subscription to the database's live event stream. The writer syncs
    /// partitions from here — not from `drain_events` — so a write closure
    /// that drains the queue itself (several `custlang` helpers do) cannot
    /// starve the incremental sync.
    events_rx: Receiver<DbEvent>,
    mirror: Mirror,
    /// Last epoch *assigned* (not necessarily published yet — with group
    /// commit the leader publishes a batch's newest epoch after the WAL
    /// fsync). Assigning under the writer lock keeps WAL records in
    /// strict epoch order.
    seq: Epoch,
}

impl WriterState {
    /// Drop events already emitted (pre-wrap activity, reads by an
    /// earlier failed write) from both the queue and the subscription.
    fn discard_pending_events(&mut self) {
        self.db.drain_events();
        while self.events_rx.try_recv().is_ok() {}
    }

    /// Collect everything the last closure emitted, regardless of
    /// whether it drained the database's own queue along the way.
    fn take_events(&mut self) -> Vec<DbEvent> {
        self.db.drain_events();
        let mut events = Vec::new();
        while let Ok(e) = self.events_rx.try_recv() {
            events.push(e);
        }
        events
    }

    fn build_snapshot(&self, epoch: Epoch) -> DbSnapshot {
        self.mirror
            .build_snapshot(epoch, Arc::new(self.db.methods_map()))
    }
}

/// One write waiting in the group-commit queue: its assigned epoch and
/// snapshot, plus the already-encoded WAL frame payload.
struct PendingCommit {
    epoch: Epoch,
    next_oid: u64,
    snap: Arc<DbSnapshot>,
    payload: Vec<u8>,
}

/// Group-commit coordination: the pending queue (epoch-ordered — writes
/// enqueue while still holding the writer lock), the single-leader
/// flag, and the durable frontier.
#[derive(Default)]
struct CommitState {
    queue: Vec<PendingCommit>,
    leader_active: bool,
    /// Highest epoch whose WAL record is fsynced and published.
    durable_epoch: Epoch,
    /// The durable frontier's snapshot + OID allocator (checkpoints).
    durable: Option<(Arc<DbSnapshot>, u64)>,
    /// Set when a WAL append/fsync/publish failed: the crash model. All
    /// later writes fail fast; reads keep serving the last epoch.
    failed: Option<String>,
}

/// The role-agnostic read surface of a store: the published snapshot
/// slot, the epoch watermark, the reader-pin registry and the retained
/// ring with its GC. Both the primary [`DbStore`] and the replica
/// [`crate::repl::ReplicaStore`] own one; [`DbReader`] pins work against
/// either.
pub(crate) struct ReadCore {
    published: Mutex<Arc<DbSnapshot>>,
    epoch: AtomicU64,
    /// Pins per epoch (session readers *and* attached replicas); the
    /// smallest key is the pin watermark.
    pins: Mutex<BTreeMap<Epoch, usize>>,
    /// Recently published snapshots, oldest first, trimmed to the pin
    /// watermark and `max_retained`.
    retained: Mutex<VecDeque<Arc<DbSnapshot>>>,
    max_retained: AtomicU64,
}

/// Default bound on the retained-snapshot ring.
const DEFAULT_MAX_RETAINED: u64 = 8;

impl ReadCore {
    pub(crate) fn new(snap: Arc<DbSnapshot>) -> ReadCore {
        let epoch = snap.epoch();
        ReadCore {
            published: Mutex::new(snap.clone()),
            epoch: AtomicU64::new(epoch.get()),
            pins: Mutex::new(BTreeMap::new()),
            retained: Mutex::new(VecDeque::from([snap])),
            max_retained: AtomicU64::new(DEFAULT_MAX_RETAINED),
        }
    }

    pub(crate) fn epoch(&self) -> Epoch {
        Epoch(self.epoch.load(Ordering::Acquire))
    }

    pub(crate) fn snapshot(&self) -> Arc<DbSnapshot> {
        Arc::clone(&lock(&self.published))
    }

    pub(crate) fn pin_add(&self, epoch: Epoch) {
        *lock(&self.pins).entry(epoch).or_insert(0) += 1;
    }

    /// Atomically move a pin between epochs (reader re-pin, replica
    /// apply) so the watermark never transiently drops coverage.
    pub(crate) fn pin_move(&self, from: Epoch, to: Epoch) {
        if from == to {
            return;
        }
        let mut pins = lock(&self.pins);
        if let Some(n) = pins.get_mut(&from) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&from);
            }
        }
        *pins.entry(to).or_insert(0) += 1;
    }

    /// Release one pin and trim the retained ring (dropping the last
    /// pin on an old epoch frees its partitions promptly). Lock order:
    /// retained before pins.
    pub(crate) fn pin_release(&self, epoch: Epoch) {
        let mut ret = lock(&self.retained);
        {
            let mut pins = lock(&self.pins);
            if let Some(n) = pins.get_mut(&epoch) {
                *n -= 1;
                if *n == 0 {
                    pins.remove(&epoch);
                }
            }
        }
        self.trim_retained(&mut ret);
    }

    /// Drop retained snapshots below the pin watermark (nothing can
    /// re-pin them) and enforce the hard cap. Callers hold `retained`.
    fn trim_retained(&self, ret: &mut VecDeque<Arc<DbSnapshot>>) {
        let newest = match ret.back() {
            Some(s) => s.epoch(),
            None => return,
        };
        let floor = lock(&self.pins).keys().next().copied().unwrap_or(newest);
        while ret.len() > 1 && ret.front().map(|s| s.epoch()) < Some(floor.min(newest)) {
            ret.pop_front();
        }
        let cap = self.max_retained.load(Ordering::Relaxed).max(1) as usize;
        while ret.len() > cap {
            ret.pop_front();
        }
        if obs::enabled() {
            obs::gauge_set("db.epochs_retained", ret.len() as u64);
        }
    }

    /// Swap the published slot to `snap` if it advances the epoch
    /// (monotonic — a stale epoch is ignored) and retain it for pinned
    /// readers. Returns the previous epoch when the publish took.
    pub(crate) fn publish(&self, snap: Arc<DbSnapshot>) -> Option<Epoch> {
        let epoch = snap.epoch();
        let prev = {
            let mut slot = lock(&self.published);
            let prev = slot.epoch();
            if prev >= epoch {
                return None;
            }
            *slot = snap.clone();
            self.epoch.store(epoch.get(), Ordering::Release);
            prev
        };
        {
            let mut ret = lock(&self.retained);
            ret.push_back(snap);
            self.trim_retained(&mut ret);
        }
        Some(prev)
    }

    pub(crate) fn pin_count(&self) -> usize {
        lock(&self.pins).values().sum()
    }

    pub(crate) fn pin_watermark(&self) -> Option<Epoch> {
        lock(&self.pins).keys().next().copied()
    }

    pub(crate) fn epochs_retained(&self) -> usize {
        lock(&self.retained).len()
    }

    pub(crate) fn snapshot_at(&self, epoch: Epoch) -> Option<Arc<DbSnapshot>> {
        lock(&self.retained)
            .iter()
            .find(|s| s.epoch() == epoch)
            .cloned()
    }

    pub(crate) fn set_retention(&self, cap: usize) {
        self.max_retained
            .store(cap.max(1) as u64, Ordering::Relaxed);
        let mut ret = lock(&self.retained);
        self.trim_retained(&mut ret);
    }

    /// A pinned reader starting at the current snapshot.
    pub(crate) fn reader(self: &Arc<Self>) -> DbReader {
        let snap = self.snapshot();
        let epoch = snap.epoch();
        self.pin_add(epoch);
        DbReader {
            core: Arc::clone(self),
            snap,
            epoch,
        }
    }
}

struct StoreShared {
    writer: Mutex<WriterState>,
    core: Arc<ReadCore>,
    /// The attached WAL (`None` = volatile store).
    wal: Mutex<Option<Wal>>,
    /// Mirror of `wal.is_some()` so the write path can branch without
    /// touching the WAL lock.
    wal_attached: AtomicBool,
    /// Mirror of the attached WAL's record format (true = binary
    /// frames), for the same lock-free reason.
    wal_binary: AtomicBool,
    /// Group-commit window in nanoseconds (copied from the WAL config
    /// at attach; leaders read it without the WAL lock).
    group_window_nanos: AtomicU64,
    commit: Mutex<CommitState>,
    commit_cv: Condvar,
    /// Writers currently inside `write()` — the leader's heuristic for
    /// whether waiting the group window can grow the batch.
    active_writers: AtomicU64,
    /// Epoch-publish subscribers (replication shippers). Senders that
    /// disconnected are dropped at the next publish.
    subscribers: Mutex<Vec<Sender<Epoch>>>,
}

/// Shared handle to the versioned store. Cheap to clone; all clones see
/// the same data and epochs. Writes are serialized through the handle;
/// reads go through [`DbStore::snapshot`] or a [`DbReader`] pin and
/// never take the writer lock.
#[derive(Clone)]
pub struct DbStore {
    shared: Arc<StoreShared>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic inside a write closure is contained by the serving layer;
    // the store itself stays usable (partial mutations were already
    // synced on the next publish).
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl DbStore {
    /// Wrap a database into a shared versioned store, publishing epoch 1.
    ///
    /// # Panics
    /// Panics if the initial capture fails, which requires the backing
    /// storage to be corrupt (in-memory databases cannot fail here).
    pub fn new(db: Database) -> DbStore {
        Self::new_at(db, Epoch(1))
    }

    /// Wrap a database publishing at an arbitrary starting epoch
    /// (crash recovery resumes where the durable history ended).
    fn new_at(mut db: Database, epoch: Epoch) -> DbStore {
        let epoch = epoch.max(Epoch(1));
        let events_rx = db.subscribe();
        let mut w = WriterState {
            db,
            events_rx,
            mirror: Mirror::new(),
            seq: epoch,
        };
        w.discard_pending_events();
        w.mirror
            .capture_all(&mut w.db)
            .expect("initial snapshot capture");
        let snap = Arc::new(w.build_snapshot(epoch));
        if obs::enabled() {
            obs::counter_add("db.snapshot_publishes", 1);
            obs::counter_add("db.epoch", 1);
        }
        DbStore {
            shared: Arc::new(StoreShared {
                writer: Mutex::new(w),
                core: Arc::new(ReadCore::new(snap)),
                wal: Mutex::new(None),
                wal_attached: AtomicBool::new(false),
                wal_binary: AtomicBool::new(true),
                group_window_nanos: AtomicU64::new(0),
                commit: Mutex::new(CommitState::default()),
                commit_cv: Condvar::new(),
                active_writers: AtomicU64::new(0),
                subscribers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Resume a recovered database at its last durable epoch with the
    /// (truncated, reopened) WAL attached — the [`crate::wal::recover`]
    /// constructor.
    pub(crate) fn resume(db: Database, epoch: Epoch, wal: Wal) -> DbStore {
        let store = Self::new_at(db, epoch);
        let snap = store.snapshot();
        let next_oid = {
            let w = lock(&store.shared.writer);
            w.db.next_oid()
        };
        let window = wal.config().group_window;
        let binary = wal.config().record_format == wal::WalFormat::Binary;
        {
            // Lock order: wal before commit.
            let mut wal_slot = lock(&store.shared.wal);
            let mut c = lock(&store.shared.commit);
            c.durable_epoch = snap.epoch();
            c.durable = Some((snap, next_oid));
            *wal_slot = Some(wal);
        }
        store
            .shared
            .group_window_nanos
            .store(window.as_nanos() as u64, Ordering::Relaxed);
        store.shared.wal_binary.store(binary, Ordering::Relaxed);
        store.shared.wal_attached.store(true, Ordering::Relaxed);
        store
    }

    /// The current published epoch.
    pub fn epoch(&self) -> Epoch {
        self.shared.core.epoch()
    }

    /// The current published snapshot (one lock on the published slot;
    /// use a [`DbReader`] on hot paths to avoid even that).
    pub fn snapshot(&self) -> Arc<DbSnapshot> {
        self.shared.core.snapshot()
    }

    /// A pinned reader starting at the current snapshot. The pin is
    /// registered in the retention watermark: the pinned epoch's
    /// snapshot stays retained (up to the hard cap) until the reader
    /// drops or re-pins forward.
    pub fn reader(&self) -> DbReader {
        self.shared.core.reader()
    }

    /// Reader pins currently held (see [`DbStore::pin_count`]). Raw
    /// `snapshot()` `Arc` clones are intentionally *not* counted — only
    /// [`DbReader`] pins (and attached replicas) participate in the
    /// retention watermark.
    pub fn pinned_snapshots(&self) -> usize {
        self.pin_count()
    }

    /// Number of live [`DbReader`] pins across all epochs (replicas
    /// included — each attached replica holds one pin at its applied
    /// epoch).
    pub fn pin_count(&self) -> usize {
        self.shared.core.pin_count()
    }

    /// The oldest epoch any reader still pins (`None` when unpinned).
    /// Retention never trims at or above this watermark (up to the
    /// hard cap).
    pub fn pin_watermark(&self) -> Option<Epoch> {
        self.shared.core.pin_watermark()
    }

    /// Snapshots currently retained for pinned readers and epoch reads
    /// (the `db.epochs_retained` gauge).
    pub fn epochs_retained(&self) -> usize {
        self.shared.core.epochs_retained()
    }

    /// A retained snapshot by epoch, if the ring still holds it.
    pub fn snapshot_at(&self, epoch: Epoch) -> Option<Arc<DbSnapshot>> {
        self.shared.core.snapshot_at(epoch)
    }

    /// Bound the retained-snapshot ring (min 1 = current only).
    pub fn set_retention(&self, cap: usize) {
        self.shared.core.set_retention(cap)
    }

    /// The role-agnostic read core (replication plumbing).
    pub(crate) fn core(&self) -> &Arc<ReadCore> {
        &self.shared.core
    }

    /// Subscribe to epoch publishes: the receiver yields every epoch
    /// this store publishes from now on (replication shippers block on
    /// it instead of polling). The sender is a handle into the *same*
    /// channel, so the subscriber's owner can wake the consumer — e.g.
    /// with a shutdown sentinel — without waiting for the next publish.
    pub fn subscribe_epochs(&self) -> (Sender<Epoch>, Receiver<Epoch>) {
        let (tx, rx) = crossbeam::channel::unbounded();
        lock(&self.shared.subscribers).push(tx.clone());
        (tx, rx)
    }

    /// Current OID allocator position (brief writer lock). Replication
    /// frames carry it so a promoted replica never re-mints OIDs; taken
    /// *after* the target snapshot it can only over-shoot, which
    /// [`Database::set_next_oid`]'s max semantics absorb.
    pub(crate) fn next_oid_hint(&self) -> u64 {
        lock(&self.shared.writer).db.next_oid()
    }

    /// Execute a write against the one mutable [`Database`], then sync
    /// the touched partitions and publish the next epoch. The snapshot
    /// is republished even when the closure errors partway (the database
    /// may have partially mutated), so published state never diverges
    /// from the writer database — and with a WAL attached the batch is
    /// logged exactly as published before the error propagates.
    ///
    /// Durable stores acknowledge only after the record is fsynced and
    /// the epoch published (group commit may batch several writers into
    /// one fsync). `Committed::epoch` is this write's own epoch; the
    /// published epoch may already be higher if the batch carried later
    /// writes.
    pub fn write<R>(&self, f: impl FnOnce(&mut Database) -> Result<R>) -> Result<Committed<R>> {
        self.shared.active_writers.fetch_add(1, Ordering::Relaxed);
        let out = self.write_inner(f);
        self.shared.active_writers.fetch_sub(1, Ordering::Relaxed);
        out
    }

    fn write_inner<R>(&self, f: impl FnOnce(&mut Database) -> Result<R>) -> Result<Committed<R>> {
        let mut w = lock(&self.shared.writer);
        self.check_poisoned()?;
        let t0 = Instant::now();
        w.discard_pending_events();
        let value = f(&mut w.db);
        let events = w.take_events();
        let WriterState { db, mirror, .. } = &mut *w;
        mirror.sync_events(db, &events)?;
        w.seq = w.seq.next();
        let epoch = w.seq;
        let snap = Arc::new(w.build_snapshot(epoch));
        if self.shared.wal_attached.load(Ordering::Relaxed) {
            let record = WalRecord {
                epoch,
                next_oid: w.db.next_oid(),
                events: events.clone(),
                ops: w.mirror.redo_ops(&events),
            };
            let format = if self.shared.wal_binary.load(Ordering::Relaxed) {
                wal::WalFormat::Binary
            } else {
                wal::WalFormat::Json
            };
            let payload = wal::encode_payload_with(&record, format)?;
            // Enqueue while still holding the writer lock: the commit
            // queue (and therefore the WAL) stays in strict epoch order.
            let c = lock(&self.shared.commit);
            let mut c = c;
            c.queue.push(PendingCommit {
                epoch,
                next_oid: record.next_oid,
                snap,
                payload,
            });
            drop(w);
            self.commit_wait(c, epoch, t0)?;
        } else {
            // Volatile path: publish under the writer lock, exactly the
            // pre-WAL behavior.
            self.publish_snapshot(snap, t0);
            drop(w);
        }
        let value = value?;
        Ok(Committed {
            value,
            events,
            epoch,
        })
    }

    /// Wait until `my_epoch` is durable + published, becoming the
    /// group-commit leader if no one holds that role. The leader drains
    /// the queue (optionally waiting the group window for writers still
    /// in flight), appends every record, fsyncs once, publishes the
    /// newest snapshot, and wakes the followers.
    fn commit_wait(
        &self,
        mut c: MutexGuard<'_, CommitState>,
        my_epoch: Epoch,
        t0: Instant,
    ) -> Result<()> {
        loop {
            if let Some(reason) = &c.failed {
                return Err(store_poisoned(reason));
            }
            if c.durable_epoch >= my_epoch {
                return Ok(());
            }
            if !c.leader_active {
                c.leader_active = true;
                break;
            }
            c = self
                .shared
                .commit_cv
                .wait(c)
                .unwrap_or_else(|e| e.into_inner());
        }
        // Leader. If writers beyond the queued ones are mid-`write`,
        // give them one window to join this batch.
        let window = Duration::from_nanos(self.shared.group_window_nanos.load(Ordering::Relaxed));
        if !window.is_zero()
            && (self.shared.active_writers.load(Ordering::Relaxed) as usize) > c.queue.len()
        {
            let (c2, _) = self
                .shared
                .commit_cv
                .wait_timeout(c, window)
                .unwrap_or_else(|e| e.into_inner());
            c = c2;
        }
        let batch = std::mem::take(&mut c.queue);
        drop(c);
        let flushed = self.flush_batch(&batch, t0);
        let mut c = lock(&self.shared.commit);
        c.leader_active = false;
        match flushed {
            Ok(()) => {
                let last = batch.last().expect("own commit queued");
                c.durable_epoch = c.durable_epoch.max(last.epoch);
                c.durable = Some((last.snap.clone(), last.next_oid));
            }
            Err(e) => c.failed = Some(e.to_string()),
        }
        self.shared.commit_cv.notify_all();
        if let Some(reason) = &c.failed {
            return Err(store_poisoned(reason));
        }
        debug_assert!(c.durable_epoch >= my_epoch);
        Ok(())
    }

    /// Append + fsync + publish one batch. Runs with the WAL lock held
    /// and the commit lock released, so the next group can form while
    /// this one is on the disk.
    fn flush_batch(&self, batch: &[PendingCommit], t0: Instant) -> Result<()> {
        let mut wal_slot = lock(&self.shared.wal);
        let w = wal_slot
            .as_mut()
            .ok_or_else(|| GeoDbError::Storage("WAL detached mid-commit".into()))?;
        {
            let _span = obs::span("db.wal_append");
            for p in batch {
                w.append_frame(&p.payload)?;
            }
        }
        {
            let _span = obs::span("db.wal_fsync");
            w.sync()?;
        }
        w.note_group(batch.len() as u64);
        if obs::enabled() {
            obs::counter_add("db.wal_records", batch.len() as u64);
            obs::counter_add("db.wal_fsyncs", 1);
            obs::record_value("db.wal_group_size", batch.len() as u64);
            let mut bytes = 0u64;
            for p in batch {
                obs::record_value("db.wal_commit_bytes", p.payload.len() as u64);
                bytes += p.payload.len() as u64;
            }
            obs::counter_add("db.wal_bytes_written", bytes);
        }
        // The crash point between durability and visibility.
        faultsim::fire("db.publish").map_err(|f| GeoDbError::Storage(f.to_string()))?;
        let last = batch.last().expect("non-empty batch");
        self.publish_snapshot(last.snap.clone(), t0);
        if w.should_checkpoint() {
            let json = crate::snapshot::save_snapshot(&last.snap)?;
            w.checkpoint(&json, last.epoch, last.next_oid)?;
        }
        Ok(())
    }

    /// Replace the store's entire contents from a freshly loaded
    /// database (snapshot restore), publishing a fresh epoch. On a
    /// durable store the restore is checkpointed immediately (the WAL
    /// history below it is obsolete and truncates with the checkpoint).
    pub fn replace(&self, db: Database) -> Result<Epoch> {
        let mut w = lock(&self.shared.writer);
        self.check_poisoned()?;
        let t0 = Instant::now();
        w.db = db;
        w.events_rx = w.db.subscribe();
        w.discard_pending_events();
        w.mirror = Mirror::new();
        let WriterState { db, mirror, .. } = &mut *w;
        mirror.capture_all(db)?;
        w.seq = w.seq.next();
        let epoch = w.seq;
        let snap = Arc::new(w.build_snapshot(epoch));
        if self.shared.wal_attached.load(Ordering::Relaxed) {
            let json = crate::snapshot::save_snapshot(&snap)?;
            let next_oid = w.db.next_oid();
            let mut wal_slot = lock(&self.shared.wal);
            if let Some(wal) = wal_slot.as_mut() {
                wal.checkpoint(&json, epoch, next_oid)?;
            }
            let mut c = lock(&self.shared.commit);
            c.durable_epoch = c.durable_epoch.max(epoch);
            c.durable = Some((snap.clone(), next_oid));
        }
        self.publish_snapshot(snap, t0);
        Ok(epoch)
    }

    /// Swap the published slot to `snap` (monotonic — a stale epoch is
    /// ignored), retain it for pinned readers, notify replication
    /// subscribers, and record metrics.
    fn publish_snapshot(&self, snap: Arc<DbSnapshot>, t0: Instant) {
        let _span = obs::span("db.publish");
        let epoch = snap.epoch();
        if obs::trace_recording() {
            obs::trace_annotate("epoch", epoch.to_string());
        }
        let Some(prev) = self.shared.core.publish(snap) else {
            return;
        };
        {
            let mut subs = lock(&self.shared.subscribers);
            if !subs.is_empty() {
                subs.retain(|tx| tx.send(epoch).is_ok());
            }
        }
        if obs::enabled() {
            obs::counter_add("db.snapshot_publishes", 1);
            // Keep the epoch counter equal to the epoch value even when
            // a group publish advances it by more than one.
            obs::counter_add("db.epoch", epoch - prev);
            obs::record_nanos("db.publish_latency", t0.elapsed().as_nanos() as u64);
        }
    }

    // -- durability -------------------------------------------------------

    /// Is a WAL attached to this store?
    pub fn wal_attached(&self) -> bool {
        self.shared.wal_attached.load(Ordering::Relaxed)
    }

    /// The reason writes are refused after a WAL failure, if any.
    pub fn poisoned(&self) -> Option<String> {
        lock(&self.shared.commit).failed.clone()
    }

    fn check_poisoned(&self) -> Result<()> {
        match self.poisoned() {
            Some(reason) => Err(store_poisoned(&reason)),
            None => Ok(()),
        }
    }

    /// Attach a write-ahead log to a live store: checkpoints the current
    /// state into `config.dir` (fresh log) and makes every subsequent
    /// write durable. Fails if a WAL is already attached.
    pub fn attach_wal(&self, config: wal::WalConfig) -> Result<()> {
        let w = lock(&self.shared.writer);
        if self.shared.wal_attached.load(Ordering::Relaxed) {
            return Err(GeoDbError::Storage("WAL already attached".into()));
        }
        let snap = self.snapshot();
        let json = crate::snapshot::save_snapshot(&snap)?;
        let next_oid = w.db.next_oid();
        let window = config.group_window;
        let binary = config.record_format == wal::WalFormat::Binary;
        let mut new_wal = Wal::create(config)?;
        new_wal.checkpoint(&json, snap.epoch(), next_oid)?;
        {
            // Lock order: wal before commit.
            let mut wal_slot = lock(&self.shared.wal);
            let mut c = lock(&self.shared.commit);
            c.durable_epoch = snap.epoch();
            c.durable = Some((snap, next_oid));
            c.failed = None;
            *wal_slot = Some(new_wal);
        }
        self.shared
            .group_window_nanos
            .store(window.as_nanos() as u64, Ordering::Relaxed);
        self.shared.wal_binary.store(binary, Ordering::Relaxed);
        self.shared.wal_attached.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Checkpoint the durable frontier: write the snapshot + meta
    /// documents and truncate the log. Returns the checkpoint epoch.
    pub fn checkpoint(&self) -> Result<Epoch> {
        let mut wal_slot = lock(&self.shared.wal);
        let w = wal_slot
            .as_mut()
            .ok_or_else(|| GeoDbError::Storage("no WAL attached".into()))?;
        let (snap, next_oid) = {
            let c = lock(&self.shared.commit);
            if let Some(reason) = &c.failed {
                return Err(store_poisoned(reason));
            }
            c.durable
                .clone()
                .ok_or_else(|| GeoDbError::Storage("no durable state yet".into()))?
        };
        let json = crate::snapshot::save_snapshot(&snap)?;
        w.checkpoint(&json, snap.epoch(), next_oid)?;
        Ok(snap.epoch())
    }

    /// Counters of the attached WAL plus the durable epoch, or `None`
    /// on a volatile store.
    pub fn wal_status(&self) -> Option<(WalStatus, Epoch)> {
        let wal_slot = lock(&self.shared.wal);
        let status = wal_slot.as_ref()?.status();
        let durable = lock(&self.shared.commit).durable_epoch;
        Some((status, durable))
    }

    /// Highest epoch known durable ([`Epoch::ZERO`] on a volatile
    /// store).
    pub fn durable_epoch(&self) -> Epoch {
        lock(&self.shared.commit).durable_epoch
    }

    /// Tune the group-commit window on a live durable store.
    pub fn set_group_window(&self, window: Duration) {
        self.shared
            .group_window_nanos
            .store(window.as_nanos() as u64, Ordering::Relaxed);
    }
}

fn store_poisoned(reason: &str) -> GeoDbError {
    GeoDbError::Storage(format!(
        "store unavailable after WAL failure (recover from disk): {reason}"
    ))
}

impl std::fmt::Debug for DbStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbStore")
            .field("epoch", &self.epoch())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// DbReader
// ---------------------------------------------------------------------------

/// A per-session pin on the published snapshot of *either role* — a
/// primary [`DbStore`] or a [`crate::repl::ReplicaStore`]. `pin()`
/// performs exactly one `Acquire` epoch load in steady state; the
/// published slot's lock is taken only when the epoch moved since the
/// last pin.
///
/// Each reader holds one entry in the owning core's pin registry: the
/// epoch it last pinned is the floor for snapshot retention. Cloning a
/// reader adds a pin at the same epoch; dropping releases it (and may
/// trim the retained ring).
pub struct DbReader {
    core: Arc<ReadCore>,
    snap: Arc<DbSnapshot>,
    epoch: Epoch,
}

impl Clone for DbReader {
    fn clone(&self) -> Self {
        self.core.pin_add(self.epoch);
        DbReader {
            core: Arc::clone(&self.core),
            snap: Arc::clone(&self.snap),
            epoch: self.epoch,
        }
    }
}

impl Drop for DbReader {
    fn drop(&mut self) {
        self.core.pin_release(self.epoch);
    }
}

impl DbReader {
    /// Revalidate against the current epoch and return the pinned
    /// snapshot.
    pub fn pin(&mut self) -> &Arc<DbSnapshot> {
        let current = self.core.epoch();
        let moved = current != self.epoch;
        if moved {
            self.snap = self.core.snapshot();
            let old = self.epoch;
            self.epoch = self.snap.epoch();
            self.core.pin_move(old, self.epoch);
        }
        if obs::trace_recording() {
            // Annotate the epoch only when the pin actually moved: the
            // steady-state fast path stays allocation-free.
            if moved {
                obs::trace_event("db.pin", &[("epoch", &self.epoch.to_string())]);
            } else {
                obs::trace_event("db.pin", &[]);
            }
        }
        if obs::enabled() {
            obs::counter_add("db.reads_pinned", 1);
        }
        &self.snap
    }

    /// The snapshot from the last `pin()`, without revalidating.
    pub fn pinned(&self) -> &Arc<DbSnapshot> {
        &self.snap
    }

    /// Epoch of the pinned snapshot.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The owning store's *current* published epoch (one `Acquire`
    /// load, no re-pin) — what `pin()` would move to.
    pub fn latest_epoch(&self) -> Epoch {
        self.core.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use crate::query::CmpOp;
    use crate::schema::ClassDef;
    use crate::value::AttrType;

    fn sample_db() -> Database {
        let mut db = Database::new("store-test");
        db.register_schema(
            SchemaDef::new("net")
                .class(ClassDef::new("Supplier").attr("name", AttrType::Text))
                .class(
                    ClassDef::new("Pole")
                        .attr("height", AttrType::Float)
                        .attr("supplier", AttrType::Ref("Supplier".into()))
                        .attr("location", AttrType::Geometry),
                ),
        )
        .unwrap();
        let s = db
            .insert("net", "Supplier", vec![("name".into(), "Acme".into())])
            .unwrap();
        for i in 0..8 {
            db.insert(
                "net",
                "Pole",
                vec![
                    ("height".into(), (5.0 + i as f64).into()),
                    ("supplier".into(), Value::Ref(s)),
                    (
                        "location".into(),
                        Geometry::Point(Point::new(i as f64, 0.0)).into(),
                    ),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn snapshot_reads_match_database() {
        let store = DbStore::new(sample_db());
        let snap = store.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.extent_size("net", "Pole"), 8);
        let poles = snap.get_class("net", "Pole", false).unwrap();
        assert_eq!(poles.len(), 8);
        assert_eq!(poles[0].get("height"), &Value::Float(5.0));
        let one = snap.get_value(poles[3].oid).unwrap();
        assert_eq!(one, poles[3]);
        assert_eq!(snap.locate(poles[0].oid), Some(("net", "Pole")));
        assert_eq!(snap.object_count(), 9);
    }

    #[test]
    fn write_publishes_new_epoch_and_readers_stay_pinned() {
        let store = DbStore::new(sample_db());
        let mut reader = store.reader();
        let before = Arc::clone(reader.pin());
        let oid = before.get_class("net", "Pole", false).unwrap()[0].oid;

        let committed = store
            .write(|db| db.update(oid, vec![("height".into(), Value::Float(99.0))]))
            .unwrap();
        assert_eq!(committed.epoch, 2);
        assert_eq!(committed.events.len(), 1);

        // The old pin still serves the old value.
        assert_eq!(before.peek(oid).unwrap().get("height"), &Value::Float(5.0));
        // Re-pinning observes the write.
        let after = reader.pin();
        assert_eq!(after.epoch(), 2);
        assert_eq!(after.peek(oid).unwrap().get("height"), &Value::Float(99.0));
    }

    #[test]
    fn write_clones_only_touched_partition() {
        let store = DbStore::new(sample_db());
        let before = store.snapshot();
        let oid = before.get_class("net", "Pole", false).unwrap()[0].oid;
        store
            .write(|db| db.update(oid, vec![("height".into(), Value::Float(50.0))]))
            .unwrap();
        let after = store.snapshot();
        let key_pole = ("net".to_string(), "Pole".to_string());
        let key_sup = ("net".to_string(), "Supplier".to_string());
        assert!(
            !Arc::ptr_eq(&before.partitions[&key_pole], &after.partitions[&key_pole]),
            "touched partition is rebuilt"
        );
        assert!(
            Arc::ptr_eq(&before.partitions[&key_sup], &after.partitions[&key_sup]),
            "untouched partition is structurally shared"
        );
    }

    #[test]
    fn snapshot_spatial_queries_work() {
        let store = DbStore::new(sample_db());
        let snap = store.snapshot();
        let (hits, stats) = snap
            .select_with_stats(
                "net",
                "Pole",
                &Predicate::IntersectsRect {
                    attr: "location".into(),
                    rect: Rect::new(-0.5, -0.5, 2.5, 0.5),
                },
            )
            .unwrap();
        assert_eq!(hits.len(), 3);
        assert!(stats.index_used);
        let near = snap
            .nearest("net", "Pole", Point::new(7.2, 0.0), 2)
            .unwrap();
        assert_eq!(near.len(), 2);
        assert_eq!(near[0].get("height"), &Value::Float(12.0));
        let win = snap
            .window_query("net", "Pole", Rect::new(2.5, -1.0, 4.5, 1.0))
            .unwrap();
        assert_eq!(win.len(), 2);
    }

    #[test]
    fn snapshot_aggregate_and_predicates() {
        let store = DbStore::new(sample_db());
        let snap = store.snapshot();
        let n = snap
            .aggregate("net", "Pole", "height", Aggregate::Count, &Predicate::True)
            .unwrap();
        assert_eq!(n, Value::Int(8));
        let tall = snap
            .select("net", "Pole", &Predicate::cmp("height", CmpOp::Ge, 10.0))
            .unwrap();
        assert_eq!(tall.len(), 3);
    }

    #[test]
    fn insert_delete_and_schema_registration_sync() {
        let store = DbStore::new(sample_db());
        let committed = store
            .write(|db| {
                db.register_schema(
                    SchemaDef::new("admin")
                        .class(ClassDef::new("District").attr("name", AttrType::Text)),
                )?;
                db.insert("admin", "District", vec![("name".into(), "centro".into())])
            })
            .unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.extent_size("admin", "District"), 1);
        let d = snap.get_class("admin", "District", false).unwrap();
        assert_eq!(d[0].get("name"), &Value::Text("centro".into()));
        assert_eq!(snap.locate(committed.value), Some(("admin", "District")));

        store.write(|db| db.delete(committed.value)).unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.extent_size("admin", "District"), 0);
        assert!(snap.peek(committed.value).is_err());
    }

    #[test]
    fn insert_then_delete_in_one_write_leaves_no_trace() {
        let store = DbStore::new(sample_db());
        store
            .write(|db| {
                let oid = db.insert("net", "Supplier", vec![("name".into(), "Ghost".into())])?;
                db.delete(oid)
            })
            .unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.extent_size("net", "Supplier"), 1);
        assert_eq!(snap.object_count(), 9);
    }

    #[test]
    fn write_closure_draining_events_still_syncs() {
        // Helpers like `custlang::save_program` drain the database's own
        // event queue; the writer's subscription must see the mutations
        // anyway or the published snapshot would silently diverge.
        let store = DbStore::new(sample_db());
        let committed = store
            .write(|db| {
                let oid = db.insert("net", "Supplier", vec![("name".into(), "Sneaky".into())])?;
                db.drain_events();
                Ok(oid)
            })
            .unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.extent_size("net", "Supplier"), 2);
        assert!(snap.get_value(committed.value).is_ok());
        assert!(
            committed
                .events
                .iter()
                .any(|e| matches!(e, DbEvent::Insert { .. })),
            "committed events survive an internal drain: {:?}",
            committed.events
        );
    }

    #[test]
    fn failed_write_still_publishes_partial_state() {
        let store = DbStore::new(sample_db());
        let err = store.write(|db| {
            db.insert("net", "Supplier", vec![("name".into(), "Early".into())])?;
            Err::<(), _>(GeoDbError::InvalidQuery("boom".into()))
        });
        assert!(err.is_err());
        // The insert happened before the failure; the published snapshot
        // reflects the database as it actually is.
        assert_eq!(store.snapshot().extent_size("net", "Supplier"), 2);
        assert_eq!(store.epoch(), 2);
    }

    #[test]
    fn methods_run_against_snapshots() {
        let mut db = sample_db();
        db.register_schema(
            SchemaDef::new("m").class(
                ClassDef::new("Named")
                    .optional_attr("target", AttrType::Ref("Named".into()))
                    .method(crate::schema::MethodDef::new(
                        "target_class",
                        vec![AttrType::Ref("Named".into())],
                        AttrType::Text,
                    )),
            ),
        )
        .unwrap();
        let a = db.insert("m", "Named", vec![]).unwrap();
        let b = db
            .insert("m", "Named", vec![("target".into(), Value::Ref(a))])
            .unwrap();
        db.register_method(
            "m",
            "Named",
            "target_class",
            Arc::new(|r, inst, _| {
                let Value::Ref(oid) = inst.get("target") else {
                    return Ok(Value::Null);
                };
                Ok(Value::Text(r.resolve(*oid)?.class))
            }),
        )
        .unwrap();
        let store = DbStore::new(db);
        let snap = store.snapshot();
        let inst = snap.peek(b).unwrap();
        assert_eq!(
            snap.call_method(&inst, "target_class", &[]).unwrap(),
            Value::Text("Named".into())
        );
    }

    #[test]
    fn pinned_snapshot_count_tracks_handles() {
        let store = DbStore::new(sample_db());
        assert_eq!(store.pin_count(), 0);
        assert_eq!(store.pin_watermark(), None);
        let r1 = store.reader();
        let s1 = store.snapshot();
        // Raw snapshot() clones are not pins; readers are.
        assert_eq!(store.pin_count(), 1);
        assert_eq!(store.pin_watermark(), Some(r1.epoch()));
        let r2 = r1.clone();
        assert_eq!(store.pin_count(), 2);
        drop(r1);
        drop(r2);
        drop(s1);
        assert_eq!(store.pin_count(), 0);
        assert_eq!(store.pin_watermark(), None);
    }

    fn churn_write(store: &DbStore) {
        store
            .write(|db| {
                let oid = db.insert("net", "Supplier", vec![("name".into(), "churn".into())])?;
                db.delete(oid)?;
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn retention_trims_behind_the_pin_watermark() {
        let store = DbStore::new(sample_db());
        let mut pinned = store.reader();
        pinned.pin();
        let pinned_epoch = pinned.epoch();
        // A few writes within the cap: the pin keeps its epoch retained.
        for _ in 0..3 {
            churn_write(&store);
        }
        assert!(store.snapshot_at(pinned_epoch).is_some());
        drop(pinned);
        // With the pin gone the next publish trims behind the head.
        churn_write(&store);
        assert!(store.snapshot_at(pinned_epoch).is_none());
        assert_eq!(store.epochs_retained(), 1);
    }

    #[test]
    fn retention_stays_bounded_under_a_long_pinned_reader() {
        let store = DbStore::new(sample_db());
        let mut pinned = store.reader();
        pinned.pin();
        for _ in 0..20 {
            churn_write(&store);
        }
        // The hard cap wins over the pin: the ring stays bounded even
        // though the reader never re-pins (it still reads its own Arc).
        assert!(store.epochs_retained() <= DEFAULT_MAX_RETAINED as usize);
        assert_eq!(pinned.pinned().epoch(), 1);
        drop(pinned);
    }

    #[test]
    fn store_and_snapshot_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DbStore>();
        assert_send_sync::<DbSnapshot>();
        assert_send_sync::<DbReader>();
    }
}
