//! The metadata catalog: registered schemas, inheritance resolution and
//! instance validation.
//!
//! The paper's exploratory interaction mode "allows users to navigate on
//! schema and extension … mainly through (database) metadata querying";
//! this module is what those `Get_Schema` queries read.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{GeoDbError, Result};
use crate::instance::Instance;
use crate::schema::{AttrDef, ClassDef, MethodDef, SchemaDef};
use crate::value::AttrType;

/// Catalog of all schemas known to a database.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Catalog {
    schemas: Vec<SchemaDef>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a schema after validating it (unique names, parents exist,
    /// no inheritance cycles, reference targets exist).
    pub fn register(&mut self, schema: SchemaDef) -> Result<()> {
        if self.schemas.iter().any(|s| s.name == schema.name) {
            return Err(GeoDbError::Duplicate(schema.name));
        }
        Self::validate_schema(&schema)?;
        self.schemas.push(schema);
        Ok(())
    }

    fn validate_schema(schema: &SchemaDef) -> Result<()> {
        let mut seen = HashMap::new();
        for c in &schema.classes {
            if seen.insert(c.name.as_str(), ()).is_some() {
                return Err(GeoDbError::Duplicate(c.name.clone()));
            }
            let mut attr_names = HashMap::new();
            for a in &c.attrs {
                if attr_names.insert(a.name.as_str(), ()).is_some() {
                    return Err(GeoDbError::Duplicate(format!("{}.{}", c.name, a.name)));
                }
            }
        }
        for c in &schema.classes {
            if let Some(p) = &c.parent {
                if schema.find_class(p).is_none() {
                    return Err(GeoDbError::UnknownClass(p.clone()));
                }
            }
            for a in &c.attrs {
                Self::validate_type(schema, &c.name, &a.name, &a.ty)?;
            }
        }
        // Cycle detection over the parent relation.
        for c in &schema.classes {
            let mut slow = c;
            let mut steps = 0;
            let mut cur = c;
            while let Some(p) = &cur.parent {
                cur = schema
                    .find_class(p)
                    .ok_or_else(|| GeoDbError::UnknownClass(p.clone()))?;
                steps += 1;
                if steps % 2 == 0 {
                    slow = schema
                        .find_class(slow.parent.as_ref().expect("walked"))
                        .expect("validated");
                }
                if std::ptr::eq(slow, cur) && steps > 1 {
                    return Err(GeoDbError::InheritanceCycle(c.name.clone()));
                }
                if steps > schema.classes.len() {
                    return Err(GeoDbError::InheritanceCycle(c.name.clone()));
                }
            }
        }
        Ok(())
    }

    fn validate_type(schema: &SchemaDef, class: &str, attr: &str, ty: &AttrType) -> Result<()> {
        match ty {
            AttrType::Ref(target) if schema.find_class(target).is_none() => {
                return Err(GeoDbError::TypeMismatch {
                    class: class.into(),
                    attribute: attr.into(),
                    expected: "reference to an existing class".into(),
                    got: format!("unknown class `{target}`"),
                });
            }
            AttrType::Tuple(fields) => {
                for (fname, fty) in fields {
                    Self::validate_type(schema, class, &format!("{attr}.{fname}"), fty)?;
                }
            }
            AttrType::List(elem) => Self::validate_type(schema, class, attr, elem)?,
            _ => {}
        }
        Ok(())
    }

    pub fn schema(&self, name: &str) -> Result<&SchemaDef> {
        self.schemas
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| GeoDbError::UnknownSchema(name.to_string()))
    }

    pub fn schema_names(&self) -> Vec<&str> {
        self.schemas.iter().map(|s| s.name.as_str()).collect()
    }

    pub fn class(&self, schema: &str, class: &str) -> Result<&ClassDef> {
        self.schema(schema)?
            .find_class(class)
            .ok_or_else(|| GeoDbError::UnknownClass(class.to_string()))
    }

    /// All attributes of a class including inherited ones, parents first
    /// (the order in which the generic Instance window lays out panels).
    pub fn effective_attrs(&self, schema: &str, class: &str) -> Result<Vec<AttrDef>> {
        let chain = self.inheritance_chain(schema, class)?;
        let mut out: Vec<AttrDef> = Vec::new();
        for c in chain.iter().rev() {
            for a in &c.attrs {
                // A subclass redeclaration overrides the inherited attribute.
                if let Some(slot) = out.iter_mut().find(|e| e.name == a.name) {
                    *slot = a.clone();
                } else {
                    out.push(a.clone());
                }
            }
        }
        Ok(out)
    }

    /// All methods of a class including inherited ones, override-aware.
    pub fn effective_methods(&self, schema: &str, class: &str) -> Result<Vec<MethodDef>> {
        let chain = self.inheritance_chain(schema, class)?;
        let mut out: Vec<MethodDef> = Vec::new();
        for c in chain.iter().rev() {
            for m in &c.methods {
                if let Some(slot) = out.iter_mut().find(|e| e.name == m.name) {
                    *slot = m.clone();
                } else {
                    out.push(m.clone());
                }
            }
        }
        Ok(out)
    }

    /// The class and its ancestors, most-derived first.
    pub fn inheritance_chain(&self, schema: &str, class: &str) -> Result<Vec<&ClassDef>> {
        let s = self.schema(schema)?;
        let mut chain = Vec::new();
        let mut cur = s
            .find_class(class)
            .ok_or_else(|| GeoDbError::UnknownClass(class.to_string()))?;
        chain.push(cur);
        while let Some(p) = &cur.parent {
            cur = s
                .find_class(p)
                .ok_or_else(|| GeoDbError::UnknownClass(p.clone()))?;
            chain.push(cur);
            if chain.len() > s.classes.len() {
                return Err(GeoDbError::InheritanceCycle(class.to_string()));
            }
        }
        Ok(chain)
    }

    /// Direct subclasses of a class.
    pub fn subclasses(&self, schema: &str, class: &str) -> Result<Vec<&ClassDef>> {
        let s = self.schema(schema)?;
        Ok(s.classes
            .iter()
            .filter(|c| c.parent.as_deref() == Some(class))
            .collect())
    }

    /// True when `class` is `ancestor` or inherits from it.
    pub fn is_subclass_of(&self, schema: &str, class: &str, ancestor: &str) -> Result<bool> {
        Ok(self
            .inheritance_chain(schema, class)?
            .iter()
            .any(|c| c.name == ancestor))
    }

    /// Validate an instance against its class definition: all values must
    /// type-check and non-optional attributes must be present and non-null.
    pub fn validate_instance(&self, schema: &str, inst: &Instance) -> Result<()> {
        let attrs = self.effective_attrs(schema, &inst.class)?;
        for a in &attrs {
            let v = inst.values.get(&a.name);
            match v {
                None | Some(crate::value::Value::Null) => {
                    if !a.optional {
                        return Err(GeoDbError::MissingAttribute {
                            class: inst.class.clone(),
                            attribute: a.name.clone(),
                        });
                    }
                }
                Some(v) => {
                    if !v.matches(&a.ty) {
                        return Err(GeoDbError::TypeMismatch {
                            class: inst.class.clone(),
                            attribute: a.name.clone(),
                            expected: a.ty.name(),
                            got: v.type_name(),
                        });
                    }
                }
            }
        }
        for name in inst.values.keys() {
            if !attrs.iter().any(|a| &a.name == name) {
                return Err(GeoDbError::UnknownAttribute {
                    class: inst.class.clone(),
                    attribute: name.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, Oid};
    use crate::value::Value;

    fn catalog() -> Catalog {
        let schema = SchemaDef::new("net")
            .class(
                ClassDef::new("Element")
                    .attr("element_id", AttrType::Int)
                    .optional_attr("label", AttrType::Text)
                    .method(MethodDef::new("describe", vec![], AttrType::Text)),
            )
            .class(
                ClassDef::new("Pole")
                    .extends("Element")
                    .attr("pole_location", AttrType::Geometry)
                    .method(MethodDef::new("describe", vec![], AttrType::Text)),
            )
            .class(ClassDef::new("Duct").extends("Element"));
        let mut cat = Catalog::new();
        cat.register(schema).unwrap();
        cat
    }

    #[test]
    fn register_rejects_duplicates() {
        let mut cat = catalog();
        assert!(matches!(
            cat.register(SchemaDef::new("net")),
            Err(GeoDbError::Duplicate(_))
        ));
        let dup_class = SchemaDef::new("s2")
            .class(ClassDef::new("A"))
            .class(ClassDef::new("A"));
        assert!(cat.register(dup_class).is_err());
    }

    #[test]
    fn register_rejects_unknown_parent_and_ref() {
        let mut cat = Catalog::new();
        let bad_parent = SchemaDef::new("s").class(ClassDef::new("A").extends("Ghost"));
        assert!(matches!(
            cat.register(bad_parent),
            Err(GeoDbError::UnknownClass(_))
        ));
        let bad_ref =
            SchemaDef::new("s").class(ClassDef::new("A").attr("r", AttrType::Ref("Ghost".into())));
        assert!(cat.register(bad_ref).is_err());
    }

    #[test]
    fn register_rejects_inheritance_cycles() {
        let mut cat = Catalog::new();
        let cyc = SchemaDef::new("s")
            .class(ClassDef::new("A").extends("B"))
            .class(ClassDef::new("B").extends("A"));
        assert!(matches!(
            cat.register(cyc),
            Err(GeoDbError::InheritanceCycle(_))
        ));
    }

    #[test]
    fn effective_attrs_inherit_parent_first() {
        let cat = catalog();
        let attrs = cat.effective_attrs("net", "Pole").unwrap();
        let names: Vec<_> = attrs.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["element_id", "label", "pole_location"]);
    }

    #[test]
    fn effective_methods_respect_override() {
        let cat = catalog();
        let methods = cat.effective_methods("net", "Pole").unwrap();
        assert_eq!(methods.len(), 1);
        assert_eq!(methods[0].name, "describe");
    }

    #[test]
    fn chain_and_subclass_queries() {
        let cat = catalog();
        let chain = cat.inheritance_chain("net", "Pole").unwrap();
        let names: Vec<_> = chain.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["Pole", "Element"]);

        let subs = cat.subclasses("net", "Element").unwrap();
        let names: Vec<_> = subs.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["Pole", "Duct"]);

        assert!(cat.is_subclass_of("net", "Pole", "Element").unwrap());
        assert!(!cat.is_subclass_of("net", "Element", "Pole").unwrap());
    }

    #[test]
    fn validate_instance_enforces_required_and_types() {
        let cat = catalog();
        use crate::geometry::{Geometry, Point};
        let ok = Instance::new(Oid(1), "Pole")
            .with("element_id", 7i64)
            .with("pole_location", Geometry::Point(Point::ORIGIN));
        cat.validate_instance("net", &ok).unwrap();

        let missing = Instance::new(Oid(2), "Pole").with("element_id", 7i64);
        assert!(matches!(
            cat.validate_instance("net", &missing),
            Err(GeoDbError::MissingAttribute { .. })
        ));

        let wrong_type = Instance::new(Oid(3), "Pole")
            .with("element_id", "seven")
            .with("pole_location", Geometry::Point(Point::ORIGIN));
        assert!(matches!(
            cat.validate_instance("net", &wrong_type),
            Err(GeoDbError::TypeMismatch { .. })
        ));

        let stray = Instance::new(Oid(4), "Pole")
            .with("element_id", 7i64)
            .with("pole_location", Geometry::Point(Point::ORIGIN))
            .with("bogus", 1i64);
        assert!(matches!(
            cat.validate_instance("net", &stray),
            Err(GeoDbError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn optional_attr_may_be_null_or_absent() {
        let cat = catalog();
        use crate::geometry::{Geometry, Point};
        let with_null = Instance::new(Oid(5), "Pole")
            .with("element_id", 1i64)
            .with("label", Value::Null)
            .with("pole_location", Geometry::Point(Point::ORIGIN));
        cat.validate_instance("net", &with_null).unwrap();
    }
}
